//! Constant scalar expressions.
//!
//! SPL matrix elements are compile-time constant scalar expressions: they
//! may use the symbolic constant `pi`, function invocations such as
//! `sqrt(2)` or `cos(2*pi/3.0)`, the four arithmetic operators, and complex
//! literals written as a pair `(re,im)` (paper Section 2.2). *All* constant
//! scalar expressions are evaluated at compile time.

use std::error::Error;
use std::fmt;

use crate::sexp::Complexish;

/// Binary arithmetic operators inside a scalar expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A constant scalar expression, prior to evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// The constant `pi`.
    Pi,
    /// Unary negation.
    Neg(Box<ScalarExpr>),
    /// A binary operation.
    Bin(ScalarBinOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// A function invocation, e.g. `sqrt(2)` or `w(8 3)`.
    Call(String, Vec<ScalarExpr>),
    /// A complex literal `(re,im)`.
    Pair(Box<ScalarExpr>, Box<ScalarExpr>),
}

/// An error raised while evaluating a constant scalar expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalarEvalError(pub String);

impl fmt::Display for ScalarEvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scalar evaluation failed: {}", self.0)
    }
}

impl Error for ScalarEvalError {}

impl ScalarExpr {
    /// Evaluates the expression to a complex constant.
    ///
    /// The supported functions are `sqrt`, `sin`, `cos`, `tan`, `exp`,
    /// `log` (applied to the real part) and the twiddle intrinsic
    /// `w(n k)` = `e^{-2πik/n}`.
    ///
    /// # Errors
    ///
    /// Returns [`ScalarEvalError`] for unknown functions, wrong arities, or
    /// complex arguments where a real is required.
    pub fn eval(&self) -> Result<Complexish, ScalarEvalError> {
        use ScalarExpr::*;
        Ok(match self {
            Int(v) => Complexish::real(*v as f64),
            Float(v) => Complexish::real(*v),
            Pi => Complexish::real(std::f64::consts::PI),
            Neg(e) => {
                let v = e.eval()?;
                Complexish::new(-v.re, -v.im)
            }
            Bin(op, a, b) => {
                let a = a.eval()?;
                let b = b.eval()?;
                match op {
                    ScalarBinOp::Add => Complexish::new(a.re + b.re, a.im + b.im),
                    ScalarBinOp::Sub => Complexish::new(a.re - b.re, a.im - b.im),
                    ScalarBinOp::Mul => {
                        Complexish::new(a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re)
                    }
                    ScalarBinOp::Div => {
                        let d = b.re * b.re + b.im * b.im;
                        if d == 0.0 {
                            return Err(ScalarEvalError("division by zero".into()));
                        }
                        Complexish::new(
                            (a.re * b.re + a.im * b.im) / d,
                            (a.im * b.re - a.re * b.im) / d,
                        )
                    }
                }
            }
            Call(name, args) => {
                let real_arg = |i: usize| -> Result<f64, ScalarEvalError> {
                    let v: Complexish = args
                        .get(i)
                        .ok_or_else(|| ScalarEvalError(format!("{name}: missing argument {i}")))?
                        .eval()?;
                    if v.im != 0.0 {
                        return Err(ScalarEvalError(format!("{name}: argument must be real")));
                    }
                    Ok(v.re)
                };
                let unary = |f: fn(f64) -> f64| -> Result<Complexish, ScalarEvalError> {
                    if args.len() != 1 {
                        return Err(ScalarEvalError(format!("{name}: expects 1 argument")));
                    }
                    Ok(Complexish::real(f(real_arg(0)?)))
                };
                match name.as_str() {
                    "sqrt" => unary(f64::sqrt)?,
                    "sin" => unary(f64::sin)?,
                    "cos" => unary(f64::cos)?,
                    "tan" => unary(f64::tan)?,
                    "exp" => unary(f64::exp)?,
                    "log" => unary(f64::ln)?,
                    "w" | "W" => {
                        if args.len() != 2 {
                            return Err(ScalarEvalError("w: expects 2 arguments".into()));
                        }
                        let n = real_arg(0)?;
                        let k = real_arg(1)?;
                        if n <= 0.0 || n.fract() != 0.0 || k.fract() != 0.0 {
                            return Err(ScalarEvalError("w: integer arguments required".into()));
                        }
                        let theta = -2.0 * std::f64::consts::PI * k / n;
                        Complexish::new(theta.cos(), theta.sin())
                    }
                    other => return Err(ScalarEvalError(format!("unknown function {other:?}"))),
                }
            }
            Pair(re, im) => {
                let re = re.eval()?;
                let im = im.eval()?;
                if re.im != 0.0 || im.im != 0.0 {
                    return Err(ScalarEvalError(
                        "complex literal components must be real".into(),
                    ));
                }
                Complexish::new(re.re, im.re)
            }
        })
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ScalarExpr::*;
        match self {
            Int(v) => write!(f, "{v}"),
            Float(v) => write!(f, "{v:?}"),
            Pi => write!(f, "pi"),
            Neg(e) => write!(f, "-{e}"),
            Bin(op, a, b) => {
                let sym = match op {
                    ScalarBinOp::Add => "+",
                    ScalarBinOp::Sub => "-",
                    ScalarBinOp::Mul => "*",
                    ScalarBinOp::Div => "/",
                };
                write!(f, "({a}{sym}{b})")
            }
            Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Pair(re, im) => write!(f, "({re},{im})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> ScalarExpr {
        ScalarExpr::Int(v)
    }

    #[test]
    fn arithmetic() {
        let e = ScalarExpr::Bin(
            ScalarBinOp::Add,
            Box::new(int(2)),
            Box::new(ScalarExpr::Bin(
                ScalarBinOp::Mul,
                Box::new(int(3)),
                Box::new(int(4)),
            )),
        );
        assert_eq!(e.eval().unwrap().re, 14.0);
    }

    #[test]
    fn sqrt_two() {
        let e = ScalarExpr::Call("sqrt".into(), vec![int(2)]);
        assert!((e.eval().unwrap().re - 2.0_f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn cos_of_pi_expression() {
        // cos(2*pi/3.0) = -0.5
        let arg = ScalarExpr::Bin(
            ScalarBinOp::Div,
            Box::new(ScalarExpr::Bin(
                ScalarBinOp::Mul,
                Box::new(int(2)),
                Box::new(ScalarExpr::Pi),
            )),
            Box::new(ScalarExpr::Float(3.0)),
        );
        let e = ScalarExpr::Call("cos".into(), vec![arg]);
        assert!((e.eval().unwrap().re + 0.5).abs() < 1e-15);
    }

    #[test]
    fn complex_pair() {
        let e = ScalarExpr::Pair(Box::new(ScalarExpr::Float(0.7)), Box::new(int(-1)));
        let v = e.eval().unwrap();
        assert_eq!((v.re, v.im), (0.7, -1.0));
    }

    #[test]
    fn twiddle_function() {
        let e = ScalarExpr::Call("w".into(), vec![int(4), int(1)]);
        let v = e.eval().unwrap();
        assert!(v.re.abs() < 1e-15 && (v.im + 1.0).abs() < 1e-15);
    }

    #[test]
    fn division_by_zero_is_error() {
        let e = ScalarExpr::Bin(ScalarBinOp::Div, Box::new(int(1)), Box::new(int(0)));
        assert!(e.eval().is_err());
    }

    #[test]
    fn unknown_function_is_error() {
        let e = ScalarExpr::Call("frobnicate".into(), vec![int(1)]);
        assert!(e.eval().is_err());
    }

    #[test]
    fn complex_division() {
        // (1+1i)/(1-1i) = i
        let one_one = ScalarExpr::Pair(Box::new(int(1)), Box::new(int(1)));
        let one_neg = ScalarExpr::Pair(Box::new(int(1)), Box::new(int(-1)));
        let e = ScalarExpr::Bin(ScalarBinOp::Div, Box::new(one_one), Box::new(one_neg));
        let v = e.eval().unwrap();
        assert!(v.re.abs() < 1e-15 && (v.im - 1.0).abs() < 1e-15);
    }
}
