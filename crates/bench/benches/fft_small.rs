//! Benches for the Figure 3 axis: small-size FFTs, SPL (native and VM)
//! against the FFTW-style codelets.

use std::hint::black_box;

use spl_bench::harness::Harness;
use spl_generator::fft::{ct_sequence, Rule};
use spl_minifft::Codelet;
use spl_search::{compile_tree, compile_tree_native};
use spl_vm::VmState;

fn main() {
    let g = "fft_small";
    let mut h = Harness::new("fft_small");
    for &n in &[16usize, 64] {
        let factors = match n {
            16 => vec![4usize, 4],
            _ => vec![4, 4, 4],
        };
        let tree = ct_sequence(&factors, Rule::CooleyTukey);
        let x: Vec<f64> = (0..2 * n).map(|i| (i as f64 * 0.7).sin()).collect();

        let kernel = compile_tree_native(&tree, 64).expect("native compile");
        let mut y = vec![0.0; kernel.n_out];
        h.bench(g, &format!("spl_native/{n}"), || {
            kernel.run(black_box(&x), &mut y);
        });

        let vm = compile_tree(&tree, 64).expect("vm compile");
        let mut st = VmState::new(&vm);
        let mut yv = vec![0.0; vm.n_out];
        h.bench(g, &format!("spl_vm/{n}"), || {
            vm.run(black_box(&x), &mut yv, &mut st);
        });

        let codelet = Codelet::new(n);
        let mut yc = vec![0.0; 2 * n];
        h.bench(g, &format!("fftw_codelet/{n}"), || {
            codelet.apply(black_box(&x), 1, &mut yc, 1);
        });
    }
    h.finish();
}
