//! Ablation bench: the cost of each compiler phase (DESIGN.md calls out
//! the phase pipeline as a design choice) on a 256-point FFT formula.

use std::hint::black_box;

use spl_bench::harness::Harness;
use spl_compiler::{intrinsics, optimize, typetrans, unroll};
use spl_generator::fft::{ct_sequence, Rule};
use spl_templates::{expand_formula, ExpandOptions, TemplateTable};

fn main() {
    let tree = ct_sequence(&[4usize, 4, 16], Rule::CooleyTukey);
    let sexp = tree.to_sexp();
    let table = TemplateTable::builtin();
    let opts = ExpandOptions {
        unroll_threshold: Some(16),
        ..Default::default()
    };
    let expanded = expand_formula(&sexp, &table, &opts).expect("expands");
    let unrolled = unroll::unroll(&expanded).expect("unroll");
    let evaluated = intrinsics::eval_intrinsics(&unrolled).expect("intrinsics");
    let lowered = typetrans::complex_to_real(&evaluated).expect("typetrans");
    let scalarized = unroll::scalarize(&lowered);

    let mut h = Harness::new("compiler_phases");
    let g = "compiler_phases_f256";
    h.bench(g, "expand", || {
        black_box(expand_formula(black_box(&sexp), &table, &opts).unwrap());
    });
    h.bench(g, "unroll", || {
        black_box(unroll::unroll(black_box(&expanded)).unwrap());
    });
    h.bench(g, "intrinsics", || {
        black_box(intrinsics::eval_intrinsics(black_box(&unrolled)).unwrap());
    });
    h.bench(g, "typetrans", || {
        black_box(typetrans::complex_to_real(black_box(&evaluated)).unwrap());
    });
    h.bench(g, "scalarize", || {
        black_box(unroll::scalarize(black_box(&lowered)));
    });
    h.bench(g, "optimize", || {
        black_box(optimize::optimize(black_box(&scalarized)).unwrap());
    });
    h.finish();
}
