//! Ablation bench: the cost of each compiler phase (DESIGN.md calls out
//! the phase pipeline as a design choice) on a 256-point FFT formula.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use spl_compiler::{intrinsics, optimize, typetrans, unroll};
use spl_generator::fft::{ct_sequence, Rule};
use spl_templates::{expand_formula, ExpandOptions, TemplateTable};

fn bench_phases(c: &mut Criterion) {
    let tree = ct_sequence(&[4usize, 4, 16], Rule::CooleyTukey);
    let sexp = tree.to_sexp();
    let table = TemplateTable::builtin();
    let opts = ExpandOptions {
        unroll_threshold: Some(16),
        ..Default::default()
    };
    let expanded = expand_formula(&sexp, &table, &opts).expect("expands");
    let unrolled = unroll::unroll(&expanded);
    let evaluated = intrinsics::eval_intrinsics(&unrolled).expect("intrinsics");
    let lowered = typetrans::complex_to_real(&evaluated).expect("typetrans");
    let scalarized = unroll::scalarize(&lowered);

    let mut group = c.benchmark_group("compiler_phases_f256");
    group.sample_size(15);
    group.bench_function("expand", |b| {
        b.iter(|| expand_formula(black_box(&sexp), &table, &opts).unwrap())
    });
    group.bench_function("unroll", |b| b.iter(|| unroll::unroll(black_box(&expanded))));
    group.bench_function("intrinsics", |b| {
        b.iter(|| intrinsics::eval_intrinsics(black_box(&unrolled)).unwrap())
    });
    group.bench_function("typetrans", |b| {
        b.iter(|| typetrans::complex_to_real(black_box(&evaluated)).unwrap())
    });
    group.bench_function("scalarize", |b| {
        b.iter(|| unroll::scalarize(black_box(&lowered)))
    });
    group.bench_function("optimize", |b| {
        b.iter(|| optimize::optimize(black_box(&scalarized)))
    });
    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
