//! Benches for the Figure 2 axis: one 32-point FFT formula executed at
//! the three optimization levels (on the VM, where the optimization
//! effect is isolated from the native compiler's own work).

use std::hint::black_box;

use spl_bench::harness::Harness;
use spl_compiler::{Compiler, CompilerOptions, OptLevel};
use spl_frontend::ast::{DataType, DirectiveState};
use spl_generator::fft::{ct_sequence, Rule};
use spl_vm::{lower, VmState};

fn main() {
    let tree = ct_sequence(&[2usize, 4, 4], Rule::CooleyTukey);
    let g = "opt_levels_f32";
    let mut h = Harness::new("opt_levels");
    let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.21).sin()).collect();
    for (name, level) in [
        ("none", OptLevel::None),
        ("scalar_temps", OptLevel::ScalarTemps),
        ("default", OptLevel::Default),
    ] {
        let mut compiler = Compiler::with_options(CompilerOptions {
            unroll_threshold: Some(64),
            opt_level: level,
            ..Default::default()
        });
        let directives = DirectiveState {
            datatype: DataType::Complex,
            codetype: DataType::Real,
            ..Default::default()
        };
        let unit = compiler
            .compile_sexp(&tree.to_sexp(), &directives)
            .expect("compiles");
        let vm = lower(&unit.program).expect("lowers");
        let mut st = VmState::new(&vm);
        let mut y = vec![0.0; vm.n_out];
        h.bench(g, &format!("level/{name}"), || {
            vm.run(black_box(&x), &mut y, &mut st);
        });
    }
    h.finish();
}
