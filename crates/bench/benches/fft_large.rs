//! Criterion benches for the Figure 4 axis: a large FFT (4096 points),
//! SPL loop code against the FFTW-style planner in both modes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use spl_generator::fft::{ct_sequence, Rule};
use spl_minifft::{Plan, PlanMode};
use spl_search::compile_tree_native;

fn bench_large(c: &mut Criterion) {
    let n = 4096usize;
    let mut group = c.benchmark_group("fft_large_4096");
    group.sample_size(20);
    let x: Vec<f64> = (0..2 * n).map(|i| (i as f64 * 0.37).cos()).collect();

    // SPL: rightmost plan 64 x 64 with unrolled leaves (a typical search
    // winner shape).
    let tree = ct_sequence(&[64usize, 64], Rule::CooleyTukey);
    let kernel = compile_tree_native(&tree, 64).expect("native compile");
    let mut y = vec![0.0; kernel.n_out];
    group.bench_function("spl_native", |b| {
        b.iter(|| kernel.run(black_box(&x), &mut y))
    });

    let measured = Plan::new(n, PlanMode::Measure);
    let mut ym = vec![0.0; 2 * n];
    group.bench_function("fftw_measured", |b| {
        b.iter(|| measured.execute(black_box(&x), &mut ym))
    });

    let estimated = Plan::new(n, PlanMode::Estimate);
    let mut ye = vec![0.0; 2 * n];
    group.bench_function("fftw_estimate", |b| {
        b.iter(|| estimated.execute(black_box(&x), &mut ye))
    });
    group.finish();
}

criterion_group!(benches, bench_large);
criterion_main!(benches);
