//! Benches for the Figure 4 axis: a large FFT (4096 points), SPL loop
//! code against the FFTW-style planner in both modes.

use std::hint::black_box;

use spl_bench::harness::Harness;
use spl_generator::fft::{ct_sequence, Rule};
use spl_minifft::{Plan, PlanMode};
use spl_search::compile_tree_native;

fn main() {
    let n = 4096usize;
    let g = "fft_large_4096";
    let mut h = Harness::new("fft_large");
    let x: Vec<f64> = (0..2 * n).map(|i| (i as f64 * 0.37).cos()).collect();

    // SPL: rightmost plan 64 x 64 with unrolled leaves (a typical search
    // winner shape).
    let tree = ct_sequence(&[64usize, 64], Rule::CooleyTukey);
    let kernel = compile_tree_native(&tree, 64).expect("native compile");
    let mut y = vec![0.0; kernel.n_out];
    h.bench(g, "spl_native", || kernel.run(black_box(&x), &mut y));

    let measured = Plan::new(n, PlanMode::Measure);
    let mut ym = vec![0.0; 2 * n];
    h.bench(g, "fftw_measured", || {
        measured.execute(black_box(&x), &mut ym)
    });

    let estimated = Plan::new(n, PlanMode::Estimate);
    let mut ye = vec![0.0; 2 * n];
    h.bench(g, "fftw_estimate", || {
        estimated.execute(black_box(&x), &mut ye)
    });
    h.finish();
}
