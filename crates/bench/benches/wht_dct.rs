//! Generality bench: WHT and DCT compiled through the same pipeline
//! (the paper's argument that SPL is not FFT-specific).

use std::hint::black_box;

use spl_bench::harness::Harness;
use spl_compiler::{Compiler, CompilerOptions};
use spl_frontend::ast::{DataType, DirectiveState};
use spl_generator::{dct, wht};
use spl_native::NativeKernel;

fn native_for(sexp: &spl_frontend::Sexp) -> NativeKernel {
    let mut compiler = Compiler::with_options(CompilerOptions {
        unroll_threshold: Some(16),
        ..Default::default()
    });
    compiler
        .compile_source(dct::TEMPLATE_SOURCE)
        .expect("dct template");
    let directives = DirectiveState {
        datatype: DataType::Real,
        ..Default::default()
    };
    let unit = compiler.compile_sexp(sexp, &directives).expect("compiles");
    NativeKernel::compile(&unit).expect("native")
}

fn main() {
    let g = "wht_dct_native";
    let mut h = Harness::new("wht_dct");
    let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.4).sin()).collect();

    let wht_kernel = native_for(&wht::balanced(6).to_sexp());
    let mut y = vec![0.0; wht_kernel.n_out];
    h.bench(g, "wht_64", || wht_kernel.run(black_box(&x), &mut y));

    let dct2_kernel = native_for(&dct::dct2(64));
    let mut y2 = vec![0.0; dct2_kernel.n_out];
    h.bench(g, "dct2_64", || dct2_kernel.run(black_box(&x), &mut y2));

    let dct4_kernel = native_for(&dct::dct4(64));
    let mut y4 = vec![0.0; dct4_kernel.n_out];
    h.bench(g, "dct4_64", || dct4_kernel.run(black_box(&x), &mut y4));
    h.finish();
}
