#![warn(missing_docs)]

//! Shared harness utilities for the paper-reproduction benchmarks.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md for the experiment index):
//!
//! | binary     | reproduces |
//! |------------|------------|
//! | `table1`   | Table 1 — experiment platform(s) |
//! | `fig2`     | Figure 2 — effect of basic optimizations |
//! | `fig3`     | Figure 3 — small-size FFT performance |
//! | `fig4`     | Figure 4 — large-size FFT performance |
//! | `fig5`     | Figure 5 — memory consumption |
//! | `fig6`     | Figure 6 — accuracy |
//! | `codesize` | Section 4.2 code-size growth claim |

use std::time::Duration;

use spl_generator::fft::FftTree;
use spl_numeric::{pseudo_mflops, Complex};
use spl_search::{compile_tree, SearchError};
use spl_telemetry::cli::ReportOptions;
use spl_telemetry::{RunReport, Stopwatch};
use spl_vm::{measure, VmProgram, VmState};

pub mod harness;

/// Default minimum measurement time per data point.
pub const MEASURE_TIME: Duration = Duration::from_millis(20);

/// Runs a figure/table binary under a [`RunReport`], then writes the
/// report next to the figure's text output as
/// `results/<tool>.telemetry.json` (or `--telemetry-json <path>`).
///
/// Every experiment binary wraps its `main` body in this, so each
/// `results/` artifact ships with a machine-readable record of what was
/// measured and how long it took. The shared reporting flags
/// (`--stats`, `--trace-json`, `--trace-chrome`; see
/// [`spl_telemetry::cli`]) are honored by every wrapped binary.
pub fn with_report(tool: &str, f: impl FnOnce(&mut RunReport)) {
    let opts = match ReportOptions::from_env() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{tool}: {e}");
            std::process::exit(2);
        }
    };
    let mut report = RunReport::new(tool);
    if quick_mode() {
        report.meta("quick", "true");
    }
    let sw = Stopwatch::start();
    f(&mut report);
    let mut total = spl_telemetry::Telemetry::new();
    total.record_span("total", sw.elapsed());
    report.push_section("run", total);
    let path =
        arg_value("--telemetry-json").unwrap_or_else(|| format!("results/{tool}.telemetry.json"));
    let path = std::path::PathBuf::from(path);
    // Results dir may not exist when a binary is run outside the
    // experiment script; skip the artifact rather than fail the run.
    let dir_missing = path
        .parent()
        .is_some_and(|d| !d.as_os_str().is_empty() && !d.exists());
    if dir_missing {
        eprintln!(
            "note: {} not present, skipping telemetry artifact",
            path.parent().unwrap().display()
        );
    } else {
        match report.write_to_file(&path) {
            Ok(()) => eprintln!("telemetry: {}", path.display()),
            Err(e) => eprintln!("note: could not write {}: {e}", path.display()),
        }
    }
    if let Err(e) = opts.finish(&report) {
        eprintln!("{tool}: {e}");
        std::process::exit(1);
    }
}

/// Parses a `--flag value` style option from `std::env::args`.
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Like [`arg_value`], but parses the value into `T` and makes an
/// unparsable value a **hard error** (exit 2). A silent `.ok()`
/// fallback here would let a typo'd `--min-median-speedup 2.O`
/// disable a CI gate without anyone noticing.
pub fn arg_value_parsed<T: std::str::FromStr>(name: &str) -> Option<T> {
    arg_value(name).map(|v| match v.parse() {
        Ok(x) => x,
        Err(_) => {
            eprintln!(
                "error: {name} {v:?} is not a valid {}",
                std::any::type_name::<T>()
            );
            std::process::exit(2);
        }
    })
}

/// True when `--quick` was passed (smaller sweeps for smoke tests).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// A deterministic complex workload (same data for every candidate).
pub fn workload(n: usize) -> Vec<Complex> {
    let mut rng = spl_numeric::rng::Rng::new(0x5915_u64 + n as u64);
    (0..n)
        .map(|_| Complex::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)))
        .collect()
}

/// Compiles a tree and measures it, returning pseudo-MFLOPS
/// (`5·N·log₂N / t_µs`, paper Section 4.1).
///
/// # Errors
///
/// Propagates compilation failures.
pub fn tree_pseudo_mflops(tree: &FftTree, min_time: Duration) -> Result<f64, SearchError> {
    let n = tree.size();
    let vm = compile_tree(tree, 64)?;
    let m = measure(&vm, min_time);
    Ok(pseudo_mflops(n, m.micros_per_call()))
}

/// Runs a compiled SPL FFT on a complex vector.
pub fn run_fft(vm: &VmProgram, x: &[Complex]) -> Vec<Complex> {
    let flat = spl_vm::convert::interleave(x);
    let mut y = vec![0.0; vm.n_out];
    let mut st = VmState::new(vm);
    vm.run(&flat, &mut y, &mut st);
    spl_vm::convert::deinterleave(&y)
}

/// Runs the *inverse* FFT through a forward SPL program using
/// `IDFT(x) = conj(DFT(conj(x))) / n`.
pub fn run_ifft(vm: &VmProgram, x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    let conj: Vec<Complex> = x.iter().map(|z| z.conj()).collect();
    let y = run_fft(vm, &conj);
    y.into_iter().map(|z| z.conj() * (1.0 / n as f64)).collect()
}

/// Prints a header and aligned numeric rows (simple fixed-width table).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n{title}");
    println!("{}", "-".repeat(title.len()));
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(c, h)| {
            rows.iter()
                .map(|r| r.get(c).map_or(0, String::len))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let fmt_row = |cells: Vec<String>| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(headers.iter().map(|s| s.to_string()).collect())
    );
    for r in rows {
        println!("{}", fmt_row(r.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spl_generator::fft::{FftTree, Rule};

    #[test]
    fn workload_is_deterministic() {
        assert_eq!(workload(8), workload(8));
        assert_ne!(workload(8), workload(16)[..8].to_vec());
    }

    #[test]
    fn tree_measurement_works() {
        let t = FftTree::node(Rule::CooleyTukey, FftTree::leaf(2), FftTree::leaf(2));
        let mflops = tree_pseudo_mflops(&t, Duration::from_millis(3)).unwrap();
        assert!(mflops > 0.0);
    }

    #[test]
    fn fft_and_inverse_round_trip() {
        let t = FftTree::node(Rule::CooleyTukey, FftTree::leaf(4), FftTree::leaf(4));
        let vm = compile_tree(&t, 64).unwrap();
        let x = workload(16);
        let y = run_fft(&vm, &x);
        let back = run_ifft(&vm, &y);
        for (a, b) in back.iter().zip(&x) {
            assert!(a.approx_eq(*b, 1e-10));
        }
    }
}
