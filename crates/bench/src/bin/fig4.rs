//! Figure 4: performance for large-size FFTs (N = 2⁷ … 2²⁰).
//!
//! Three series, as in the paper: `SPL` (loop code from the k-best
//! right-most search, leaves ≤ 64 unrolled, generated C compiled by the
//! host `cc`), `FFTW` (the minifft planner in measure mode), and
//! `FFTW estimate` (the planner's cost-model mode). Planning/search time
//! is excluded from the measurement, as in the paper.
//!
//! Usage: `fig4 [--quick] [--max-log2 N]` (default max-log2 = 18; pass 20
//! for the paper's full range).

use std::time::Duration;

use spl_bench::{arg_value_parsed, print_table, quick_mode, with_report, workload, MEASURE_TIME};
use spl_minifft::{Plan, PlanMode};
use spl_numeric::pseudo_mflops;
use spl_search::{
    compile_tree_native, large_search_traced, small_search_traced, NativeEvaluator, SearchConfig,
};
use spl_telemetry::{RunReport, Telemetry};

fn plan_pseudo_mflops(plan: &Plan, min_time: Duration) -> f64 {
    let n = plan.n();
    let x = spl_vm::convert::interleave(&workload(n));
    let mut y = vec![0.0f64; 2 * n];
    let per_call = spl_numeric::metrics::time_adaptive(min_time, || plan.execute(&x, &mut y));
    pseudo_mflops(n, per_call * 1e6)
}

fn main() {
    with_report("fig4", run);
}

fn run(report: &mut RunReport) {
    let quick = quick_mode();
    let max_log: u32 = arg_value_parsed("--max-log2").unwrap_or(if quick { 10 } else { 18 });
    let min_time = if quick {
        Duration::from_millis(2)
    } else {
        MEASURE_TIME
    };
    let config = SearchConfig::default();
    let mut search_tel = Telemetry::new();
    eprintln!("searching small sizes (2..64) natively...");
    let mut eval = NativeEvaluator::new(64, min_time);
    let small = small_search_traced(6, &config, &mut eval, &mut search_tel).expect("small search");
    eprintln!("searching large sizes (2^7..2^{max_log}) with 3-best DP...");
    let large = large_search_traced(&small, max_log, &config, &mut eval, &mut search_tel)
        .expect("large search");
    report.push_section("search", search_tel);

    let mut rows = Vec::new();
    for (idx, plans) in large.iter().enumerate() {
        let k = 7 + idx as u32;
        let n = 1usize << k;
        let winner = &plans[0];
        let kernel = compile_tree_native(&winner.tree, 64).expect("winner compiles natively");
        let spl = pseudo_mflops(n, kernel.measure(min_time) * 1e6);
        let fftw_plan = Plan::new(n, PlanMode::Measure);
        let fftw = plan_pseudo_mflops(&fftw_plan, min_time);
        let est_plan = Plan::new(n, PlanMode::Estimate);
        let est = plan_pseudo_mflops(&est_plan, min_time);
        rows.push(vec![
            format!("2^{k}"),
            winner.tree.describe(),
            format!("{spl:.1}"),
            format!("{fftw:.1}"),
            format!("{est:.1}"),
            format!("{:.2}", spl / fftw),
        ]);
        eprintln!("  2^{k}: SPL {spl:.1}  FFTW {fftw:.1}  FFTW-estimate {est:.1}");
    }
    print_table(
        "Figure 4: large-size FFT performance (pseudo MFLOPS)",
        &["N", "SPL plan", "SPL", "FFTW", "FFTW estimate", "SPL/FFTW"],
        &rows,
    );
    println!(
        "\n(paper: the three curves stay close, with FFTW-estimate trailing the\n\
         measured plans; performance steps down as the working set crosses the\n\
         L1 and L2 cache sizes — see EXPERIMENTS.md for the measured shape)"
    );
}
