//! Figure 5: memory consumption for large-size FFTs.
//!
//! Three series as in the paper: SPL loop code (twiddle tables +
//! temporaries + data vectors), FFTW with a measured plan (plan storage
//! plus the planner's scratch buffers), and FFTW-estimate (plan storage
//! only). The paper's observation: SPL and FFTW-estimate track each
//! other, while measured planning costs extra memory.
//!
//! Usage: `fig5 [--quick] [--max-log2 N]`.

use spl_bench::{arg_value_parsed, print_table, quick_mode, with_report};
use spl_minifft::{Plan, PlanMode};
use spl_search::{
    compile_tree, large_search_traced, small_search_traced, OpCountEvaluator, SearchConfig,
};
use spl_telemetry::{RunReport, Telemetry};

fn main() {
    with_report("fig5", run);
}

fn run(report: &mut RunReport) {
    let quick = quick_mode();
    let max_log: u32 = arg_value_parsed("--max-log2").unwrap_or(if quick { 10 } else { 18 });
    // Plan shapes come from the deterministic op-count DP — memory use
    // depends on the plan structure, not on timing noise.
    let config = SearchConfig::default();
    let mut eval = OpCountEvaluator::default();
    let mut search_tel = Telemetry::new();
    let small = small_search_traced(6, &config, &mut eval, &mut search_tel).expect("small search");
    let large = large_search_traced(&small, max_log, &config, &mut eval, &mut search_tel)
        .expect("large search");
    report.push_section("search", search_tel);

    let mut rows = Vec::new();
    for (idx, plans) in large.iter().enumerate() {
        let k = 7 + idx as u32;
        let n = 1usize << k;
        let data_bytes = 2 * 2 * n * std::mem::size_of::<f64>(); // x and y
        let vm = compile_tree(&plans[0].tree, 64).expect("winner compiles");
        let spl_bytes = vm.memory_bytes() + data_bytes;
        let fftw_plan = Plan::new(n, PlanMode::Measure);
        let fftw_bytes = fftw_plan.plan_bytes() + fftw_plan.planning_peak_bytes() + data_bytes;
        let est_plan = Plan::new(n, PlanMode::Estimate);
        let est_bytes = est_plan.plan_bytes() + data_bytes;
        let kb = |b: usize| format!("{:.1}", b as f64 / 1024.0);
        rows.push(vec![
            format!("2^{k}"),
            kb(spl_bytes),
            kb(fftw_bytes),
            kb(est_bytes),
            format!("{:.2}", spl_bytes as f64 / est_bytes as f64),
        ]);
    }
    print_table(
        "Figure 5: memory for large-size FFTs (KB, including the data vectors)",
        &[
            "N",
            "SPL",
            "FFTW (measured)",
            "FFTW estimate",
            "SPL/estimate",
        ],
        &rows,
    );
    println!(
        "\n(paper: SPL's memory tracks 'FFTW estimate'; measuring plans costs\n\
         FFTW extra working memory during planning)"
    );
}
