//! Section 4.2 code-size claim: "the increase of code size was very slow.
//! The size of the text segment of the loop code for size 2²⁰ was only
//! 50 percent larger than that of size 2⁷."
//!
//! We report the static instruction count of the lowered loop programs
//! across sizes — the analogue of the text-segment size — and the ratio
//! to the 2⁷ baseline.
//!
//! Usage: `codesize [--quick] [--max-log2 N]` (default 20; this is a
//! compile-only experiment, so the full range is cheap).

use spl_bench::{arg_value_parsed, print_table, quick_mode, with_report};
use spl_search::{
    compile_tree, large_search_traced, small_search_traced, OpCountEvaluator, SearchConfig,
};
use spl_telemetry::{RunReport, Telemetry};

fn main() {
    with_report("codesize", run);
}

fn run(report: &mut RunReport) {
    let max_log: u32 = arg_value_parsed("--max-log2").unwrap_or(if quick_mode() { 12 } else { 20 });
    let config = SearchConfig::default();
    let mut eval = OpCountEvaluator::default();
    let mut search_tel = Telemetry::new();
    let small = small_search_traced(6, &config, &mut eval, &mut search_tel).expect("small search");
    let large = large_search_traced(&small, max_log, &config, &mut eval, &mut search_tel)
        .expect("large search");
    report.push_section("search", search_tel);

    let mut rows = Vec::new();
    let mut base = None;
    for (idx, plans) in large.iter().enumerate() {
        let k = 7 + idx as u32;
        let vm = compile_tree(&plans[0].tree, 64).expect("winner compiles");
        let ops = vm.float_ops() + vm.int_ops();
        let base_ops = *base.get_or_insert(ops);
        rows.push(vec![
            format!("2^{k}"),
            ops.to_string(),
            format!("{:.2}", ops as f64 / base_ops as f64),
        ]);
    }
    print_table(
        "Code size of the loop programs (static instructions)",
        &["N", "instructions", "ratio vs 2^7"],
        &rows,
    );
    println!(
        "\n(paper: the 2^20 loop code is only ~1.5x the 2^7 code because\n\
         unrolled leaves are shared by loops rather than duplicated)"
    );
}
