//! Figure 3: performance for small-size FFTs (N = 2 … 64).
//!
//! The paper searches Equation-10 factorizations per size with dynamic
//! programming, generates straight-line code, compiles it with the
//! platform compiler, and compares pseudo-MFLOPS (`5·N·log₂N / t`)
//! against the FFTW codelets. Here the SPL series is the generated C
//! compiled by the host `cc` (the paper's methodology, via `spl-native`);
//! the baseline is the `spl-minifft` codelet set (DESIGN.md,
//! substitution 2). A VM column shows the portable interpreter as an
//! ablation.
//!
//! Usage: `fig3 [--quick]`.

use std::time::Duration;

use spl_bench::{print_table, quick_mode, with_report, workload, MEASURE_TIME};
use spl_minifft::Codelet;
use spl_numeric::pseudo_mflops;
use spl_search::{
    compile_tree, compile_tree_native, small_search_traced, NativeEvaluator, SearchConfig,
};
use spl_telemetry::{RunReport, Telemetry};
use spl_vm::measure;

fn codelet_pseudo_mflops(n: usize, min_time: Duration) -> f64 {
    let c = Codelet::new(n);
    let x = spl_vm::convert::interleave(&workload(n));
    let mut y = vec![0.0f64; 2 * n];
    let per_call = spl_numeric::metrics::time_adaptive(min_time, || c.apply(&x, 1, &mut y, 1));
    pseudo_mflops(n, per_call * 1e6)
}

fn main() {
    with_report("fig3", run);
}

fn run(report: &mut RunReport) {
    let min_time = if quick_mode() {
        Duration::from_millis(2)
    } else {
        MEASURE_TIME
    };
    let max_k = if quick_mode() { 4 } else { 6 };
    let config = SearchConfig::default();
    let mut eval = NativeEvaluator::new(64, min_time);
    let mut search_tel = Telemetry::new();
    let best =
        small_search_traced(max_k, &config, &mut eval, &mut search_tel).expect("small search");
    report.push_section("search", search_tel);

    let mut rows = Vec::new();
    for r in &best {
        let n = r.tree.size();
        // SPL native: the generated C through the host compiler.
        let kernel = compile_tree_native(&r.tree, 64).expect("winner compiles natively");
        let spl = pseudo_mflops(n, kernel.measure(min_time) * 1e6);
        // SPL on the portable VM (ablation).
        let vm = compile_tree(&r.tree, 64).expect("winner lowers");
        let vm_mflops = pseudo_mflops(n, measure(&vm, min_time).micros_per_call());
        let fftw = codelet_pseudo_mflops(n, min_time);
        // Sanity: the winning program still computes the DFT.
        let x = workload(n);
        let y = spl_bench::run_fft(&vm, &x);
        let want = spl_numeric::reference::dft(&x);
        let err = spl_numeric::relative_rms_error(&y, &want);
        assert!(err < 1e-10, "winner for {n} is wrong (err {err})");
        rows.push(vec![
            n.to_string(),
            r.tree.describe(),
            format!("{spl:.1}"),
            format!("{fftw:.1}"),
            format!("{:.2}", spl / fftw),
            format!("{vm_mflops:.1}"),
        ]);
    }
    print_table(
        "Figure 3: small-size FFT performance (pseudo MFLOPS = 5 N log2 N / t_us)",
        &[
            "N",
            "winning formula",
            "SPL",
            "FFTW codelet",
            "SPL/FFTW",
            "SPL (VM)",
        ],
        &rows,
    );
    println!(
        "\n(paper: the SPL curve tracks the FFTW-codelet curve closely across\n\
         N = 2..64; the expected shape is a ratio near 1 at every size)"
    );
}
