//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **k-best DP** (the paper keeps 3 plans per size, arguing the best
//!    formula for one size need not be the best sub-formula for a larger
//!    one): sweep `keep ∈ {1, 3}` and report the final plan costs.
//! 2. **Unroll threshold** (the paper's `-B`, fixed at 64 to parallel
//!    FFTW): sweep `B ∈ {4, 16, 64}` at a mid-size transform.
//! 3. **Breakdown rule** (Eq. 5 vs. the DIF/parallel/vector forms of
//!    Eqs. 7–9) on the same tree shape.
//!
//! Usage: `ablation [--quick]`.

use std::time::Duration;

use spl_bench::{print_table, quick_mode, with_report, MEASURE_TIME};
use spl_generator::fft::{ct_sequence, FftTree, Rule, ALL_RULES};
use spl_numeric::pseudo_mflops;
use spl_search::{
    compile_tree_native, large_search_traced, small_search_traced, NativeEvaluator, SearchConfig,
};
use spl_telemetry::{RunReport, Telemetry};

fn mflops(tree: &FftTree, unroll: usize, min_time: Duration) -> f64 {
    let kernel = compile_tree_native(tree, unroll).expect("compiles");
    pseudo_mflops(tree.size(), kernel.measure(min_time) * 1e6)
}

fn main() {
    with_report("ablation", run);
}

fn run(report: &mut RunReport) {
    let quick = quick_mode();
    let min_time = if quick {
        Duration::from_millis(2)
    } else {
        MEASURE_TIME
    };
    let max_log = if quick { 10 } else { 14 };

    // ------------------------------------------------------------------
    // 1. k-best sweep.
    // ------------------------------------------------------------------
    let mut rows = Vec::new();
    let mut winners: Vec<Vec<FftTree>> = Vec::new();
    let mut search_tel = Telemetry::new();
    for keep in [1usize, 3] {
        let config = SearchConfig {
            keep,
            ..Default::default()
        };
        let mut eval = NativeEvaluator::new(64, min_time);
        let small =
            small_search_traced(6, &config, &mut eval, &mut search_tel).expect("small search");
        let large = large_search_traced(&small, max_log, &config, &mut eval, &mut search_tel)
            .expect("large search");
        winners.push(large.iter().map(|p| p[0].tree.clone()).collect());
        for (idx, plans) in large.iter().enumerate() {
            let k = 7 + idx as u32;
            if !k.is_multiple_of(2) && !quick {
                continue; // thin out the table
            }
            rows.push(vec![
                format!("keep={keep}"),
                format!("2^{k}"),
                plans[0].tree.describe(),
                format!("{:.1}", mflops(&plans[0].tree, 64, min_time)),
            ]);
        }
    }
    report.push_section("search", search_tel);
    print_table(
        "Ablation 1: k-best DP (paper keeps 3; 1 = ordinary DP)",
        &["config", "N", "winning plan", "pMFLOPS"],
        &rows,
    );
    let diverged = winners[0]
        .iter()
        .zip(&winners[1])
        .filter(|(a, b)| a.describe() != b.describe())
        .count();
    println!(
        "\nplans differing between keep=1 and keep=3: {diverged}/{} sizes\n\
         (the paper's rationale: sub-optimal sub-formulas can win at larger\n\
         sizes; a nonzero count shows the 3-best memo changes decisions)",
        winners[0].len()
    );

    // ------------------------------------------------------------------
    // 2. Unroll-threshold sweep at 2^12.
    // ------------------------------------------------------------------
    let tree = ct_sequence(&[4usize, 4, 4, 4, 4, 4], Rule::CooleyTukey);
    let mut rows = Vec::new();
    for b in [4usize, 16, 64] {
        rows.push(vec![
            format!("-B {b}"),
            format!("{:.1}", mflops(&tree, b, min_time)),
        ]);
    }
    print_table(
        "Ablation 2: unroll threshold (-B) at N = 4096, radix-4 plan",
        &["threshold", "pMFLOPS"],
        &rows,
    );

    // ------------------------------------------------------------------
    // 3. Breakdown rule comparison at 2^10.
    // ------------------------------------------------------------------
    let mut rows = Vec::new();
    for rule in ALL_RULES {
        let tree = ct_sequence(&[4usize, 16, 16], rule);
        rows.push(vec![
            format!("{rule:?}"),
            tree.describe(),
            format!("{:.1}", mflops(&tree, 64, min_time)),
        ]);
    }
    print_table(
        "Ablation 3: breakdown rule (Eq. 5 / 7 / 8 / 9) at N = 1024",
        &["rule", "shape", "pMFLOPS"],
        &rows,
    );
    println!(
        "\n(expected: DIT/DIF comparable; the parallel form pays for its extra\n\
         stride permutations on a single core, the vector form sits between)"
    );
}
