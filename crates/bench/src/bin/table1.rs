//! Table 1: experiment platforms.
//!
//! The paper lists its three machines (UltraSPARC II 333 MHz, MIPS R10000
//! 180 MHz, Pentium III 400 MHz) with caches, memory, OS, and compiler.
//! Those machines are unavailable; this binary prints the paper's
//! platforms for reference and introspects the host the reproduction
//! actually runs on (DESIGN.md, substitution 4).

use std::fs;

use spl_bench::{print_table, with_report};
use spl_telemetry::RunReport;

fn read_first_match(path: &str, key: &str) -> Option<String> {
    let text = fs::read_to_string(path).ok()?;
    text.lines()
        .find(|l| l.starts_with(key))
        .map(|l| l.split(':').nth(1).unwrap_or("").trim().to_string())
}

fn cache_size(index: usize) -> Option<String> {
    let base = format!("/sys/devices/system/cpu/cpu0/cache/index{index}");
    let size = fs::read_to_string(format!("{base}/size")).ok()?;
    let level = fs::read_to_string(format!("{base}/level")).ok()?;
    let kind = fs::read_to_string(format!("{base}/type")).ok()?;
    Some(format!(
        "L{} {} {}",
        level.trim(),
        kind.trim().to_lowercase(),
        size.trim()
    ))
}

fn main() {
    with_report("table1", run);
}

fn run(report: &mut RunReport) {
    let paper_rows = vec![
        vec![
            "UltraSPARC II".to_string(),
            "333 MHz".into(),
            "16KB/16KB".into(),
            "2MB".into(),
            "128MB".into(),
            "Solaris 7".into(),
            "Workshop 5.0".into(),
        ],
        vec![
            "MIPS R10000".to_string(),
            "180 MHz".into(),
            "32KB/32KB".into(),
            "1MB".into(),
            "384MB".into(),
            "IRIX64 6.5".into(),
            "MIPSpro 7.3.1.1m".into(),
        ],
        vec![
            "Pentium III".to_string(),
            "400 MHz".into(),
            "16KB/16KB".into(),
            "512KB".into(),
            "256MB".into(),
            "Linux 2.2.18".into(),
            "egcs 1.1.2".into(),
        ],
    ];
    print_table(
        "Table 1 (paper): experiment platforms",
        &[
            "CPU", "Clock", "L1 cache", "L2 cache", "Memory", "OS", "Compiler",
        ],
        &paper_rows,
    );

    let model = read_first_match("/proc/cpuinfo", "model name").unwrap_or_else(|| "unknown".into());
    let mhz = read_first_match("/proc/cpuinfo", "cpu MHz")
        .map(|v| format!("{v} MHz"))
        .unwrap_or_else(|| "unknown".into());
    let mem = read_first_match("/proc/meminfo", "MemTotal").unwrap_or_else(|| "unknown".into());
    let os = fs::read_to_string("/proc/version")
        .map(|v| v.split_whitespace().take(3).collect::<Vec<_>>().join(" "))
        .unwrap_or_else(|_| "unknown".into());
    let caches: Vec<String> = (0..4).filter_map(cache_size).collect();
    let rustc = std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "rustc (unknown)".into());
    report.meta("cpu", &model);
    report.meta("compiler", &rustc);

    print_table(
        "Table 1 (this reproduction): host platform",
        &["Property", "Value"],
        &[
            vec!["CPU".into(), model],
            vec!["Clock".into(), mhz],
            vec!["Caches".into(), caches.join(", ")],
            vec!["Memory".into(), mem],
            vec!["OS".into(), os],
            vec!["Compiler".into(), rustc],
            vec![
                "Execution engine".into(),
                "spl-vm register VM over optimized i-code (see DESIGN.md)".into(),
            ],
        ],
    );
}
