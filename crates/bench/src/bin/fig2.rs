//! Figure 2: effect of the basic optimizations.
//!
//! The paper compiles 45 SPL formulas for the 32-point FFT in three
//! versions — (1) no optimization, (2) temporary vectors replaced by
//! scalar variables, (3) the default optimizations — and plots performance
//! normalized to version (3). We enumerate the Equation-10 factorization
//! space of `F_32` (51 trees; the first 45 in canonical order are used,
//! matching the paper's count) and do the same.
//!
//! Usage: `fig2 [--quick]`.

use std::time::Duration;

use spl_bench::{print_table, quick_mode, with_report, MEASURE_TIME};
use spl_compiler::{Compiler, CompilerOptions, OptLevel};
use spl_frontend::ast::{DataType, DirectiveState};
use spl_generator::fft::{enumerate_trees, FftTree, Rule};
use spl_telemetry::{RunReport, Telemetry};
use spl_vm::{lower, measure};

fn time_at_level(tree: &FftTree, level: OptLevel, min_time: Duration, tel: &mut Telemetry) -> f64 {
    let mut compiler = Compiler::with_options(CompilerOptions {
        unroll_threshold: Some(64),
        opt_level: level,
        ..Default::default()
    });
    let directives = DirectiveState {
        datatype: DataType::Complex,
        codetype: DataType::Real,
        ..Default::default()
    };
    let unit = compiler
        .compile_sexp(&tree.to_sexp(), &directives)
        .expect("fig2 formula compiles");
    tel.merge(compiler.telemetry());
    let vm = lower(&unit.program).expect("fig2 formula lowers");
    measure(&vm, min_time).secs_per_call
}

fn main() {
    with_report("fig2", run);
}

fn run(report: &mut RunReport) {
    let min_time = if quick_mode() {
        Duration::from_millis(2)
    } else {
        MEASURE_TIME
    };
    let mut trees = enumerate_trees(5, Rule::CooleyTukey); // F_32
    let count = if quick_mode() { 6 } else { 45 };
    trees.truncate(count);

    let mut rows = Vec::new();
    let mut sums = [0.0f64; 2];
    let mut tel = Telemetry::new();
    for (i, tree) in trees.iter().enumerate() {
        let t_none = time_at_level(tree, OptLevel::None, min_time, &mut tel);
        let t_scalar = time_at_level(tree, OptLevel::ScalarTemps, min_time, &mut tel);
        let t_default = time_at_level(tree, OptLevel::Default, min_time, &mut tel);
        // The paper plots inverse execution time normalized to the
        // default-optimization version.
        let none_rel = t_default / t_none;
        let scalar_rel = t_default / t_scalar;
        sums[0] += none_rel;
        sums[1] += scalar_rel;
        rows.push(vec![
            format!("{}", i + 1),
            tree.describe(),
            format!("{none_rel:.3}"),
            format!("{scalar_rel:.3}"),
            "1.000".to_string(),
        ]);
    }
    print_table(
        "Figure 2: normalized performance of three optimization levels (N = 32)",
        &[
            "#",
            "formula",
            "no optimization",
            "scalar temporary",
            "default optimization",
        ],
        &rows,
    );
    report.push_section("compile", tel);
    let n = rows.len() as f64;
    println!(
        "\nmean normalized performance: no-opt {:.3}, scalar {:.3}, default 1.000",
        sums[0] / n,
        sums[1] / n
    );
    println!(
        "(paper: default optimizations gain roughly 1.6-2x over no optimization,\n\
         with scalar replacement capturing part of the gap; exact factors are\n\
         platform- and backend-dependent — see EXPERIMENTS.md)"
    );
}
