//! Wisdom-DB experiment: how many measurements and `cc` invocations
//! does it take to reach the exhaustive search's winners?
//!
//! Three phases over the same size range, all against one wisdom DB:
//!
//! 1. **exhaustive** — the plain DP search, measuring every candidate
//!    (the baseline the pruned phases must match to within 5%).
//! 2. **pruned-cold** — a fresh wisdom DB: the search calibrates the
//!    cost model from probe measurements, then prunes DP candidates
//!    (top-K + slack) before anything is compiled or measured.
//! 3. **warm** — rerun against the populated DB: trusted entries are
//!    reused, so the search measures (and compiles) almost nothing.
//!
//! The report ends with a Figure-4-style estimate-vs-measured table for
//! the winners (calibrated-model prediction against the recorded cost)
//! and a quality gate: every pruned winner must be within 5% of the
//! exhaustive winner's cost (`--gate` turns a violation into exit 1).
//! Under `--eval native` the gate covers sizes 2^10 and up — smaller
//! kernels run sub-microsecond, where run-to-run wall-clock noise
//! alone exceeds 5% — while deterministic op counts gate every size.
//!
//! Usage: `wisdomexp [--quick] [--max-log N] [--eval native|opcount]
//!                   [--gate] [--db DIR]`

use std::path::PathBuf;
use std::time::Duration;

use spl_native::KernelCache;
use spl_search::{
    large_search_traced, large_search_wisdom, plan_features, small_search_traced,
    small_search_wisdom, Evaluator, NativeEvaluator, OpCountEvaluator, Plan, PruneConfig,
    SearchConfig, SizeResult, WisdomDb, WisdomSession,
};

use spl_bench::{arg_value, arg_value_parsed, print_table, quick_mode, with_report};
use spl_minifft::estimate::CalibratedModel;
use spl_telemetry::{RunReport, Telemetry};

/// Small-size search covers 2^1..=2^6, as in the paper.
const SMALL_K: u32 = 6;

fn make_eval(kind: &str, min_time: Duration) -> Box<dyn Evaluator> {
    match kind {
        // The in-memory kernel cache is what splsearch runs with by
        // default; it also hosts the `native.cc_invocations` counter.
        "native" => Box::new(
            NativeEvaluator::new(64, min_time)
                .with_kernel_cache(std::sync::Arc::new(KernelCache::in_memory())),
        ),
        "opcount" => Box::new(OpCountEvaluator::default()),
        other => {
            eprintln!("error: --eval {other:?} is not native or opcount");
            std::process::exit(2);
        }
    }
}

struct Phase {
    name: &'static str,
    small: Vec<SizeResult>,
    large: Vec<Vec<Plan>>,
    measurements: u64,
    cc: u64,
    model: Option<CalibratedModel>,
}

fn counters(tel: &Telemetry) -> (u64, u64) {
    (
        // Calibration probes are real measurements the pruned phases
        // pay for; charge them alongside the DP's own evaluations.
        tel.counter("search.plans_evaluated").unwrap_or(0)
            + tel.counter("search.calibration.probes").unwrap_or(0),
        tel.counter("native.cc_invocations").unwrap_or(0),
    )
}

fn run_exhaustive(
    max_log: u32,
    config: &SearchConfig,
    eval: &mut dyn Evaluator,
) -> (Phase, Telemetry) {
    let mut tel = Telemetry::new();
    let small = small_search_traced(SMALL_K, config, eval, &mut tel).expect("small search");
    let large = large_search_traced(&small, max_log, config, eval, &mut tel).expect("large search");
    tel.merge(&eval.drain_telemetry());
    let (measurements, cc) = counters(&tel);
    (
        Phase {
            name: "exhaustive",
            small,
            large,
            measurements,
            cc,
            model: None,
        },
        tel,
    )
}

fn run_wisdom(
    name: &'static str,
    db_dir: &std::path::Path,
    max_log: u32,
    config: &SearchConfig,
    eval: &mut dyn Evaluator,
) -> (Phase, Telemetry) {
    let mut tel = Telemetry::new();
    let db = WisdomDb::open(db_dir).expect("wisdom db");
    let mut session = WisdomSession::new(db, Some(PruneConfig::default()));
    let small =
        small_search_wisdom(SMALL_K, config, eval, &mut tel, &mut session).expect("small search");
    let large = large_search_wisdom(&small, max_log, config, eval, &mut tel, &mut session)
        .expect("large search");
    let model = session.model().cloned();
    tel.merge(&eval.drain_telemetry());
    let (measurements, cc) = counters(&tel);
    (
        Phase {
            name,
            small,
            large,
            measurements,
            cc,
            model,
        },
        tel,
    )
}

/// Costs are seconds under `--eval native` and op counts under
/// `--eval opcount`; scientific notation reads fine for both.
fn fmt_cost(v: f64) -> String {
    format!("{v:.3e}")
}

fn main() {
    let mut failed = false;
    with_report("wisdomexp", |report| failed = run(report));
    if failed {
        std::process::exit(1);
    }
}

fn run(report: &mut RunReport) -> bool {
    let quick = quick_mode();
    let max_log: u32 = arg_value_parsed("--max-log").unwrap_or(if quick { 8 } else { 16 });
    let eval_kind = arg_value("--eval").unwrap_or_else(|| "opcount".into());
    let gate = std::env::args().any(|a| a == "--gate");
    let min_time = if quick {
        Duration::from_millis(2)
    } else {
        // Winner quality is judged at the 5% level, so the full run
        // buys steadier native timings with a wider window.
        Duration::from_millis(20)
    };
    let db_dir = arg_value("--db").map(PathBuf::from).unwrap_or_else(|| {
        std::env::temp_dir().join(format!("spl_wisdomexp_{}", std::process::id()))
    });
    let own_db = arg_value("--db").is_none();
    if own_db {
        let _ = std::fs::remove_dir_all(&db_dir);
    }
    let config = SearchConfig::default();
    report.meta("eval", &eval_kind);
    report.meta("max_log", &max_log.to_string());

    eprintln!("phase 1/3: exhaustive search to 2^{max_log} ({eval_kind})...");
    let mut eval = make_eval(&eval_kind, min_time);
    let (exhaustive, tel) = run_exhaustive(max_log, &config, eval.as_mut());
    report.push_section("exhaustive", tel);

    eprintln!("phase 2/3: pruned search, cold wisdom DB...");
    let mut eval = make_eval(&eval_kind, min_time);
    let (pruned, tel) = run_wisdom("pruned-cold", &db_dir, max_log, &config, eval.as_mut());
    report.push_section("pruned_cold", tel);

    eprintln!("phase 3/3: rerun against the warm DB...");
    let mut eval = make_eval(&eval_kind, min_time);
    let (warm, tel) = run_wisdom("warm", &db_dir, max_log, &config, eval.as_mut());
    report.push_section("warm", tel);

    // Phase summary: the tentpole's claim in one table.
    let ratio = |a: u64, b: u64| {
        if b == 0 {
            "inf".to_string()
        } else {
            format!("{:.1}x", a as f64 / b as f64)
        }
    };
    let rows: Vec<Vec<String>> = [&exhaustive, &pruned, &warm]
        .iter()
        .map(|p| {
            vec![
                p.name.to_string(),
                p.measurements.to_string(),
                ratio(exhaustive.measurements, p.measurements),
                p.cc.to_string(),
                ratio(exhaustive.cc, p.cc),
            ]
        })
        .collect();
    print_table(
        "Wisdom DB: measurements and cc invocations per phase",
        &[
            "phase",
            "measurements",
            "vs exhaustive",
            "cc",
            "vs exhaustive",
        ],
        &rows,
    );

    // Quality: every pruned winner within 5% of the exhaustive winner.
    // Identical plans are equal by construction; for divergent plans
    // both winners are re-measured under shared conditions. A single
    // timing window cannot separate near-tie plans from scheduler and
    // frequency noise, so each divergent pair is measured by three
    // independent evaluators and the per-plan minimum is compared —
    // min-of-k is the standard robust wall-clock estimator.
    let remeasure_rounds = if eval_kind == "native" { 3 } else { 1 };
    let mut evals: Vec<Box<dyn Evaluator>> = (0..remeasure_rounds)
        .map(|_| make_eval(&eval_kind, min_time))
        .collect();
    let mut robust_cost = |tree: &spl_generator::fft::FftTree| -> f64 {
        evals
            .iter_mut()
            .map(|e| e.cost(tree).expect("re-measure winner"))
            .fold(f64::INFINITY, f64::min)
    };
    let mut quality_rows = Vec::new();
    let mut worst: f64 = 1.0;
    let mut worst_gated: f64 = 1.0;
    // Native calls below ~2^10 run sub-microsecond; the run-to-run
    // noise floor of freshly compiled kernels at that scale exceeds
    // the 5% criterion, so the gate judges the sizes the experiment
    // targets (2^10 and up). Deterministic costs gate every size.
    let gate_min_k = if eval_kind == "native" { 10 } else { 1 };
    let winners = |phase: &Phase| -> Vec<(u32, Plan)> {
        let mut out: Vec<(u32, Plan)> = phase
            .small
            .iter()
            .enumerate()
            .map(|(i, r)| {
                (
                    i as u32 + 1,
                    Plan {
                        tree: r.tree.clone(),
                        cost: r.cost,
                    },
                )
            })
            .collect();
        out.extend(
            phase
                .large
                .iter()
                .enumerate()
                .map(|(i, plans)| (SMALL_K + 1 + i as u32, plans[0].clone())),
        );
        out
    };
    for ((k, exh), (_, prn)) in winners(&exhaustive).into_iter().zip(winners(&pruned)) {
        let same = exh.tree.to_spec() == prn.tree.to_spec();
        let r = if same {
            1.0
        } else {
            let a = robust_cost(&exh.tree);
            let b = robust_cost(&prn.tree);
            b / a
        };
        worst = worst.max(r);
        if k >= gate_min_k {
            worst_gated = worst_gated.max(r);
        }
        // The calibrated model's view of the winner, Figure-4 style.
        let est = pruned
            .model
            .as_ref()
            .filter(|m| m.confident())
            .and_then(|m| Some(m.predict(&plan_features(&prn.tree, 64)?)));
        quality_rows.push(vec![
            format!("2^{k}"),
            prn.tree.describe(),
            if same {
                "= exhaustive".into()
            } else {
                exh.tree.describe()
            },
            format!("{r:.3}"),
            est.map_or("n/a".into(), fmt_cost),
            fmt_cost(prn.cost),
            est.map_or("n/a".into(), |e| format!("{:.2}", e / prn.cost)),
        ]);
    }
    print_table(
        "Pruned winners vs exhaustive (cost ratio) and estimate vs measured",
        &[
            "N",
            "pruned winner",
            "exhaustive winner",
            "cost ratio",
            "estimate",
            "measured",
            "est/meas",
        ],
        &quality_rows,
    );
    println!(
        "\nworst pruned/exhaustive cost ratio: {worst:.3} \
         (gated sizes 2^{gate_min_k}+: {worst_gated:.3}, gate: <= 1.05)\n\
         measurements: exhaustive {} -> pruned {} -> warm {}\n\
         cc invocations: exhaustive {} -> pruned {} -> warm {}",
        exhaustive.measurements,
        pruned.measurements,
        warm.measurements,
        exhaustive.cc,
        pruned.cc,
        warm.cc,
    );
    report.meta("worst_ratio", &format!("{worst:.4}"));
    report.meta("worst_ratio_gated", &format!("{worst_gated:.4}"));

    if own_db {
        let _ = std::fs::remove_dir_all(&db_dir);
    }
    if gate {
        if worst_gated > 1.05 {
            eprintln!(
                "GATE FAIL: pruned winners drift {worst_gated:.3}x from exhaustive \
                 at 2^{gate_min_k}+ (> 1.05)"
            );
            return true;
        }
        if warm.measurements > 0 && warm.measurements * 5 > exhaustive.measurements {
            eprintln!(
                "GATE FAIL: warm rerun took {} measurements vs {} exhaustive (< 5x saving)",
                warm.measurements, exhaustive.measurements
            );
            return true;
        }
        eprintln!(
            "gate passed: worst ratio {worst:.3}, warm measurements {}",
            warm.measurements
        );
    }
    false
}
