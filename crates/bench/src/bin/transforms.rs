//! Generality beyond the FFT (the paper's closing argument, and its
//! Section 5 pointer to the WHT package of Johnson & Püschel): run the
//! same search machinery over the Walsh–Hadamard split rule, and compile
//! the recursive DCT rules, reporting performance for each.
//!
//! Usage: `transforms [--quick]`.

use std::time::Duration;

use spl_bench::{print_table, quick_mode, with_report, MEASURE_TIME};
use spl_compiler::{Compiler, CompilerOptions};
use spl_frontend::ast::{DataType, DirectiveState};
use spl_generator::{bluestein, dct};
use spl_native::NativeKernel;
use spl_numeric::pseudo_mflops;
use spl_search::wht_search;
use spl_telemetry::{RunReport, Telemetry};

fn native_for(sexp: &spl_frontend::Sexp, unroll: usize, datatype: DataType) -> NativeKernel {
    let mut compiler = Compiler::with_options(CompilerOptions {
        unroll_threshold: Some(unroll),
        ..Default::default()
    });
    compiler
        .compile_source(dct::TEMPLATE_SOURCE)
        .expect("dct templates");
    compiler
        .compile_source(bluestein::TEMPLATE_SOURCE)
        .expect("bluestein templates");
    let directives = DirectiveState {
        datatype,
        codetype: DataType::Real,
        ..Default::default()
    };
    let unit = compiler.compile_sexp(sexp, &directives).expect("compiles");
    NativeKernel::compile(&unit).expect("native")
}

fn native_real(sexp: &spl_frontend::Sexp, unroll: usize) -> NativeKernel {
    native_for(sexp, unroll, DataType::Real)
}

fn main() {
    with_report("transforms", run);
}

fn run(report: &mut RunReport) {
    let quick = quick_mode();
    let min_time = if quick {
        Duration::from_millis(2)
    } else {
        MEASURE_TIME
    };
    let max_k = if quick { 4 } else { 8 };
    let mut tel = Telemetry::new();

    // WHT search over the split rule.
    let best = wht_search(max_k, 6, 64, min_time).expect("wht search");
    tel.add("transforms.wht_sizes", best.len() as u64);
    let mut rows = Vec::new();
    for (tree, _) in &best {
        let n = tree.size();
        let kernel = native_real(&tree.to_sexp(), 64);
        let t = kernel.measure(min_time);
        rows.push(vec![
            n.to_string(),
            format!("{tree:?}").chars().take(48).collect(),
            format!("{:.1}", pseudo_mflops(n, t * 1e6)),
        ]);
    }
    print_table(
        "WHT search winners (same DP machinery, Walsh–Hadamard split rule)",
        &["N", "winning split", "pMFLOPS"],
        &rows,
    );

    // DCT-II / DCT-IV via the recursive rules.
    let mut rows = Vec::new();
    for k in 2..=if quick { 4 } else { 6 } {
        let n = 1usize << k;
        for (name, sexp) in [("DCT-II", dct::dct2(n)), ("DCT-IV", dct::dct4(n))] {
            let kernel = native_real(&sexp, 16);
            let t = kernel.measure(min_time);
            tel.add("transforms.dct_cases", 1);
            rows.push(vec![
                name.to_string(),
                n.to_string(),
                format!("{:.1}", pseudo_mflops(n, t * 1e6)),
            ]);
        }
    }
    print_table(
        "DCT rules compiled through the same pipeline",
        &["transform", "N", "pMFLOPS"],
        &rows,
    );

    // Prime-size DFTs via Bluestein's chirp-z (pad/extract user
    // templates + the convolution-theorem formula).
    let mut rows = Vec::new();
    for n in [7usize, 13, 31, 61] {
        if quick && n > 13 {
            break;
        }
        let kernel = native_for(&bluestein::bluestein(n), 16, DataType::Complex);
        let t = kernel.measure(min_time);
        tel.add("transforms.bluestein_sizes", 1);
        rows.push(vec![
            n.to_string(),
            bluestein::convolution_size(n).to_string(),
            format!("{:.1}", pseudo_mflops(n, t * 1e6)),
        ]);
    }
    print_table(
        "Prime-size DFTs via Bluestein (conv size = inner power-of-two FFT)",
        &["N", "conv size", "pMFLOPS"],
        &rows,
    );
    println!(
        "\n(the point of this table is that it exists: no FFT-specific code\n\
         was touched to produce it — formulas in, fast subroutines out)"
    );
    report.push_section("transforms", tel);
}
