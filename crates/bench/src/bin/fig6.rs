//! Figure 6: accuracy of the FFT computation.
//!
//! The paper measures relative error per size with benchfft. Here
//! (DESIGN.md, substitution 3): for N ≤ 2¹² the error is the relative RMS
//! distance to a Kahan-compensated O(n²) DFT; for larger N it is the
//! round-trip error `‖IFFT(FFT(x)) − x‖ / ‖x‖`, which grows with the same
//! O(√log N) trend.
//!
//! Usage: `fig6 [--quick] [--max-log2 N]` (default 18).

use spl_bench::{
    arg_value_parsed, print_table, quick_mode, run_fft, run_ifft, with_report, workload,
};
use spl_numeric::{reference, relative_rms_error};
use spl_search::{
    compile_tree, large_search_traced, small_search_traced, OpCountEvaluator, SearchConfig,
};
use spl_telemetry::{RunReport, Telemetry};

fn main() {
    with_report("fig6", run);
}

fn run(report: &mut RunReport) {
    let quick = quick_mode();
    let max_log: u32 = arg_value_parsed("--max-log2").unwrap_or(if quick { 10 } else { 18 });
    let config = SearchConfig::default();
    let mut eval = OpCountEvaluator::default();
    let mut search_tel = Telemetry::new();
    let small = small_search_traced(6, &config, &mut eval, &mut search_tel).expect("small search");
    let large = if max_log > 6 {
        large_search_traced(&small, max_log, &config, &mut eval, &mut search_tel)
            .expect("large search")
    } else {
        Vec::new()
    };
    report.push_section("search", search_tel);

    let mut rows = Vec::new();
    let mut trees: Vec<_> = small.iter().map(|r| r.tree.clone()).collect();
    trees.extend(large.iter().map(|p| p[0].tree.clone()));
    for tree in &trees {
        let n = tree.size();
        let k = n.trailing_zeros();
        if k > max_log {
            break;
        }
        let vm = compile_tree(tree, 64).expect("tree compiles");
        let x = workload(n);
        let y = run_fft(&vm, &x);
        let (err, method) = if k <= 12 {
            let want = reference::dft_compensated(&x);
            (relative_rms_error(&y, &want), "vs compensated DFT")
        } else {
            let back = run_ifft(&vm, &y);
            (relative_rms_error(&back, &x), "round trip")
        };
        rows.push(vec![
            format!("2^{k}"),
            format!("{err:.3e}"),
            method.to_string(),
        ]);
    }
    print_table(
        "Figure 6: relative RMS error of the generated FFTs",
        &["N", "relative error", "method"],
        &rows,
    );
    println!(
        "\n(paper: errors stay near machine precision, growing slowly —\n\
         roughly as sqrt(log N) — with transform size)"
    );
}
