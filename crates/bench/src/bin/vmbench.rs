//! VM execution-engine benchmark: old (reference executor) vs. new
//! (resolved engine) ns/op on fixed FFT sizes 2⁴…2¹⁰.
//!
//! The per-size loop code is deterministic (a fixed radix-8 `ct_sequence`
//! factorization, leaves ≤ 64 unrolled), so runs are comparable across
//! commits; the result is written to `BENCH_vm.json` for the CI artifact
//! trail. Fusion and strength-reduction counters accompany each size so
//! throughput changes can be correlated with what the resolver did.
//!
//! Usage: `vmbench [--quick] [--stats] [--out FILE]
//!                 [--min-median-speedup X] [--compare BASELINE]
//!                 [--update-baseline [--force]]
//!                 [--trace-json FILE] [--trace-chrome FILE]`
//!
//! `--min-median-speedup` turns the run into a gate: exit nonzero when
//! the median resolved-vs-reference speedup falls below `X` (CI uses a
//! bound well under the ≥2× seen on idle hardware, so a loaded runner
//! does not flake).
//!
//! `--compare BASELINE` gates against a pinned earlier run (the
//! committed `results/BENCH_vm.baseline.json`): exit nonzero when the
//! median speedup regresses more than 35%, or any per-size speedup more
//! than 50%, relative to the baseline. Speedups are ratios of two
//! measurements taken under the same load, so they are far more stable
//! across machines than absolute ns; the wide tolerances absorb
//! shared-runner noise while still catching a lost fusion or
//! strength-reduction pass (which halves the ratio). Refresh
//! procedure: docs/TELEMETRY.md.
//!
//! `--update-baseline` regenerates the pinned baseline from this run's
//! measurements. To stop a regressed run from silently becoming the new
//! normal, it refuses unless the run would itself pass `--compare`
//! against the existing baseline (a missing baseline is fine: first
//! write), and refuses `--quick` measurements outright; `--force`
//! overrides both checks.
//!
//! Every run also appends one JSON line to `results/bench_history.jsonl`
//! (skipped when `results/` is absent), building an append-only local
//! history of speedups across commits.

use std::time::Duration;

use spl_bench::{arg_value, print_table, quick_mode, with_report, MEASURE_TIME};
use spl_generator::fft::{ct_sequence, Rule};
use spl_search::compile_tree;
use spl_telemetry::json::Json;
use spl_telemetry::{RunReport, Telemetry};
use spl_vm::{measure, measure_reference};

/// The fixed radix-8 factorization of 2^k used for every run.
fn factors(k: u32) -> Vec<usize> {
    let mut rem = k;
    let mut f = Vec::new();
    while rem > 3 {
        f.push(8);
        rem -= 3;
    }
    if rem > 0 {
        f.push(1 << rem);
    }
    f
}

struct Row {
    k: u32,
    tree: String,
    old_ns: f64,
    new_ns: f64,
    speedup: f64,
    fused: u64,
    cursors: u64,
}

fn main() {
    let gate: Option<f64> = arg_value("--min-median-speedup").and_then(|v| v.parse().ok());
    let baseline = arg_value("--compare");
    let mut median = 0.0;
    let mut rows = Vec::new();
    with_report("vmbench", |report| {
        let (m, r) = run(report);
        median = m;
        rows = r;
    });
    append_history(&rows, median);
    if let Some(min) = gate {
        if median < min {
            eprintln!("vmbench: median speedup {median:.2}x below required {min:.2}x");
            std::process::exit(1);
        }
        eprintln!("vmbench: median speedup {median:.2}x meets required {min:.2}x");
    }
    if let Some(path) = baseline {
        match compare(&rows, median, &path) {
            Ok(msg) => eprintln!("vmbench: {msg}"),
            Err(failures) => {
                for f in &failures {
                    eprintln!("vmbench: REGRESSION {f}");
                }
                std::process::exit(1);
            }
        }
    }
    if std::env::args().any(|a| a == "--update-baseline") {
        let force = std::env::args().any(|a| a == "--force");
        if let Err(e) = update_baseline(&rows, median, force) {
            eprintln!("vmbench: refusing to update baseline: {e}");
            std::process::exit(1);
        }
    }
}

/// The pinned baseline `--compare` gates against in CI.
const BASELINE_PATH: &str = "results/BENCH_vm.baseline.json";

/// Regenerates [`BASELINE_PATH`] from this run, unless the run is
/// suspect: `--quick` measurements, or a run that would itself fail
/// `--compare` against the existing baseline (i.e. a regression must
/// not become the new normal). `--force` skips both checks.
fn update_baseline(rows: &[Row], median: f64, force: bool) -> Result<(), String> {
    if !force {
        if quick_mode() {
            return Err(
                "--quick measurements are too noisy to pin (use --force to override)".into(),
            );
        }
        if std::path::Path::new(BASELINE_PATH).exists() {
            if let Err(failures) = compare(rows, median, BASELINE_PATH) {
                return Err(format!(
                    "this run regresses vs the current baseline \
                     (use --force to pin it anyway):\n  {}",
                    failures.join("\n  ")
                ));
            }
        }
    }
    if let Some(dir) = std::path::Path::new(BASELINE_PATH).parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    }
    std::fs::write(BASELINE_PATH, render_json(rows, median))
        .map_err(|e| format!("write {BASELINE_PATH}: {e}"))?;
    eprintln!("vmbench: baseline updated: {BASELINE_PATH} (median {median:.2}x)");
    Ok(())
}

/// Relative median-speedup loss tolerated by `--compare`.
const MEDIAN_TOLERANCE: f64 = 0.35;
/// Relative per-size speedup loss tolerated by `--compare` (looser:
/// single sizes jitter much more than the median).
const SIZE_TOLERANCE: f64 = 0.5;

/// Gates this run's speedups against a pinned baseline JSON file
/// (schema of [`render_json`]). Returns a summary line, or the list of
/// regressions.
fn compare(rows: &[Row], median: f64, path: &str) -> Result<String, Vec<String>> {
    let base = std::fs::read_to_string(path)
        .map_err(|e| vec![format!("(baseline unreadable) {path}: {e}")])
        .and_then(|text| {
            spl_telemetry::json::parse(&text)
                .map_err(|e| vec![format!("(baseline unparseable) {path}: {e}")])
        })?;
    let base_median = base
        .get("median_speedup")
        .and_then(Json::as_f64)
        .ok_or_else(|| vec![format!("(baseline malformed) {path}: no median_speedup")])?;
    let mut failures = Vec::new();
    let median_floor = base_median * (1.0 - MEDIAN_TOLERANCE);
    if median < median_floor {
        failures.push(format!(
            "median speedup {median:.2}x below {median_floor:.2}x \
             (baseline {base_median:.2}x - {:.0}%)",
            MEDIAN_TOLERANCE * 100.0
        ));
    }
    let mut compared = 0;
    for size in base.get("sizes").and_then(Json::as_arr).unwrap_or_default() {
        let (Some(n), Some(bs)) = (
            size.get("n").and_then(Json::as_f64),
            size.get("speedup").and_then(Json::as_f64),
        ) else {
            continue;
        };
        let Some(row) = rows.iter().find(|r| (1u64 << r.k) as f64 == n) else {
            continue;
        };
        compared += 1;
        let size_floor = bs * (1.0 - SIZE_TOLERANCE);
        if row.speedup < size_floor {
            failures.push(format!(
                "2^{}: speedup {:.2}x below {size_floor:.2}x (baseline {bs:.2}x - {:.0}%)",
                row.k,
                row.speedup,
                SIZE_TOLERANCE * 100.0
            ));
        }
    }
    if failures.is_empty() {
        Ok(format!(
            "no regression vs {path} ({compared} sizes, median {median:.2}x vs {base_median:.2}x)"
        ))
    } else {
        Err(failures)
    }
}

/// Appends one JSON line for this run to `results/bench_history.jsonl`
/// (append-only; skipped without complaint when `results/` is absent,
/// matching the telemetry-artifact convention).
fn append_history(rows: &[Row], median: f64) {
    use std::fmt::Write as _;
    use std::io::Write as _;
    let dir = std::path::Path::new("results");
    if !dir.exists() {
        return;
    }
    let epoch = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut line = format!(
        "{{\"tool\": \"vmbench\", \"epoch\": {epoch}, \"quick\": {}, \
         \"median_speedup\": {median:.3}, \"sizes\": [",
        quick_mode()
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            line,
            "{}{{\"n\": {}, \"speedup\": {:.3}, \"old_ns\": {:.1}, \"new_ns\": {:.1}}}",
            if i == 0 { "" } else { ", " },
            1u64 << r.k,
            r.speedup,
            r.old_ns,
            r.new_ns
        );
    }
    line.push_str("]}\n");
    let path = dir.join("bench_history.jsonl");
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    match res {
        Ok(()) => eprintln!("history: appended to {}", path.display()),
        Err(e) => eprintln!("note: could not append {}: {e}", path.display()),
    }
}

fn run(report: &mut RunReport) -> (f64, Vec<Row>) {
    let min_time = if quick_mode() {
        Duration::from_millis(2)
    } else {
        MEASURE_TIME
    };
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_vm.json".into());

    let mut tel = Telemetry::new();
    let mut rows = Vec::new();
    for k in 4..=10u32 {
        let tree = ct_sequence(&factors(k), Rule::CooleyTukey);
        let vm = compile_tree(&tree, 64).expect("fixed candidate compiles");
        let rs = *vm.resolve_stats().unwrap_or_else(|| {
            panic!(
                "2^{k} fell back to the reference executor: {:?}",
                vm.resolve_fallback()
            )
        });
        let old = measure_reference(&vm, min_time);
        let new = measure(&vm, min_time);
        rs.record(&mut tel);
        let row = Row {
            k,
            tree: tree.describe(),
            old_ns: old.secs_per_call * 1e9,
            new_ns: new.secs_per_call * 1e9,
            speedup: old.secs_per_call / new.secs_per_call,
            fused: rs.fused_muladd + rs.fused_negfold + rs.fused_butterfly,
            cursors: rs.cursors,
        };
        eprintln!(
            "  2^{k}: old {:.0} ns  new {:.0} ns  ({:.2}x, {} fused ops, {} cursors)",
            row.old_ns, row.new_ns, row.speedup, row.fused, row.cursors
        );
        rows.push(row);
    }

    let mut speedups: Vec<f64> = rows.iter().map(|r| r.speedup).collect();
    speedups.sort_by(|a, b| a.total_cmp(b));
    let median = speedups[speedups.len() / 2];
    tel.set_metric("vmbench.median_speedup", median);

    print_table(
        "VM engine: reference executor vs resolved engine (ns per call)",
        &[
            "N", "plan", "old ns", "new ns", "speedup", "fused", "cursors",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    format!("2^{}", r.k),
                    r.tree.clone(),
                    format!("{:.0}", r.old_ns),
                    format!("{:.0}", r.new_ns),
                    format!("{:.2}x", r.speedup),
                    r.fused.to_string(),
                    r.cursors.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("\nmedian speedup: {median:.2}x");

    let json = render_json(&rows, median);
    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("wrote {out_path}"),
        Err(e) => eprintln!("note: could not write {out_path}: {e}"),
    }
    report.push_section("vm", tel);
    (median, rows)
}

/// Hand-rolled JSON (numbers and plain-ASCII plan strings only), keeping
/// the artifact dependency-free like the telemetry writer.
fn render_json(rows: &[Row], median: f64) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("{\n  \"sizes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"n\": {}, \"plan\": \"{}\", \"old_ns\": {:.1}, \"new_ns\": {:.1}, \
             \"speedup\": {:.3}, \"fused_ops\": {}, \"cursors\": {}}}{}",
            1u64 << r.k,
            r.tree,
            r.old_ns,
            r.new_ns,
            r.speedup,
            r.fused,
            r.cursors,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    let _ = write!(s, "  ],\n  \"median_speedup\": {median:.3}\n}}\n");
    s
}
