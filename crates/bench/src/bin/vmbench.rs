//! VM execution-engine benchmark: old (reference executor) vs. new
//! (resolved engine) ns/op on fixed FFT sizes 2⁴…2¹⁰.
//!
//! The per-size loop code is deterministic (a fixed radix-8 `ct_sequence`
//! factorization, leaves ≤ 64 unrolled), so runs are comparable across
//! commits; the result is written to `BENCH_vm.json` for the CI artifact
//! trail. Fusion and strength-reduction counters accompany each size so
//! throughput changes can be correlated with what the resolver did.
//!
//! Usage: `vmbench [--quick] [--stats] [--out FILE]
//!                 [--min-median-speedup X]`
//!
//! `--min-median-speedup` turns the run into a gate: exit nonzero when
//! the median resolved-vs-reference speedup falls below `X` (CI uses a
//! bound well under the ≥2× seen on idle hardware, so a loaded runner
//! does not flake).

use std::time::Duration;

use spl_bench::{arg_value, print_table, quick_mode, with_report, MEASURE_TIME};
use spl_generator::fft::{ct_sequence, Rule};
use spl_search::compile_tree;
use spl_telemetry::{RunReport, Telemetry};
use spl_vm::{measure, measure_reference};

/// The fixed radix-8 factorization of 2^k used for every run.
fn factors(k: u32) -> Vec<usize> {
    let mut rem = k;
    let mut f = Vec::new();
    while rem > 3 {
        f.push(8);
        rem -= 3;
    }
    if rem > 0 {
        f.push(1 << rem);
    }
    f
}

struct Row {
    k: u32,
    tree: String,
    old_ns: f64,
    new_ns: f64,
    speedup: f64,
    fused: u64,
    cursors: u64,
}

fn main() {
    let gate: Option<f64> = arg_value("--min-median-speedup").and_then(|v| v.parse().ok());
    let mut median = 0.0;
    with_report("vmbench", |report| median = run(report));
    if let Some(min) = gate {
        if median < min {
            eprintln!("vmbench: median speedup {median:.2}x below required {min:.2}x");
            std::process::exit(1);
        }
        eprintln!("vmbench: median speedup {median:.2}x meets required {min:.2}x");
    }
}

fn run(report: &mut RunReport) -> f64 {
    let min_time = if quick_mode() {
        Duration::from_millis(2)
    } else {
        MEASURE_TIME
    };
    let stats = std::env::args().any(|a| a == "--stats");
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_vm.json".into());

    let mut tel = Telemetry::new();
    let mut rows = Vec::new();
    for k in 4..=10u32 {
        let tree = ct_sequence(&factors(k), Rule::CooleyTukey);
        let vm = compile_tree(&tree, 64).expect("fixed candidate compiles");
        let rs = *vm.resolve_stats().unwrap_or_else(|| {
            panic!(
                "2^{k} fell back to the reference executor: {:?}",
                vm.resolve_fallback()
            )
        });
        let old = measure_reference(&vm, min_time);
        let new = measure(&vm, min_time);
        rs.record(&mut tel);
        let row = Row {
            k,
            tree: tree.describe(),
            old_ns: old.secs_per_call * 1e9,
            new_ns: new.secs_per_call * 1e9,
            speedup: old.secs_per_call / new.secs_per_call,
            fused: rs.fused_muladd + rs.fused_negfold + rs.fused_butterfly,
            cursors: rs.cursors,
        };
        eprintln!(
            "  2^{k}: old {:.0} ns  new {:.0} ns  ({:.2}x, {} fused ops, {} cursors)",
            row.old_ns, row.new_ns, row.speedup, row.fused, row.cursors
        );
        rows.push(row);
    }

    let mut speedups: Vec<f64> = rows.iter().map(|r| r.speedup).collect();
    speedups.sort_by(|a, b| a.total_cmp(b));
    let median = speedups[speedups.len() / 2];
    tel.set_metric("vmbench.median_speedup", median);

    print_table(
        "VM engine: reference executor vs resolved engine (ns per call)",
        &[
            "N", "plan", "old ns", "new ns", "speedup", "fused", "cursors",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    format!("2^{}", r.k),
                    r.tree.clone(),
                    format!("{:.0}", r.old_ns),
                    format!("{:.0}", r.new_ns),
                    format!("{:.2}x", r.speedup),
                    r.fused.to_string(),
                    r.cursors.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("\nmedian speedup: {median:.2}x");
    if stats {
        for c in tel.counters() {
            eprintln!("  {:<28} {:>12}", c.name, c.value);
        }
    }

    let json = render_json(&rows, median);
    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("wrote {out_path}"),
        Err(e) => eprintln!("note: could not write {out_path}: {e}"),
    }
    report.push_section("vm", tel);
    median
}

/// Hand-rolled JSON (numbers and plain-ASCII plan strings only), keeping
/// the artifact dependency-free like the telemetry writer.
fn render_json(rows: &[Row], median: f64) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("{\n  \"sizes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"n\": {}, \"plan\": \"{}\", \"old_ns\": {:.1}, \"new_ns\": {:.1}, \
             \"speedup\": {:.3}, \"fused_ops\": {}, \"cursors\": {}}}{}",
            1u64 << r.k,
            r.tree,
            r.old_ns,
            r.new_ns,
            r.speedup,
            r.fused,
            r.cursors,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    let _ = write!(s, "  ],\n  \"median_speedup\": {median:.3}\n}}\n");
    s
}
