//! VM execution-engine benchmark: old (reference executor) vs. new
//! (resolved engine) ns/op on fixed FFT sizes 2⁴…2¹⁰, plus per-width
//! vector-path rows (scalar vs every supported SIMD lane width).
//!
//! The per-size loop code is deterministic (a fixed radix-8 `ct_sequence`
//! factorization, leaves ≤ 64 unrolled), so runs are comparable across
//! commits; the result is written to `BENCH_vm.json` for the CI artifact
//! trail. Fusion and strength-reduction counters accompany each size so
//! throughput changes can be correlated with what the resolver did.
//!
//! The vector rows use the same trees compiled at a *looped* leaf
//! threshold (`-B 16`), because at the paper's `-B 64` the 2⁶ program
//! is a single straight-line block with no loops for the vectorize
//! pass to mark. Each row times the resolved engine with the vector
//! path forced off, then once per hardware-supported lane width
//! (width 2, and width 4 where AVX is detected); `vec_speedup` is
//! scalar time over full-width time.
//!
//! Usage: `vmbench [--quick] [--stats] [--out FILE]
//!                 [--min-median-speedup X] [--min-vec-speedup X]
//!                 [--compare BASELINE]
//!                 [--update-baseline [--force]]
//!                 [--trace-json FILE] [--trace-chrome FILE]`
//!
//! `--min-median-speedup` turns the run into a gate: exit nonzero when
//! the median resolved-vs-reference speedup falls below `X` (CI uses a
//! bound well under the ≥2× seen on idle hardware, so a loaded runner
//! does not flake). `--min-vec-speedup` gates the median per-width
//! vector speedup the same way (skipped with a note on targets with no
//! vector backend). Unparsable gate values are hard errors, not
//! silently ignored gates.
//!
//! `--compare BASELINE` gates against a pinned earlier run (the
//! committed `results/BENCH_vm.baseline.json`): exit nonzero when the
//! median speedup regresses more than 35%, or any per-size speedup more
//! than 50%, relative to the baseline; when the baseline carries
//! `vec_sizes` rows, per-size vector speedups are gated the same way.
//! Speedups are ratios of two measurements taken under the same load,
//! so they are far more stable across machines than absolute ns; the
//! wide tolerances absorb shared-runner noise while still catching a
//! lost fusion/vectorization pass (which halves the ratio). Refresh
//! procedure: docs/TELEMETRY.md.
//!
//! `--update-baseline` regenerates the pinned baseline from this run's
//! measurements. To stop a regressed run from silently becoming the new
//! normal, it refuses unless the run would itself pass `--compare`
//! against the existing baseline (a missing baseline is fine: first
//! write), and refuses `--quick` measurements outright; `--force`
//! overrides both checks.
//!
//! Every run also appends one JSON line to `results/bench_history.jsonl`
//! (skipped when `results/` is absent), building an append-only local
//! history of speedups across commits. The line is written *after* the
//! gates run and carries a `"gate"` field (`"pass"`, `"fail"`, or
//! `"none"` when no gate was requested), so trend analysis can filter
//! out regressed runs instead of silently averaging them in.

use std::time::Duration;

use spl_bench::{arg_value, arg_value_parsed, print_table, quick_mode, with_report, MEASURE_TIME};
use spl_generator::fft::{ct_sequence, Rule};
use spl_search::compile_tree;
use spl_telemetry::json::Json;
use spl_telemetry::{RunReport, Telemetry};
use spl_vm::simd;
use spl_vm::{measure, measure_reference};

/// The fixed radix-8 factorization of 2^k used for every run.
fn factors(k: u32) -> Vec<usize> {
    let mut rem = k;
    let mut f = Vec::new();
    while rem > 3 {
        f.push(8);
        rem -= 3;
    }
    if rem > 0 {
        f.push(1 << rem);
    }
    f
}

struct Row {
    k: u32,
    tree: String,
    old_ns: f64,
    new_ns: f64,
    speedup: f64,
    fused: u64,
    cursors: u64,
}

/// One per-width vector-path measurement (looped `-B 16` variant).
struct VecRow {
    k: u32,
    tree: String,
    /// Resolved engine, vector path forced off.
    scalar_ns: f64,
    /// `(lane width, ns)` per hardware-supported width, ascending.
    by_width: Vec<(usize, f64)>,
    /// `scalar_ns` over the full-width time (1.0 when no backend).
    speedup: f64,
}

/// Leaf-unroll threshold for the vector-path rows; see module docs.
const VEC_UNROLL: usize = 16;

fn main() {
    let gate: Option<f64> = arg_value_parsed("--min-median-speedup");
    let vec_gate: Option<f64> = arg_value_parsed("--min-vec-speedup");
    let baseline = arg_value("--compare");
    let mut median = 0.0;
    let mut vec_median = 0.0;
    let mut rows = Vec::new();
    let mut vec_rows = Vec::new();
    with_report("vmbench", |report| {
        let out = run(report);
        median = out.median;
        vec_median = out.vec_median;
        rows = out.rows;
        vec_rows = out.vec_rows;
    });
    // Gates run before the history append so the history line can carry
    // their outcome; a regressed run must not pollute trend data as if
    // it were healthy.
    let mut failures: Vec<String> = Vec::new();
    let mut gated = false;
    if let Some(min) = gate {
        gated = true;
        if median < min {
            failures.push(format!(
                "median speedup {median:.2}x below required {min:.2}x"
            ));
        } else {
            eprintln!("vmbench: median speedup {median:.2}x meets required {min:.2}x");
        }
    }
    if let Some(min) = vec_gate {
        if simd::width() == 0 {
            eprintln!("vmbench: no vector backend on this target; --min-vec-speedup skipped");
        } else {
            gated = true;
            if vec_median < min {
                failures.push(format!(
                    "median vector speedup {vec_median:.2}x below required {min:.2}x"
                ));
            } else {
                eprintln!(
                    "vmbench: median vector speedup {vec_median:.2}x meets required {min:.2}x"
                );
            }
        }
    }
    if let Some(path) = &baseline {
        gated = true;
        match compare(&rows, &vec_rows, median, path) {
            Ok(msg) => eprintln!("vmbench: {msg}"),
            Err(mut f) => failures.append(&mut f),
        }
    }
    let outcome = if !gated {
        "none"
    } else if failures.is_empty() {
        "pass"
    } else {
        "fail"
    };
    append_history(&rows, median, vec_median, outcome);
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("vmbench: REGRESSION {f}");
        }
        std::process::exit(1);
    }
    if std::env::args().any(|a| a == "--update-baseline") {
        let force = std::env::args().any(|a| a == "--force");
        if let Err(e) = update_baseline(&rows, &vec_rows, median, vec_median, force) {
            eprintln!("vmbench: refusing to update baseline: {e}");
            std::process::exit(1);
        }
    }
}

/// The pinned baseline `--compare` gates against in CI.
const BASELINE_PATH: &str = "results/BENCH_vm.baseline.json";

/// Regenerates [`BASELINE_PATH`] from this run, unless the run is
/// suspect: `--quick` measurements, or a run that would itself fail
/// `--compare` against the existing baseline (i.e. a regression must
/// not become the new normal). `--force` skips both checks.
fn update_baseline(
    rows: &[Row],
    vec_rows: &[VecRow],
    median: f64,
    vec_median: f64,
    force: bool,
) -> Result<(), String> {
    if !force {
        if quick_mode() {
            return Err(
                "--quick measurements are too noisy to pin (use --force to override)".into(),
            );
        }
        if std::path::Path::new(BASELINE_PATH).exists() {
            if let Err(failures) = compare(rows, vec_rows, median, BASELINE_PATH) {
                return Err(format!(
                    "this run regresses vs the current baseline \
                     (use --force to pin it anyway):\n  {}",
                    failures.join("\n  ")
                ));
            }
        }
    }
    if let Some(dir) = std::path::Path::new(BASELINE_PATH).parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    }
    std::fs::write(
        BASELINE_PATH,
        render_json(rows, vec_rows, median, vec_median),
    )
    .map_err(|e| format!("write {BASELINE_PATH}: {e}"))?;
    eprintln!("vmbench: baseline updated: {BASELINE_PATH} (median {median:.2}x)");
    Ok(())
}

/// Relative median-speedup loss tolerated by `--compare`.
const MEDIAN_TOLERANCE: f64 = 0.35;
/// Relative per-size speedup loss tolerated by `--compare` (looser:
/// single sizes jitter much more than the median).
const SIZE_TOLERANCE: f64 = 0.5;

/// Gates this run's speedups against a pinned baseline JSON file
/// (schema of [`render_json`]). Returns a summary line, or the list of
/// regressions. Baselines written before the vector path existed have
/// no `vec_sizes`; those rows are then simply not gated.
fn compare(
    rows: &[Row],
    vec_rows: &[VecRow],
    median: f64,
    path: &str,
) -> Result<String, Vec<String>> {
    let base = std::fs::read_to_string(path)
        .map_err(|e| vec![format!("(baseline unreadable) {path}: {e}")])
        .and_then(|text| {
            spl_telemetry::json::parse(&text)
                .map_err(|e| vec![format!("(baseline unparseable) {path}: {e}")])
        })?;
    let base_median = base
        .get("median_speedup")
        .and_then(Json::as_f64)
        .ok_or_else(|| vec![format!("(baseline malformed) {path}: no median_speedup")])?;
    let mut failures = Vec::new();
    let median_floor = base_median * (1.0 - MEDIAN_TOLERANCE);
    if median < median_floor {
        failures.push(format!(
            "median speedup {median:.2}x below {median_floor:.2}x \
             (baseline {base_median:.2}x - {:.0}%)",
            MEDIAN_TOLERANCE * 100.0
        ));
    }
    let mut compared = 0;
    for size in base.get("sizes").and_then(Json::as_arr).unwrap_or_default() {
        let (Some(n), Some(bs)) = (
            size.get("n").and_then(Json::as_f64),
            size.get("speedup").and_then(Json::as_f64),
        ) else {
            continue;
        };
        let Some(row) = rows.iter().find(|r| (1u64 << r.k) as f64 == n) else {
            continue;
        };
        compared += 1;
        let size_floor = bs * (1.0 - SIZE_TOLERANCE);
        if row.speedup < size_floor {
            failures.push(format!(
                "2^{}: speedup {:.2}x below {size_floor:.2}x (baseline {bs:.2}x - {:.0}%)",
                row.k,
                row.speedup,
                SIZE_TOLERANCE * 100.0
            ));
        }
    }
    // Per-width vector rows: only gated when both the baseline and
    // this target have them (a scalar-only target measures no vector
    // speedup to compare).
    if simd::width() != 0 {
        for size in base
            .get("vec_sizes")
            .and_then(Json::as_arr)
            .unwrap_or_default()
        {
            let (Some(n), Some(bs)) = (
                size.get("n").and_then(Json::as_f64),
                size.get("vec_speedup").and_then(Json::as_f64),
            ) else {
                continue;
            };
            let Some(row) = vec_rows.iter().find(|r| (1u64 << r.k) as f64 == n) else {
                continue;
            };
            compared += 1;
            let size_floor = bs * (1.0 - SIZE_TOLERANCE);
            if row.speedup < size_floor {
                failures.push(format!(
                    "2^{} vector: speedup {:.2}x below {size_floor:.2}x \
                     (baseline {bs:.2}x - {:.0}%)",
                    row.k,
                    row.speedup,
                    SIZE_TOLERANCE * 100.0
                ));
            }
        }
    }
    if failures.is_empty() {
        Ok(format!(
            "no regression vs {path} ({compared} sizes, median {median:.2}x vs {base_median:.2}x)"
        ))
    } else {
        Err(failures)
    }
}

/// Renders the one-line history record for this run; `gate` is
/// `"pass"`, `"fail"`, or `"none"` (no gate requested).
fn history_line(rows: &[Row], median: f64, vec_median: f64, gate: &str, epoch: u64) -> String {
    use std::fmt::Write as _;
    let mut line = format!(
        "{{\"tool\": \"vmbench\", \"epoch\": {epoch}, \"quick\": {}, \"gate\": \"{gate}\", \
         \"median_speedup\": {median:.3}, \"vec_median_speedup\": {vec_median:.3}, \"sizes\": [",
        quick_mode()
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            line,
            "{}{{\"n\": {}, \"speedup\": {:.3}, \"old_ns\": {:.1}, \"new_ns\": {:.1}}}",
            if i == 0 { "" } else { ", " },
            1u64 << r.k,
            r.speedup,
            r.old_ns,
            r.new_ns
        );
    }
    line.push_str("]}\n");
    line
}

/// Appends one JSON line for this run to `results/bench_history.jsonl`
/// (append-only; skipped without complaint when `results/` is absent,
/// matching the telemetry-artifact convention). Called after the gates
/// so the row records their outcome.
fn append_history(rows: &[Row], median: f64, vec_median: f64, gate: &str) {
    use std::io::Write as _;
    let dir = std::path::Path::new("results");
    if !dir.exists() {
        return;
    }
    let epoch = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let line = history_line(rows, median, vec_median, gate, epoch);
    let path = dir.join("bench_history.jsonl");
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    match res {
        Ok(()) => eprintln!("history: appended to {}", path.display()),
        Err(e) => eprintln!("note: could not append {}: {e}", path.display()),
    }
}

struct RunOutput {
    median: f64,
    vec_median: f64,
    rows: Vec<Row>,
    vec_rows: Vec<VecRow>,
}

fn run(report: &mut RunReport) -> RunOutput {
    let min_time = if quick_mode() {
        Duration::from_millis(2)
    } else {
        MEASURE_TIME
    };
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_vm.json".into());

    let mut tel = Telemetry::new();
    let mut rows = Vec::new();
    for k in 4..=10u32 {
        let tree = ct_sequence(&factors(k), Rule::CooleyTukey);
        let vm = compile_tree(&tree, 64).expect("fixed candidate compiles");
        let rs = *vm.resolve_stats().unwrap_or_else(|| {
            panic!(
                "2^{k} fell back to the reference executor: {:?}",
                vm.resolve_fallback()
            )
        });
        let old = measure_reference(&vm, min_time);
        let new = measure(&vm, min_time);
        rs.record(&mut tel);
        let row = Row {
            k,
            tree: tree.describe(),
            old_ns: old.secs_per_call * 1e9,
            new_ns: new.secs_per_call * 1e9,
            speedup: old.secs_per_call / new.secs_per_call,
            fused: rs.fused_muladd + rs.fused_negfold + rs.fused_butterfly,
            cursors: rs.cursors,
        };
        eprintln!(
            "  2^{k}: old {:.0} ns  new {:.0} ns  ({:.2}x, {} fused ops, {} cursors)",
            row.old_ns, row.new_ns, row.speedup, row.fused, row.cursors
        );
        rows.push(row);
    }

    let mut speedups: Vec<f64> = rows.iter().map(|r| r.speedup).collect();
    speedups.sort_by(|a, b| a.total_cmp(b));
    let median = speedups[speedups.len() / 2];
    tel.set_metric("vmbench.median_speedup", median);

    print_table(
        "VM engine: reference executor vs resolved engine (ns per call)",
        &[
            "N", "plan", "old ns", "new ns", "speedup", "fused", "cursors",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    format!("2^{}", r.k),
                    r.tree.clone(),
                    format!("{:.0}", r.old_ns),
                    format!("{:.0}", r.new_ns),
                    format!("{:.2}x", r.speedup),
                    r.fused.to_string(),
                    r.cursors.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("\nmedian speedup: {median:.2}x");

    let vec_rows = run_vec(min_time);
    let vec_median = if vec_rows.is_empty() {
        1.0
    } else {
        let mut s: Vec<f64> = vec_rows.iter().map(|r| r.speedup).collect();
        s.sort_by(|a, b| a.total_cmp(b));
        s[s.len() / 2]
    };
    tel.set_metric("vmbench.vec_median_speedup", vec_median);
    if !vec_rows.is_empty() {
        let hw = simd::width();
        print_table(
            &format!(
                "Vector path (-B {VEC_UNROLL} loops): forced-scalar vs lane widths \
                 (backend {}, ns per call)",
                simd::backend_name()
            ),
            &["N", "plan", "scalar ns", "w2 ns", "w4 ns", "speedup"],
            &vec_rows
                .iter()
                .map(|r| {
                    let at = |w: usize| {
                        r.by_width
                            .iter()
                            .find(|&&(rw, _)| rw == w)
                            .map_or("-".into(), |&(_, ns)| format!("{ns:.0}"))
                    };
                    vec![
                        format!("2^{}", r.k),
                        r.tree.clone(),
                        format!("{:.0}", r.scalar_ns),
                        at(2),
                        at(4),
                        format!("{:.2}x", r.speedup),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        println!("\nmedian vector speedup (width {hw}): {vec_median:.2}x");
    } else {
        eprintln!("  (no vector backend on this target; per-width rows skipped)");
    }

    let json = render_json(&rows, &vec_rows, median, vec_median);
    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("wrote {out_path}"),
        Err(e) => eprintln!("note: could not write {out_path}: {e}"),
    }
    report.push_section("vm", tel);
    RunOutput {
        median,
        vec_median,
        rows,
        vec_rows,
    }
}

/// Measures the per-width vector rows on the looped `-B 16` variants.
/// Scalar and vector execution are bit-identical by the resolver's
/// plan contract, so every measurement runs the same computation.
fn run_vec(min_time: Duration) -> Vec<VecRow> {
    let hw = simd::width();
    if hw == 0 {
        return Vec::new();
    }
    let widths: Vec<usize> = [2usize, 4].into_iter().filter(|&w| w <= hw).collect();
    let mut out = Vec::new();
    for k in 6..=10u32 {
        let tree = ct_sequence(&factors(k), Rule::CooleyTukey);
        let vm = compile_tree(&tree, VEC_UNROLL).expect("fixed candidate compiles");
        simd::set_force_scalar(true);
        let scalar = measure(&vm, min_time);
        simd::set_force_scalar(false);
        let mut by_width = Vec::new();
        for &w in &widths {
            simd::set_max_width(Some(w));
            let m = measure(&vm, min_time);
            simd::set_max_width(None);
            by_width.push((w, m.secs_per_call * 1e9));
        }
        let scalar_ns = scalar.secs_per_call * 1e9;
        let full_ns = by_width.last().map_or(scalar_ns, |&(_, ns)| ns);
        let row = VecRow {
            k,
            tree: tree.describe(),
            scalar_ns,
            by_width,
            speedup: scalar_ns / full_ns,
        };
        eprintln!(
            "  2^{k} vector: scalar {:.0} ns{}  ({:.2}x)",
            row.scalar_ns,
            row.by_width
                .iter()
                .map(|&(w, ns)| format!("  w{w} {ns:.0} ns"))
                .collect::<String>(),
            row.speedup
        );
        out.push(row);
    }
    out
}

/// Hand-rolled JSON (numbers and plain-ASCII plan strings only), keeping
/// the artifact dependency-free like the telemetry writer.
fn render_json(rows: &[Row], vec_rows: &[VecRow], median: f64, vec_median: f64) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("{\n  \"sizes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"n\": {}, \"plan\": \"{}\", \"old_ns\": {:.1}, \"new_ns\": {:.1}, \
             \"speedup\": {:.3}, \"fused_ops\": {}, \"cursors\": {}}}{}",
            1u64 << r.k,
            r.tree,
            r.old_ns,
            r.new_ns,
            r.speedup,
            r.fused,
            r.cursors,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    let _ = writeln!(s, "  ],\n  \"median_speedup\": {median:.3},");
    let _ = writeln!(
        s,
        "  \"vec\": {{\"backend\": \"{}\", \"width\": {}, \"unroll\": {VEC_UNROLL}}},",
        simd::backend_name(),
        simd::width()
    );
    s.push_str("  \"vec_sizes\": [\n");
    for (i, r) in vec_rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"n\": {}, \"plan\": \"{}\", \"scalar_ns\": {:.1}",
            1u64 << r.k,
            r.tree,
            r.scalar_ns
        );
        for &(w, ns) in &r.by_width {
            let _ = write!(s, ", \"w{w}_ns\": {ns:.1}");
        }
        let _ = writeln!(
            s,
            ", \"vec_speedup\": {:.3}}}{}",
            r.speedup,
            if i + 1 == vec_rows.len() { "" } else { "," }
        );
    }
    let _ = write!(s, "  ],\n  \"vec_median_speedup\": {vec_median:.3}\n}}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Row> {
        vec![Row {
            k: 4,
            tree: "(4x4)".into(),
            old_ns: 100.0,
            new_ns: 50.0,
            speedup: 2.0,
            fused: 7,
            cursors: 3,
        }]
    }

    /// The history line must record the gate outcome (a regressed run
    /// must be distinguishable in trend data) and stay parseable by
    /// the repo's own JSON reader.
    #[test]
    fn history_line_is_tagged_and_parseable() {
        for gate in ["pass", "fail", "none"] {
            let line = history_line(&rows(), 2.0, 1.4, gate, 123);
            let json = spl_telemetry::json::parse(&line).expect("valid JSON");
            assert_eq!(
                json.get("gate").and_then(Json::as_str),
                Some(gate),
                "{line}"
            );
            assert_eq!(json.get("epoch").and_then(Json::as_f64), Some(123.0));
            assert_eq!(
                json.get("vec_median_speedup").and_then(Json::as_f64),
                Some(1.4)
            );
            assert!(line.ends_with("]}\n"));
        }
    }

    /// BENCH_vm.json must parse and carry the per-width vector fields.
    #[test]
    fn rendered_json_has_vector_rows() {
        let vec_rows = vec![VecRow {
            k: 6,
            tree: "(8x8)".into(),
            scalar_ns: 300.0,
            by_width: vec![(2, 200.0), (4, 150.0)],
            speedup: 2.0,
        }];
        let s = render_json(&rows(), &vec_rows, 2.0, 2.0);
        let json = spl_telemetry::json::parse(&s).expect("valid JSON");
        assert_eq!(json.get("median_speedup").and_then(Json::as_f64), Some(2.0));
        let vs = json.get("vec_sizes").and_then(Json::as_arr).unwrap();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].get("n").and_then(Json::as_f64), Some(64.0));
        assert_eq!(vs[0].get("w2_ns").and_then(Json::as_f64), Some(200.0));
        assert_eq!(vs[0].get("w4_ns").and_then(Json::as_f64), Some(150.0));
        assert_eq!(vs[0].get("vec_speedup").and_then(Json::as_f64), Some(2.0));
        assert!(json.get("vec").and_then(|v| v.get("width")).is_some());
    }
}
