//! A minimal, dependency-free micro-benchmark harness.
//!
//! The workspace builds offline, so the `benches/` targets cannot use
//! criterion; they are plain `main()` programs (`harness = false`)
//! driving this module instead. Measurements reuse the same
//! calibrate-then-repeat engine as the paper's evaluators
//! (`spl_numeric::metrics::time_adaptive`) and land in a
//! [`spl_telemetry::RunReport`] so bench runs are machine-readable too.

use std::time::Duration;

use spl_telemetry::{RunReport, Telemetry};

/// Collects named timings and prints a criterion-style line per bench.
pub struct Harness {
    report: RunReport,
    min_time: Duration,
}

impl Harness {
    /// A harness for the named bench binary.
    ///
    /// `--quick` shrinks the per-bench measurement time; honoring it
    /// keeps `cargo bench` usable as a smoke test.
    pub fn new(tool: &str) -> Self {
        let min_time = if crate::quick_mode() {
            Duration::from_millis(5)
        } else {
            Duration::from_millis(100)
        };
        Harness {
            report: RunReport::new(tool),
            min_time,
        }
    }

    /// Measures `f` under `group/id`, printing seconds per call.
    pub fn bench(&mut self, group: &str, id: &str, f: impl FnMut()) {
        let secs = spl_numeric::metrics::time_adaptive(self.min_time, f);
        let name = format!("{group}/{id}");
        println!("{name:<40} {:>12.1} ns/iter", secs * 1e9);
        let mut tel = Telemetry::new();
        tel.set_metric("secs_per_call", secs);
        self.report.push_section(&name, tel);
    }

    /// Writes the telemetry report when `--telemetry-json <path>` was
    /// passed; otherwise just ends the run.
    pub fn finish(self) {
        if let Some(path) = crate::arg_value("--telemetry-json") {
            let path = std::path::PathBuf::from(path);
            match self.report.write_to_file(&path) {
                Ok(()) => eprintln!("telemetry: {}", path.display()),
                Err(e) => eprintln!("note: could not write {}: {e}", path.display()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_records_each_bench() {
        let mut h = Harness::new("t");
        h.min_time = Duration::from_millis(1);
        let mut n = 0u64;
        h.bench("g", "inc", || n = n.wrapping_add(1));
        assert_eq!(h.report.sections.len(), 1);
        assert_eq!(h.report.sections[0].0, "g/inc");
        assert!(h.report.sections[0].1.metric("secs_per_call").unwrap() > 0.0);
    }
}
