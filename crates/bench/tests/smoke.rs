//! Smoke tests: every figure binary runs to completion in `--quick` mode
//! and prints its table.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> String {
    let out = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("running {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn table1_prints_platforms() {
    let out = run(env!("CARGO_BIN_EXE_table1"), &[]);
    assert!(out.contains("UltraSPARC II"));
    assert!(out.contains("host platform"));
}

#[test]
fn fig2_prints_three_levels() {
    let out = run(env!("CARGO_BIN_EXE_fig2"), &["--quick"]);
    assert!(out.contains("no optimization"));
    assert!(out.contains("scalar temporary"));
    assert!(out.contains("default optimization"));
    assert!(out.contains("1.000"));
}

#[test]
fn fig3_prints_both_series() {
    let out = run(env!("CARGO_BIN_EXE_fig3"), &["--quick"]);
    assert!(out.contains("FFTW codelet"));
    assert!(out.contains("SPL/FFTW"));
}

#[test]
fn fig4_prints_three_series() {
    let out = run(env!("CARGO_BIN_EXE_fig4"), &["--quick"]);
    assert!(out.contains("FFTW estimate"));
    assert!(out.contains("2^7"));
}

#[test]
fn fig5_prints_memory() {
    let out = run(env!("CARGO_BIN_EXE_fig5"), &["--quick"]);
    assert!(out.contains("KB"));
    assert!(out.contains("FFTW (measured)"));
}

#[test]
fn fig6_prints_errors() {
    let out = run(env!("CARGO_BIN_EXE_fig6"), &["--quick"]);
    assert!(out.contains("relative error"));
    assert!(out.contains("2^1"));
    // Errors are tiny.
    assert!(out.contains("e-1"), "expected scientific-notation errors");
}

#[test]
fn codesize_prints_ratios() {
    let out = run(env!("CARGO_BIN_EXE_codesize"), &["--quick"]);
    assert!(out.contains("ratio vs 2^7"));
}

#[test]
fn ablation_prints_three_sections() {
    let out = run(env!("CARGO_BIN_EXE_ablation"), &["--quick"]);
    assert!(out.contains("k-best"));
    assert!(out.contains("unroll threshold"));
    assert!(out.contains("breakdown rule"));
}

#[test]
fn transforms_prints_wht_and_dct() {
    let out = run(env!("CARGO_BIN_EXE_transforms"), &["--quick"]);
    assert!(out.contains("WHT search winners"));
    assert!(out.contains("DCT-IV"));
}
