//! Shape inference for S-expression formulas.
//!
//! For the operators of Section 2 the shape follows from the algebra. For
//! *user-defined* operators (new templates), the paper says the compiler
//! infers the input and output sizes from the template body; we do the
//! same by interval analysis of the `$in`/`$out` subscripts over the
//! loop ranges.

use spl_frontend::ast::{SizeProp, TBinOp, TExpr, TUnOp, TemplateStmt};
use spl_frontend::sexp::Sexp;

use crate::expand::ExpandError;
use crate::table::{static_eval, Bindings, TemplateTable};
use crate::UNROLL_MARKER;

/// Computes `(out_size, in_size)` — rows × columns — of a formula.
///
/// # Errors
///
/// Fails for malformed formulas, shape-inconsistent compositions, or
/// operators with no matching template.
pub fn shape_of(sexp: &Sexp, table: &TemplateTable) -> Result<(usize, usize), ExpandError> {
    shape_of_depth(sexp, table, 0)
}

/// Recursion cap for shape inference. The expander's tensor rewrite can
/// deepen trees beyond what the parser accepted, so this sits well above
/// the parser's nesting limit.
const SHAPE_DEPTH_LIMIT: usize = 2_000;

fn shape_of_depth(
    sexp: &Sexp,
    table: &TemplateTable,
    depth: usize,
) -> Result<(usize, usize), ExpandError> {
    if depth > SHAPE_DEPTH_LIMIT {
        return Err(ExpandError::LimitExceeded(format!(
            "shape inference recursion depth exceeds {SHAPE_DEPTH_LIMIT}"
        )));
    }
    let err = |msg: String| Err(ExpandError::Invalid(msg));
    let items = match sexp {
        Sexp::List(items) => items,
        other => return err(format!("{other} is not a formula")),
    };
    let head = match items.first() {
        Some(Sexp::Symbol(s)) => s.as_str(),
        _ => return err(format!("{sexp} has no operator")),
    };
    let int_at = |k: usize| -> Result<usize, ExpandError> {
        items
            .get(k)
            .and_then(Sexp::as_int)
            .filter(|&v| v > 0)
            .map(|v| v as usize)
            .ok_or_else(|| {
                ExpandError::Invalid(format!("{sexp}: expected positive integer parameter"))
            })
    };
    match head {
        _ if head == UNROLL_MARKER => {
            let inner = items
                .get(1)
                .ok_or_else(|| ExpandError::Shape("empty unroll! marker".into()))?;
            shape_of_depth(inner, table, depth + 1)
        }
        "I" | "F" | "J" => {
            let n = int_at(1)?;
            Ok((n, n))
        }
        "L" | "T" => {
            let n = int_at(1)?;
            let s = int_at(2)?;
            if n % s != 0 {
                return err(format!("{sexp}: second parameter must divide the first"));
            }
            Ok((n, n))
        }
        "diagonal" | "permutation" => {
            let n = items
                .get(1)
                .and_then(Sexp::as_list)
                .map(<[Sexp]>::len)
                .filter(|&n| n > 0)
                .ok_or_else(|| ExpandError::Invalid(format!("{sexp}: expected an element list")))?;
            Ok((n, n))
        }
        "matrix" => {
            let rows = items.len() - 1;
            let cols = items
                .get(1)
                .and_then(Sexp::as_list)
                .map(<[Sexp]>::len)
                .ok_or_else(|| ExpandError::Invalid(format!("{sexp}: expected rows")))?;
            if rows == 0 || cols == 0 {
                return err(format!("{sexp}: empty matrix"));
            }
            for row in &items[1..] {
                if row.as_list().map(<[Sexp]>::len) != Some(cols) {
                    return err(format!("{sexp}: matrix rows have unequal lengths"));
                }
            }
            Ok((rows, cols))
        }
        "compose" => {
            let parts = &items[1..];
            if parts.is_empty() {
                return err("empty compose".into());
            }
            let shapes = parts
                .iter()
                .map(|p| shape_of_depth(p, table, depth + 1))
                .collect::<Result<Vec<_>, _>>()?;
            for w in shapes.windows(2) {
                if w[0].1 != w[1].0 {
                    return err(format!(
                        "compose shape mismatch: {}x{} then {}x{} in {sexp}",
                        w[0].0, w[0].1, w[1].0, w[1].1
                    ));
                }
            }
            Ok((shapes[0].0, shapes[shapes.len() - 1].1))
        }
        "tensor" => {
            let parts = &items[1..];
            if parts.is_empty() {
                return err("empty tensor".into());
            }
            let mut rows = 1usize;
            let mut cols = 1usize;
            for p in parts {
                let (r, c) = shape_of_depth(p, table, depth + 1)?;
                rows = rows.checked_mul(r).ok_or_else(|| {
                    ExpandError::Overflow(format!("tensor rows overflow in {sexp}"))
                })?;
                cols = cols.checked_mul(c).ok_or_else(|| {
                    ExpandError::Overflow(format!("tensor cols overflow in {sexp}"))
                })?;
            }
            Ok((rows, cols))
        }
        "direct-sum" => {
            let parts = &items[1..];
            if parts.is_empty() {
                return err("empty direct-sum".into());
            }
            let mut rows = 0usize;
            let mut cols = 0usize;
            for p in parts {
                let (r, c) = shape_of_depth(p, table, depth + 1)?;
                rows = rows.checked_add(r).ok_or_else(|| {
                    ExpandError::Overflow(format!("direct-sum rows overflow in {sexp}"))
                })?;
                cols = cols.checked_add(c).ok_or_else(|| {
                    ExpandError::Overflow(format!("direct-sum cols overflow in {sexp}"))
                })?;
            }
            Ok((rows, cols))
        }
        _ => infer_from_template(sexp, table),
    }
}

/// Infers the shape of a user-defined operator from its template body: the
/// largest `$in` subscript reachable gives the input size, the largest
/// `$out` subscript the output size.
fn infer_from_template(sexp: &Sexp, table: &TemplateTable) -> Result<(usize, usize), ExpandError> {
    let (def, bindings) = table
        .find(sexp)?
        .ok_or_else(|| ExpandError::NoMatch(format!("no template matches {sexp}")))?;
    let mut loops: Vec<(String, i64, i64)> = Vec::new();
    let mut max_in: i64 = -1;
    let mut max_out: i64 = -1;
    // Fortran semantics: a zero-trip loop's body contributes nothing.
    let mut skip_depth = 0usize;
    for stmt in &def.body {
        if skip_depth > 0 {
            match stmt {
                TemplateStmt::Do { .. } => skip_depth += 1,
                TemplateStmt::End => skip_depth -= 1,
                _ => {}
            }
            continue;
        }
        match stmt {
            TemplateStmt::Do { var, lo, hi } => {
                let lo = static_eval(lo, &bindings, table)?;
                let hi = static_eval(hi, &bindings, table)?;
                if hi < lo {
                    skip_depth = 1;
                    continue;
                }
                loops.push((var.clone(), lo, hi));
            }
            TemplateStmt::End => {
                loops.pop();
            }
            TemplateStmt::Assign { lhs, rhs } => {
                if let spl_frontend::ast::TLval::VecElem(name, idx) = lhs {
                    if name == "out" {
                        let (_, hi) = range_of(idx, &loops, &bindings, table)?;
                        max_out = max_out.max(hi);
                    }
                }
                scan_expr(rhs, &loops, &bindings, table, &mut max_in)?;
            }
            TemplateStmt::Call { var, args } => {
                let sub = bindings.formulas.get(var).ok_or_else(|| {
                    ExpandError::Invalid(format!("unbound formula variable {var}"))
                })?;
                let (sub_rows, sub_cols) = shape_of(sub, table)?;
                // args: in, out, in_off, out_off, in_stride, out_stride
                let stride = |k: usize| -> Result<i64, ExpandError> {
                    static_eval(&args[k], &bindings, table)
                };
                if matches!(&args[0], TExpr::Var(v) if v == "in") {
                    let (_, off_hi) = range_of(&args[2], &loops, &bindings, table)?;
                    // With a negative stride the first element is the
                    // largest subscript; cover both endpoints.
                    let reach = stride(4)? * (sub_cols as i64 - 1);
                    max_in = max_in.max(off_hi + reach.max(0));
                }
                if matches!(&args[1], TExpr::Var(v) if v == "out") {
                    let (_, off_hi) = range_of(&args[3], &loops, &bindings, table)?;
                    let reach = stride(5)? * (sub_rows as i64 - 1);
                    max_out = max_out.max(off_hi + reach.max(0));
                }
            }
        }
    }
    if max_in < 0 || max_out < 0 {
        return Err(ExpandError::Invalid(format!(
            "cannot infer sizes of {sexp}: template touches no $in/$out elements"
        )));
    }
    Ok((max_out as usize + 1, max_in as usize + 1))
}

fn scan_expr(
    e: &TExpr,
    loops: &[(String, i64, i64)],
    b: &Bindings,
    table: &TemplateTable,
    max_in: &mut i64,
) -> Result<(), ExpandError> {
    match e {
        TExpr::VecElem(name, idx) => {
            if name == "in" {
                let (_, hi) = range_of(idx, loops, b, table)?;
                *max_in = (*max_in).max(hi);
            }
            Ok(())
        }
        TExpr::Un(_, a) => scan_expr(a, loops, b, table, max_in),
        TExpr::Bin(_, x, y) => {
            scan_expr(x, loops, b, table, max_in)?;
            scan_expr(y, loops, b, table, max_in)
        }
        TExpr::Intrinsic(_, args) => args
            .iter()
            .try_for_each(|a| scan_expr(a, loops, b, table, max_in)),
        _ => Ok(()),
    }
}

/// Interval analysis of a template expression over the current loop
/// ranges.
fn range_of(
    e: &TExpr,
    loops: &[(String, i64, i64)],
    b: &Bindings,
    table: &TemplateTable,
) -> Result<(i64, i64), ExpandError> {
    match e {
        TExpr::Int(v) => Ok((*v, *v)),
        TExpr::PatVar(_) | TExpr::Prop(_, _) => {
            let v = static_eval(e, b, table)?;
            Ok((v, v))
        }
        TExpr::Var(name) => {
            for (ln, lo, hi) in loops.iter().rev() {
                if ln == name {
                    return Ok((*lo, *hi));
                }
            }
            Err(ExpandError::Invalid(format!(
                "${name} is not a loop variable in scope (size inference)"
            )))
        }
        TExpr::Un(TUnOp::Neg, a) => {
            let (lo, hi) = range_of(a, loops, b, table)?;
            Ok((-hi, -lo))
        }
        TExpr::Bin(op, x, y) => {
            let (xl, xh) = range_of(x, loops, b, table)?;
            let (yl, yh) = range_of(y, loops, b, table)?;
            match op {
                TBinOp::Add => Ok((xl + yl, xh + yh)),
                TBinOp::Sub => Ok((xl - yh, xh - yl)),
                TBinOp::Mul => {
                    let prod = |a: i64, bb: i64| {
                        a.checked_mul(bb).ok_or_else(|| {
                            ExpandError::Overflow(
                                "subscript range overflow (size inference)".into(),
                            )
                        })
                    };
                    let cands = [prod(xl, yl)?, prod(xl, yh)?, prod(xh, yl)?, prod(xh, yh)?];
                    Ok((*cands.iter().min().unwrap(), *cands.iter().max().unwrap()))
                }
                TBinOp::Div | TBinOp::Mod => {
                    if xl == xh && yl == yh && yl != 0 {
                        let v = if *op == TBinOp::Div { xl / yl } else { xl % yl };
                        Ok((v, v))
                    } else {
                        Err(ExpandError::Invalid(
                            "non-constant division in subscript (size inference)".into(),
                        ))
                    }
                }
            }
        }
        other => Err(ExpandError::Invalid(format!(
            "cannot bound expression {other} (size inference)"
        ))),
    }
}

/// Dedicated helper exposed for use by [`SizeProp`] consumers.
///
/// Equivalent to `shape_of(...).map(|s| match prop { ... })`.
pub fn size_prop(sexp: &Sexp, prop: SizeProp, table: &TemplateTable) -> Result<usize, ExpandError> {
    let (rows, cols) = shape_of(sexp, table)?;
    Ok(match prop {
        SizeProp::InSize => cols,
        SizeProp::OutSize => rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spl_frontend::parser::{parse_formula, parse_program};

    fn table_with(src: &str) -> TemplateTable {
        let mut table = TemplateTable::new();
        for item in parse_program(src).unwrap().items {
            if let spl_frontend::Item::Template(t) = item {
                table.add(t);
            }
        }
        table
    }

    #[test]
    fn shapes_of_known_operators() {
        let t = TemplateTable::new();
        let f = parse_formula("(compose (tensor (F 2) (I 4)) (T 8 4) (L 8 2))").unwrap();
        assert_eq!(shape_of(&f, &t).unwrap(), (8, 8));
        let ds = parse_formula("(direct-sum (F 2) (I 3))").unwrap();
        assert_eq!(shape_of(&ds, &t).unwrap(), (5, 5));
        let m = parse_formula("(matrix (1 2 3) (4 5 6))").unwrap();
        assert_eq!(shape_of(&m, &t).unwrap(), (2, 3));
    }

    #[test]
    fn mismatched_compose_rejected() {
        let t = TemplateTable::new();
        let f = parse_formula("(compose (F 2) (F 3))").unwrap();
        assert!(shape_of(&f, &t).is_err());
    }

    #[test]
    fn infers_user_defined_leaf_operator() {
        // A "half" operator reading 2n inputs and writing n outputs.
        let table = table_with(
            "(template (half n_) (do $i0 = 0,n_-1 $out($i0) = $in(2*$i0) + $in(2*$i0+1) end))",
        );
        let f = parse_formula("(half 4)").unwrap();
        assert_eq!(shape_of(&f, &table).unwrap(), (4, 8));
    }

    #[test]
    fn infers_through_calls() {
        // A "twice" operator applying A_ to two halves of a double-size
        // input.
        let table = table_with(
            "(template (twice A_)
               ( A_($in, $out, 0, 0, 1, 1)
                 A_($in, $out, A_.in_size, A_.out_size, 1, 1) ))",
        );
        let f = parse_formula("(twice (F 4))").unwrap();
        assert_eq!(shape_of(&f, &table).unwrap(), (8, 8));
    }

    #[test]
    fn unknown_operator_without_template_fails() {
        let t = TemplateTable::new();
        let f = parse_formula("(frobnicate 4)").unwrap();
        assert!(shape_of(&f, &t).is_err());
    }

    #[test]
    fn unroll_marker_is_transparent() {
        let t = TemplateTable::new();
        // The marker is internal (inserted by define-resolution), never
        // written in SPL source, so build it programmatically.
        let f = Sexp::List(vec![
            Sexp::sym(crate::UNROLL_MARKER),
            parse_formula("(F 4)").unwrap(),
        ]);
        assert_eq!(shape_of(&f, &t).unwrap(), (4, 4));
    }
}
