#![warn(missing_docs)]

//! The SPL template mechanism (paper Section 3.2).
//!
//! Every SPL operation is *defined by a template*: a pattern over formulas,
//! an optional C-style condition, and an i-code body. The compiler knows
//! the meaning of a formula only through the template it matches; built-in
//! operators are themselves templates, written in SPL template syntax in a
//! [startup file](builtin::STARTUP_SPL) read before the user program, and
//! later definitions override earlier ones (matching runs in reverse
//! definition order).
//!
//! This crate implements:
//!
//! * the pattern matcher ([`table`]) — integer pattern variables
//!   (`n_`, lowercase) and formula pattern variables (`A_`, uppercase),
//!   and condition evaluation with `X_.in_size` / `X_.out_size`
//!   properties;
//! * shape inference ([`shape`]) — through the formula algebra when the
//!   operator is known, falling back to template-body analysis for
//!   user-defined operators;
//! * template expansion ([`expand`]) — recursive instantiation of i-code
//!   bodies, threading the six implicit parameters `$in, $out,
//!   $in_offset, $out_offset, $in_stride, $out_stride` through
//!   sub-formula calls.
//!
//! # Examples
//!
//! ```
//! use spl_templates::{TemplateTable, expand::{expand_formula, ExpandOptions}};
//! use spl_frontend::parser::parse_formula;
//! use spl_numeric::Complex;
//!
//! let table = TemplateTable::builtin();
//! let sexp = parse_formula("(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))").unwrap();
//! let prog = expand_formula(&sexp, &table, &ExpandOptions::default()).unwrap();
//! let x: Vec<Complex> = (1..=4).map(|v| Complex::real(v as f64)).collect();
//! let y = spl_icode::interp::run(&prog, &x).unwrap();
//! let want = spl_numeric::reference::dft(&x);
//! assert!(y.iter().zip(&want).all(|(a, b)| a.approx_eq(*b, 1e-12)));
//! ```

pub mod builtin;
pub mod expand;
pub mod shape;
pub mod table;

pub use expand::{
    expand_formula, ExpandError, ExpandOptions, DEFAULT_EXPAND_DEPTH, DEFAULT_EXPAND_STEPS,
};
pub use table::{Bindings, TemplateTable};

/// The marker head used internally to tag `define`d sub-formulas captured
/// under `#unroll on`; the expander unrolls every loop generated inside
/// such a subtree.
pub const UNROLL_MARKER: &str = "unroll!";
