//! The template table, pattern matcher, and condition evaluator.

use std::collections::HashMap;

use spl_frontend::ast::{CmpOp, CondExpr, SizeProp, TBinOp, TExpr, TUnOp, TemplateDef};
use spl_frontend::sexp::Sexp;

use crate::expand::ExpandError;
use crate::shape::shape_of;

/// Pattern-variable bindings produced by a successful match.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bindings {
    /// Integer pattern variables (lowercase, e.g. `n_`).
    pub ints: HashMap<String, i64>,
    /// Formula pattern variables (uppercase, e.g. `A_`), bound to the
    /// matched sub-formula.
    pub formulas: HashMap<String, Sexp>,
}

/// An ordered collection of templates; matching runs newest-first so that
/// later definitions override earlier ones (paper Section 3.2).
#[derive(Debug, Clone, Default)]
pub struct TemplateTable {
    templates: Vec<TemplateDef>,
}

impl TemplateTable {
    /// An empty table (no built-ins). Most callers want
    /// [`TemplateTable::builtin`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The table pre-loaded with the startup file's built-in templates.
    ///
    /// # Panics
    ///
    /// Panics if the embedded startup file fails to parse — a build-time
    /// invariant covered by tests.
    pub fn builtin() -> Self {
        let mut t = Self::new();
        for def in crate::builtin::startup_templates() {
            t.add(def);
        }
        t
    }

    /// Appends a template; it takes precedence over all earlier ones.
    pub fn add(&mut self, def: TemplateDef) {
        self.templates.push(def);
    }

    /// The number of templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Finds the first (newest) template whose pattern matches `subject`
    /// and whose condition holds.
    ///
    /// A template whose condition cannot be evaluated (e.g. it needs the
    /// size of a shapeless sub-formula) is treated as non-matching and
    /// the search continues with older templates — overriding templates
    /// with narrower conditions must not break formulas the original
    /// template still handles. The first such error is reported only if
    /// *no* template matches in the end.
    ///
    /// # Errors
    ///
    /// Returns the recorded condition-evaluation error when every
    /// matching template was rejected because of one.
    pub fn find(&self, subject: &Sexp) -> Result<Option<(&TemplateDef, Bindings)>, ExpandError> {
        let mut first_err: Option<ExpandError> = None;
        for def in self.templates.iter().rev() {
            let mut b = Bindings::default();
            if match_pattern(&def.pattern, subject, &mut b) {
                let ok = match &def.condition {
                    Some(c) => match eval_cond(c, &b, self) {
                        Ok(v) => v,
                        Err(e) => {
                            first_err.get_or_insert(e);
                            false
                        }
                    },
                    None => true,
                };
                if ok {
                    return Ok(Some((def, b)));
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(None),
        }
    }
}

/// Matches `pattern` against `subject`, extending `b`.
///
/// Rules (paper Section 3.2): symbols ending in `_` are pattern variables;
/// a lowercase first letter matches any integer constant, an uppercase
/// first letter matches any formula (a parenthesized form — pattern
/// variables cannot match undefined bare symbols). Repeated variables must
/// match equal values.
pub fn match_pattern(pattern: &Sexp, subject: &Sexp, b: &mut Bindings) -> bool {
    match pattern {
        Sexp::Symbol(s) if s.ends_with('_') && s.len() > 1 => {
            let first = s.chars().next().unwrap();
            if first.is_ascii_lowercase() {
                match subject.as_int() {
                    Some(v) => match b.ints.get(s) {
                        Some(&prev) => prev == v,
                        None => {
                            b.ints.insert(s.clone(), v);
                            true
                        }
                    },
                    None => false,
                }
            } else if first.is_ascii_uppercase() {
                if !matches!(subject, Sexp::List(_)) {
                    return false;
                }
                match b.formulas.get(s) {
                    Some(prev) => prev == subject,
                    None => {
                        b.formulas.insert(s.clone(), subject.clone());
                        true
                    }
                }
            } else {
                false
            }
        }
        Sexp::Symbol(s) => matches!(subject, Sexp::Symbol(t) if t == s),
        Sexp::Int(v) => subject.as_int() == Some(*v),
        Sexp::Scalar(_) => pattern == subject,
        Sexp::List(ps) => match subject {
            Sexp::List(ss) if ss.len() == ps.len() => {
                ps.iter().zip(ss).all(|(p, s)| match_pattern(p, s, b))
            }
            _ => false,
        },
    }
}

/// Statically evaluates a template expression to an integer, in a context
/// with no loop variables (conditions, loop bounds, constant parameters).
///
/// # Errors
///
/// Fails for expressions that are not compile-time integers (register
/// reads, vector elements, floats, intrinsics).
pub fn static_eval(e: &TExpr, b: &Bindings, table: &TemplateTable) -> Result<i64, ExpandError> {
    match e {
        TExpr::Int(v) => Ok(*v),
        TExpr::PatVar(name) => b.ints.get(name).copied().ok_or_else(|| {
            ExpandError::Invalid(format!("unbound integer pattern variable {name}"))
        }),
        TExpr::Prop(name, prop) => {
            let f = b.formulas.get(name).ok_or_else(|| {
                ExpandError::Invalid(format!("unbound formula pattern variable {name}"))
            })?;
            let (rows, cols) = shape_of(f, table)?;
            Ok(match prop {
                SizeProp::InSize => cols as i64,
                SizeProp::OutSize => rows as i64,
            })
        }
        TExpr::Un(TUnOp::Neg, inner) => Ok(-static_eval(inner, b, table)?),
        TExpr::Bin(op, x, y) => {
            let x = static_eval(x, b, table)?;
            let y = static_eval(y, b, table)?;
            Ok(match op {
                TBinOp::Add => x + y,
                TBinOp::Sub => x - y,
                TBinOp::Mul => x * y,
                TBinOp::Div => {
                    if y == 0 {
                        return Err(ExpandError::Invalid("division by zero in template".into()));
                    }
                    x / y
                }
                TBinOp::Mod => {
                    if y == 0 {
                        return Err(ExpandError::Invalid("modulo by zero in template".into()));
                    }
                    x % y
                }
            })
        }
        other => Err(ExpandError::Invalid(format!(
            "expression {other} is not a compile-time integer"
        ))),
    }
}

/// Evaluates a template condition under the bindings.
///
/// # Errors
///
/// Propagates [`static_eval`] failures.
pub fn eval_cond(c: &CondExpr, b: &Bindings, table: &TemplateTable) -> Result<bool, ExpandError> {
    Ok(match c {
        CondExpr::Cmp(op, x, y) => {
            let x = static_eval(x, b, table)?;
            let y = static_eval(y, b, table)?;
            match op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            }
        }
        CondExpr::And(a, c2) => eval_cond(a, b, table)? && eval_cond(c2, b, table)?,
        CondExpr::Or(a, c2) => eval_cond(a, b, table)? || eval_cond(c2, b, table)?,
        CondExpr::Not(a) => !eval_cond(a, b, table)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spl_frontend::parser::parse_formula;

    fn pat(src: &str) -> Sexp {
        parse_formula(src).unwrap()
    }

    #[test]
    fn int_var_matches_integers_only() {
        let mut b = Bindings::default();
        assert!(match_pattern(&pat("(I n_)"), &pat("(I 4)"), &mut b));
        assert_eq!(b.ints["n_"], 4);
        let mut b = Bindings::default();
        assert!(!match_pattern(&pat("(I n_)"), &pat("(I m)"), &mut b));
    }

    #[test]
    fn formula_var_matches_lists_only() {
        let mut b = Bindings::default();
        assert!(match_pattern(
            &pat("(compose X_ Y_)"),
            &pat("(compose (F 2) (I 3))"),
            &mut b
        ));
        assert_eq!(b.formulas["X_"], pat("(F 2)"));
        // Cannot match an undefined bare symbol (paper Section 3.2).
        let mut b = Bindings::default();
        assert!(!match_pattern(
            &pat("(compose X_ Y_)"),
            &pat("(compose A (I 3))"),
            &mut b
        ));
        // Cannot match an integer.
        let mut b = Bindings::default();
        assert!(!match_pattern(&pat("(foo X_)"), &pat("(foo 3)"), &mut b));
    }

    #[test]
    fn nested_pattern() {
        let mut b = Bindings::default();
        assert!(match_pattern(
            &pat("(tensor (I m_) A_)"),
            &pat("(tensor (I 8) (F 2))"),
            &mut b
        ));
        assert_eq!(b.ints["m_"], 8);
        assert_eq!(b.formulas["A_"], pat("(F 2)"));
    }

    #[test]
    fn repeated_variable_must_agree() {
        let mut b = Bindings::default();
        assert!(match_pattern(
            &pat("(foo n_ n_)"),
            &pat("(foo 3 3)"),
            &mut b
        ));
        let mut b = Bindings::default();
        assert!(!match_pattern(
            &pat("(foo n_ n_)"),
            &pat("(foo 3 4)"),
            &mut b
        ));
    }

    #[test]
    fn literal_integers_in_patterns() {
        let mut b = Bindings::default();
        assert!(match_pattern(&pat("(F 2)"), &pat("(F 2)"), &mut b));
        assert!(!match_pattern(&pat("(F 2)"), &pat("(F 4)"), &mut b));
    }

    #[test]
    fn newest_template_wins() {
        use spl_frontend::parser::parse_program;
        let src = "\
(template (F n_) ($f0 = 0))
(template (F 2) ($f1 = 1))
";
        let prog = parse_program(src).unwrap();
        let mut table = TemplateTable::new();
        for item in prog.items {
            if let spl_frontend::Item::Template(t) = item {
                table.add(t);
            }
        }
        let (def, _) = table.find(&pat("(F 2)")).unwrap().unwrap();
        assert_eq!(def.pattern.to_string(), "(F 2)");
        let (def, b) = table.find(&pat("(F 8)")).unwrap().unwrap();
        assert_eq!(def.pattern.to_string(), "(F n_)");
        assert_eq!(b.ints["n_"], 8);
    }

    #[test]
    fn condition_filters_matches() {
        use spl_frontend::parser::parse_program;
        let src = "(template (L m_ n_) [m_==2*n_] ($f0 = 0))";
        let prog = parse_program(src).unwrap();
        let mut table = TemplateTable::new();
        for item in prog.items {
            if let spl_frontend::Item::Template(t) = item {
                table.add(t);
            }
        }
        // The paper's example: matches (L 4 2) but not (L 4 1).
        assert!(table.find(&pat("(L 4 2)")).unwrap().is_some());
        assert!(table.find(&pat("(L 4 1)")).unwrap().is_none());
    }

    #[test]
    fn condition_with_size_properties() {
        use spl_frontend::parser::parse_program;
        let src = "(template (compose A_ B_) [A_.in_size == B_.out_size] ($f0 = 0))";
        let prog = parse_program(src).unwrap();
        let mut table = TemplateTable::builtin();
        for item in prog.items {
            if let spl_frontend::Item::Template(t) = item {
                table.add(t);
            }
        }
        assert!(table.find(&pat("(compose (F 2) (F 2))")).unwrap().is_some());
    }

    #[test]
    fn condition_errors_fall_through_to_older_templates() {
        use spl_frontend::parser::parse_program;
        // An override whose condition needs the shape of a formula the
        // shape engine cannot size must not break the built-in (F n_).
        let src = "(template (F X_) [X_.in_size==2] ($f0 = 0))";
        let prog = parse_program(src).unwrap();
        let mut table = TemplateTable::builtin();
        for item in prog.items {
            if let spl_frontend::Item::Template(t) = item {
                table.add(t);
            }
        }
        // (F 4): the override's pattern matches nothing here (4 is an
        // int, X_ wants a formula), so the builtin applies normally.
        let (def, _) = table.find(&pat("(F 4)")).unwrap().unwrap();
        assert_eq!(def.pattern.to_string(), "(F n_)");
    }

    #[test]
    fn static_eval_arithmetic() {
        let mut b = Bindings::default();
        b.ints.insert("n_".into(), 6);
        let t = TemplateTable::new();
        let e = TExpr::Bin(
            TBinOp::Sub,
            Box::new(TExpr::Bin(
                TBinOp::Div,
                Box::new(TExpr::PatVar("n_".into())),
                Box::new(TExpr::Int(2)),
            )),
            Box::new(TExpr::Int(1)),
        );
        assert_eq!(static_eval(&e, &b, &t).unwrap(), 2);
    }

    #[test]
    fn static_eval_rejects_runtime_values() {
        let b = Bindings::default();
        let t = TemplateTable::new();
        assert!(static_eval(&TExpr::Var("f0".into()), &b, &t).is_err());
    }
}
