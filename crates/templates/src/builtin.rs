//! The built-in startup file.
//!
//! The paper's compiler reads the templates for all pre-defined operations
//! from a startup file before the user program (Section 3.2); user
//! templates defined later override these because matching runs in
//! reverse definition order. The same holds here: the startup file below
//! is written in SPL template syntax and parsed through the ordinary front
//! end, so it also serves as a living test of the template grammar.

use spl_frontend::ast::{Item, TemplateDef};
use spl_frontend::parse_program;

/// The startup file, in SPL source form.
///
/// Order matters: `(F 2)` appears *after* `(F n_)` so that the butterfly
/// overrides the O(n²) definition for 2-point transforms.
pub const STARTUP_SPL: &str = r#"
; ---------------------------------------------------------------------
; SPL startup file: templates for the pre-defined parameterized matrices
; and matrix operations (paper Section 2.2 / 3.2).
;
; Every template runs with six implicit parameters:
;   $in $out $in_offset $out_offset $in_stride $out_stride
; ---------------------------------------------------------------------

; (I n) -- identity: a plain copy loop.
(template (I n_) [n_>=1]
  (do $i0 = 0,n_-1
        $out($i0) = $in($i0)
   end))

; (F n) -- the DFT by definition (the paper's example template).
(template (F n_) [n_>=1]
  (do $i0 = 0,n_-1
        $out($i0) = 0
        do $i1 = 0,n_-1
             $r0 = $i0 * $i1
             $f0 = W(n_ $r0) * $in($i1)
             $out($i0) = $out($i0) + $f0
        end
   end))

; (F 2) -- the butterfly, overriding the general definition.
(template (F 2)
  ( $f0 = $in(0) + $in(1)
    $f1 = $in(0) - $in(1)
    $out(0) = $f0
    $out(1) = $f1 ))

; (L n s) -- stride permutation L^n_s: out[i*(n/s)+j] = in[j*s+i].
(template (L n_ s_) [n_%s_==0 && s_>=1]
  (do $i0 = 0,s_-1
        do $i1 = 0,n_/s_-1
             $out($i0*(n_/s_)+$i1) = $in($i1*s_+$i0)
        end
   end))

; (T n s) -- twiddle matrix T^n_s: out[i*s+j] = W(n, i*j) * in[i*s+j].
(template (T n_ s_) [n_%s_==0 && s_>=1]
  (do $i0 = 0,n_/s_-1
        do $i1 = 0,s_-1
             $r0 = $i0 * $i1
             $f0 = W(n_ $r0)
             $out($i0*s_+$i1) = $f0 * $in($i0*s_+$i1)
        end
   end))

; (J n) -- index reversal (extension; used by the DCT breakdown rules).
(template (J n_) [n_>=1]
  (do $i0 = 0,n_-1
        $out(n_-1-$i0) = $in($i0)
   end))

; (compose A B) -- matrix product: apply B, then A, through a temporary.
(template (compose A_ B_) [A_.in_size == B_.out_size]
  ( B_( $in, $t0, 0, 0, 1, 1 )
    A_( $t0, $out, 0, 0, 1, 1 )))

; (tensor (I m) A) -- block repetition over contiguous sub-vectors.
(template (tensor (I m_) A_) [m_>=1]
  (do $i0 = 0,m_-1
        A_( $in, $out, $i0*A_.in_size, $i0*A_.out_size, 1, 1 )
   end))

; (tensor A (I m)) -- the same transformation on strided sub-vectors.
(template (tensor A_ (I m_)) [m_>=1]
  (do $i0 = 0,m_-1
        A_( $in, $out, $i0, $i0, m_, m_ )
   end))

; (direct-sum A B) -- block diagonal: A on the head, B on the tail.
(template (direct-sum A_ B_)
  ( A_( $in, $out, 0, 0, 1, 1 )
    B_( $in, $out, A_.in_size, A_.out_size, 1, 1 )))
"#;

/// Parses the startup file into its template definitions.
///
/// # Panics
///
/// Panics if the embedded startup file is malformed (covered by tests, so
/// this is a build-time invariant).
pub fn startup_templates() -> Vec<TemplateDef> {
    let prog = parse_program(STARTUP_SPL).expect("startup file must parse");
    prog.items
        .into_iter()
        .filter_map(|item| match item {
            Item::Template(t) => Some(t),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn startup_file_parses() {
        let ts = startup_templates();
        assert_eq!(ts.len(), 10);
    }

    #[test]
    fn startup_order_puts_f2_after_fn() {
        let ts = startup_templates();
        let fn_pos = ts
            .iter()
            .position(|t| t.pattern.to_string() == "(F n_)")
            .unwrap();
        let f2_pos = ts
            .iter()
            .position(|t| t.pattern.to_string() == "(F 2)")
            .unwrap();
        assert!(f2_pos > fn_pos, "the butterfly must override");
    }

    #[test]
    fn every_builtin_has_a_body() {
        for t in startup_templates() {
            assert!(!t.body.is_empty(), "{} has an empty body", t.pattern);
        }
    }
}
