//! Template expansion: S-expression formula → i-code.
//!
//! Expansion recursively instantiates template bodies. Each template
//! instance runs with six implicit parameters — input/output vector,
//! offsets, and strides — so a sub-formula call like
//! `A_($in, $t0, $i0*A_.in_size, 0, 1, 1)` composes its callee's vector
//! accesses with the caller's view: the callee's subscript `e` lands at
//! `offset + stride·e` of the caller's vector. Offsets may involve loop
//! variables (they stay affine); strides are compile-time constants.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use spl_frontend::ast::{TBinOp, TExpr, TLval, TUnOp, TemplateDef, TemplateStmt};
use spl_frontend::sexp::Sexp;
use spl_icode::{
    Affine, BinOp, IProgram, Instr, LoopVar, Place, ProvNode, UnOp, Value, VecKind, VecRef,
};
use spl_numeric::Complex;

use crate::shape::shape_of;
use crate::table::{static_eval, Bindings, TemplateTable};
use crate::UNROLL_MARKER;

/// An error during template expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExpandError {
    /// No template (or native form) matches a sub-formula.
    NoMatch(String),
    /// Operator shapes are malformed or inconsistent.
    Shape(String),
    /// A template body violates the expansion discipline (non-affine
    /// subscript, non-constant bound, unbound variable, …).
    Invalid(String),
    /// A size computation overflowed the machine integer range.
    Overflow(String),
    /// A configured expansion resource limit (recursion depth or step
    /// budget) was exceeded.
    LimitExceeded(String),
}

impl ExpandError {
    /// The message without the generic prefix.
    pub fn message(&self) -> &str {
        match self {
            ExpandError::NoMatch(s)
            | ExpandError::Shape(s)
            | ExpandError::Invalid(s)
            | ExpandError::Overflow(s)
            | ExpandError::LimitExceeded(s) => s,
        }
    }
}

impl fmt::Display for ExpandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "template expansion failed: {}", self.message())
    }
}

impl Error for ExpandError {}

/// Default cap on expansion recursion depth.
///
/// The tensor fallback rewrite (`A⊗B → (A⊗I)(I⊗B)`) deepens the tree
/// beyond what the parser saw, so this must exceed the parser's nesting
/// cap with headroom while still stopping runaway recursion well before
/// the stack does.
pub const DEFAULT_EXPAND_DEPTH: usize = 2_000;

/// Default cap on i-code instructions emitted by one expansion.
pub const DEFAULT_EXPAND_STEPS: usize = 4_000_000;

/// Options controlling expansion.
#[derive(Debug, Clone)]
pub struct ExpandOptions {
    /// `#unroll` state at the formula: mark every generated loop for full
    /// unrolling.
    pub unroll: bool,
    /// The `-B <n>` command-line threshold: unroll all loops in
    /// sub-formulas whose input vector is `<= n` long (paper
    /// Section 3.3.1).
    pub unroll_threshold: Option<usize>,
    /// `define`d names in definition order: `(name, body, unroll)` where
    /// `unroll` captures the `#unroll` state at the `define`.
    pub defines: Vec<(String, Sexp, bool)>,
    /// Cap on expansion recursion depth; exceeding it yields
    /// [`ExpandError::LimitExceeded`] instead of a stack overflow.
    pub max_depth: usize,
    /// Cap on emitted i-code instructions; exceeding it yields
    /// [`ExpandError::LimitExceeded`] instead of unbounded memory growth.
    pub max_steps: usize,
}

impl Default for ExpandOptions {
    fn default() -> Self {
        ExpandOptions {
            unroll: false,
            unroll_threshold: None,
            defines: Vec::new(),
            max_depth: DEFAULT_EXPAND_DEPTH,
            max_steps: DEFAULT_EXPAND_STEPS,
        }
    }
}

/// Expands a formula into an i-code program using the template table.
///
/// # Errors
///
/// Fails if no template matches some sub-formula, shapes are inconsistent,
/// a subscript is not affine in the loop indices, or a loop bound is not a
/// compile-time constant.
pub fn expand_formula(
    sexp: &Sexp,
    table: &TemplateTable,
    opts: &ExpandOptions,
) -> Result<IProgram, ExpandError> {
    let resolved = resolve_defines(sexp, &opts.defines);
    let resolved = binarize(&resolved);
    let (rows, cols) = shape_of(&resolved, table)?;
    let mut ex = Expander {
        table,
        threshold: opts.unroll_threshold,
        instrs: Vec::new(),
        n_f: 0,
        n_r: 0,
        n_loop: 0,
        temp_max: Vec::new(),
        loop_ranges: HashMap::new(),
        depth: 0,
        max_depth: opts.max_depth,
        max_steps: opts.max_steps,
        prov: Vec::new(),
        prov_nodes: Vec::new(),
        cur_node: ProvNode::ROOT,
    };
    let params = Params {
        in_base: VecKind::In,
        out_base: VecKind::Out,
        in_off: Affine::constant(0),
        out_off: Affine::constant(0),
        in_stride: 1,
        out_stride: 1,
        in_size: cols,
        out_size: rows,
        unroll: opts.unroll,
    };
    ex.expand(&resolved, params)?;
    let prog = IProgram {
        instrs: ex.instrs,
        n_in: cols,
        n_out: rows,
        temps: ex
            .temp_max
            .iter()
            .map(|&m| (m + 1).max(0) as usize)
            .collect(),
        tables: vec![],
        n_f: ex.n_f,
        n_r: ex.n_r,
        n_loop: ex.n_loop,
        complex: true,
        prov: ex.prov,
        prov_nodes: ex.prov_nodes,
        vec_loops: vec![],
    };
    prog.validate()
        .map_err(|e| ExpandError::Invalid(format!("generated invalid i-code: {e}")))?;
    Ok(prog)
}

/// Substitutes `define`d names (in definition order), wrapping bodies
/// captured under `#unroll on` in the [`UNROLL_MARKER`] form.
pub fn resolve_defines(sexp: &Sexp, defines: &[(String, Sexp, bool)]) -> Sexp {
    let mut resolved: Vec<(String, Sexp)> = Vec::new();
    for (name, body, unroll) in defines {
        let mut b = body.clone();
        for (n, v) in &resolved {
            b = b.substitute(n, v);
        }
        if *unroll {
            b = Sexp::List(vec![Sexp::sym(UNROLL_MARKER), b]);
        }
        resolved.push((name.clone(), b));
    }
    let mut s = sexp.clone();
    for (n, v) in &resolved {
        s = s.substitute(n, v);
    }
    s
}

/// Right-associates n-ary `tensor`/`direct-sum` into binary nests, as the
/// paper's parser does. N-ary `compose` is left intact: the expander
/// implements it natively with two ping-pong buffers, so a chain of `k`
/// factors needs 2 temporaries instead of the `k−1` a binarized nest
/// would allocate (binary composes still go through the template, and a
/// user template matching the full n-ary pattern still wins).
///
/// A degenerate unary application — `(tensor A)`, `(direct-sum A)`,
/// `(compose A)` — collapses to `A`, matching the dense reference
/// semantics (the fold over one operand is the operand itself).
pub fn binarize(sexp: &Sexp) -> Sexp {
    match sexp {
        Sexp::List(items) => {
            let items: Vec<Sexp> = items.iter().map(binarize).collect();
            if let Some(Sexp::Symbol(head)) = items.first() {
                if matches!(head.as_str(), "tensor" | "direct-sum" | "compose") && items.len() == 2
                {
                    return items.into_iter().nth(1).expect("len checked");
                }
                if matches!(head.as_str(), "tensor" | "direct-sum") && items.len() > 3 {
                    let head = head.clone();
                    let first = items[1].clone();
                    let rest = {
                        let mut v = vec![Sexp::Symbol(head.clone())];
                        v.extend_from_slice(&items[2..]);
                        binarize(&Sexp::List(v))
                    };
                    return Sexp::List(vec![Sexp::Symbol(head), first, rest]);
                }
            }
            Sexp::List(items)
        }
        other => other.clone(),
    }
}

/// A budgeted rendering of a sub-formula for provenance labels: the
/// full text when it fits, a prefix plus `…` otherwise — without ever
/// materializing the whole (possibly huge) tree as a string.
fn short_label(sexp: &Sexp, budget: usize) -> String {
    let mut out = String::new();
    write_label(sexp, budget, &mut out);
    if out.len() > budget {
        let mut cut = budget;
        while !out.is_char_boundary(cut) {
            cut -= 1;
        }
        out.truncate(cut);
        out.push('…');
    }
    out
}

fn write_label(sexp: &Sexp, budget: usize, out: &mut String) {
    if out.len() > budget {
        return;
    }
    match sexp {
        Sexp::List(items) => {
            out.push('(');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(' ');
                }
                if out.len() > budget {
                    out.push('…');
                    break;
                }
                write_label(item, budget, out);
            }
            out.push(')');
        }
        other => {
            use std::fmt::Write as _;
            let _ = write!(out, "{other}");
        }
    }
}

/// The six implicit parameters of a template instance, plus the sizes and
/// the unroll flag.
#[derive(Debug, Clone)]
struct Params {
    in_base: VecKind,
    out_base: VecKind,
    in_off: Affine,
    out_off: Affine,
    in_stride: i64,
    out_stride: i64,
    in_size: usize,
    out_size: usize,
    unroll: bool,
}

/// Per-template-instance name maps.
#[derive(Debug, Default)]
struct Frame {
    f_map: HashMap<String, u32>,
    r_map: HashMap<String, u32>,
    t_map: HashMap<String, u32>,
    loops: Vec<(String, LoopVar)>,
}

/// Whether an expression context expects integers (`$r` destinations,
/// intrinsic arguments) or numeric values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctx {
    Int,
    Num,
}

struct Expander<'t> {
    table: &'t TemplateTable,
    threshold: Option<usize>,
    instrs: Vec<Instr>,
    n_f: u32,
    n_r: u32,
    n_loop: u32,
    /// Max subscript observed per temp id (-1 = untouched).
    temp_max: Vec<i64>,
    /// Ranges of all loop variables ever opened (for temp sizing).
    loop_ranges: HashMap<LoopVar, (i64, i64)>,
    /// Current expansion recursion depth.
    depth: usize,
    /// Recursion cap (see [`ExpandOptions::max_depth`]).
    max_depth: usize,
    /// Emitted-instruction cap (see [`ExpandOptions::max_steps`]).
    max_steps: usize,
    /// Per-instruction formula-node ids, flushed lazily: instructions in
    /// `instrs` beyond `prov.len()` belong to `cur_node`.
    prov: Vec<u32>,
    /// The provenance node table being built.
    prov_nodes: Vec<ProvNode>,
    /// Id of the formula node currently expanding.
    cur_node: u32,
}

impl Expander<'_> {
    /// Assigns every not-yet-attributed instruction to `cur_node`.
    fn flush_prov(&mut self) {
        let id = self.cur_node;
        self.prov.resize(self.instrs.len(), id);
    }

    fn expand(&mut self, sexp: &Sexp, params: Params) -> Result<(), ExpandError> {
        self.depth += 1;
        if self.depth > self.max_depth {
            self.depth -= 1;
            return Err(ExpandError::LimitExceeded(format!(
                "expansion recursion depth exceeds {}",
                self.max_depth
            )));
        }
        if self.instrs.len() > self.max_steps {
            self.depth -= 1;
            return Err(ExpandError::LimitExceeded(format!(
                "expansion exceeds {} emitted instructions",
                self.max_steps
            )));
        }
        // Provenance bookkeeping around the single recursion gateway:
        // instructions the *parent* emitted since its last flush belong
        // to the parent; everything emitted inside (including by this
        // node after its children return) belongs to this node.
        self.flush_prov();
        let parent = self.cur_node;
        let id = self.prov_nodes.len() as u32;
        self.prov_nodes.push(ProvNode {
            label: short_label(sexp, 64),
            parent,
        });
        self.cur_node = id;
        let r = self.expand_inner(sexp, params);
        self.flush_prov();
        self.cur_node = parent;
        self.depth -= 1;
        r
    }

    fn expand_inner(&mut self, sexp: &Sexp, mut params: Params) -> Result<(), ExpandError> {
        if sexp.head() == Some(UNROLL_MARKER) {
            let inner = sexp
                .as_list()
                .and_then(|l| l.get(1))
                .ok_or_else(|| ExpandError::Shape(format!("empty {UNROLL_MARKER} form")))?;
            params.unroll = true;
            return self.expand(inner, params);
        }
        if let Some(b) = self.threshold {
            if params.in_size <= b {
                params.unroll = true;
            }
        }
        if let Some((def, bindings)) = self.table.find(sexp)? {
            let def = def.clone();
            return self.instantiate(&def, &bindings, &params);
        }
        match sexp.head() {
            Some("diagonal") => self.native_diagonal(sexp, &params),
            Some("permutation") => self.native_permutation(sexp, &params),
            Some("matrix") => self.native_matrix(sexp, &params),
            Some("tensor") => self.native_tensor(sexp, params),
            Some("compose") => self.native_compose(sexp, params),
            _ => Err(ExpandError::NoMatch(format!("no template matches {sexp}"))),
        }
    }

    /// The non-head parts of a native form's list, or a typed error.
    fn list_parts<'s>(&self, sexp: &'s Sexp, what: &str) -> Result<&'s [Sexp], ExpandError> {
        match sexp.as_list() {
            Some(items) if !items.is_empty() => Ok(&items[1..]),
            _ => Err(ExpandError::Shape(format!("{what} must be a form: {sexp}"))),
        }
    }

    /// N-ary compose with ping-pong buffers: `A₁·A₂·…·A_k` applies the
    /// factors right to left through two alternating temporaries, so a
    /// chain of any length needs at most two buffers (a right-nested
    /// binary expansion would allocate `k−1`). Binary composes normally
    /// match the built-in template before reaching this fallback.
    fn native_compose(&mut self, sexp: &Sexp, params: Params) -> Result<(), ExpandError> {
        let factors = self.list_parts(sexp, "compose")?;
        if factors.is_empty() {
            return Err(ExpandError::Shape("empty compose".into()));
        }
        if factors.len() == 1 {
            return self.expand(&factors[0], params);
        }
        let shapes = factors
            .iter()
            .map(|f| shape_of(f, self.table))
            .collect::<Result<Vec<_>, _>>()?;
        for w in shapes.windows(2) {
            if w[0].1 != w[1].0 {
                return Err(ExpandError::Shape(format!(
                    "compose shape mismatch in {sexp}"
                )));
            }
        }
        let k = factors.len();
        // Application order: factors[k-1] first. Application j (0-based,
        // j < k-1) produces an intermediate that lands in buffer j % 2.
        let mut buf_size = [0usize; 2];
        for j in 0..k - 1 {
            let factor_idx = k - 1 - j;
            buf_size[j % 2] = buf_size[j % 2].max(shapes[factor_idx].0);
        }
        let bufs = [
            self.alloc_sized_temp(buf_size[0]),
            self.alloc_sized_temp(buf_size[1]),
        ];
        for j in 0..k {
            let factor_idx = k - 1 - j;
            let (rows, cols) = shapes[factor_idx];
            let (in_base, in_off, in_stride, in_size) = if j == 0 {
                (
                    params.in_base,
                    params.in_off.clone(),
                    params.in_stride,
                    params.in_size,
                )
            } else {
                (
                    VecKind::Temp(bufs[(j - 1) % 2]),
                    Affine::constant(0),
                    1,
                    cols,
                )
            };
            let (out_base, out_off, out_stride, out_size) = if j == k - 1 {
                (
                    params.out_base,
                    params.out_off.clone(),
                    params.out_stride,
                    params.out_size,
                )
            } else {
                (VecKind::Temp(bufs[j % 2]), Affine::constant(0), 1, rows)
            };
            self.expand(
                &factors[factor_idx],
                Params {
                    in_base,
                    out_base,
                    in_off,
                    out_off,
                    in_stride,
                    out_stride,
                    in_size,
                    out_size,
                    unroll: params.unroll,
                },
            )?;
        }
        Ok(())
    }

    /// Allocates a temp of a known exact size.
    fn alloc_sized_temp(&mut self, size: usize) -> u32 {
        let gid = self.temp_max.len() as u32;
        self.temp_max.push(size as i64 - 1);
        gid
    }

    // ------------------------------------------------------------------
    // Template instantiation
    // ------------------------------------------------------------------

    fn instantiate(
        &mut self,
        def: &TemplateDef,
        b: &Bindings,
        params: &Params,
    ) -> Result<(), ExpandError> {
        let mut frame = Frame::default();
        // Fortran `do` semantics: a loop whose trip count is zero
        // executes nothing — skip its whole body (tracking nesting).
        let mut skip_depth = 0usize;
        for stmt in &def.body {
            if self.instrs.len() > self.max_steps {
                return Err(ExpandError::LimitExceeded(format!(
                    "expansion exceeds {} emitted instructions",
                    self.max_steps
                )));
            }
            if skip_depth > 0 {
                match stmt {
                    TemplateStmt::Do { .. } => skip_depth += 1,
                    TemplateStmt::End => skip_depth -= 1,
                    _ => {}
                }
                continue;
            }
            match stmt {
                TemplateStmt::Do { var, lo, hi } => {
                    let lo = static_eval(lo, b, self.table)?;
                    let hi = static_eval(hi, b, self.table)?;
                    if hi < lo {
                        skip_depth = 1;
                        continue;
                    }
                    let lv = LoopVar(self.n_loop);
                    self.n_loop += 1;
                    self.loop_ranges.insert(lv, (lo, hi));
                    frame.loops.push((var.clone(), lv));
                    self.instrs.push(Instr::DoStart {
                        var: lv,
                        lo,
                        hi,
                        unroll: params.unroll,
                    });
                }
                TemplateStmt::End => {
                    if frame.loops.pop().is_none() {
                        return Err(ExpandError::Invalid(format!(
                            "unmatched end in template {}",
                            def.pattern
                        )));
                    }
                    self.instrs.push(Instr::DoEnd);
                }
                TemplateStmt::Assign { lhs, rhs } => {
                    let dst = self.lval_place(lhs, &mut frame, b, params)?;
                    let ctx = match dst {
                        Place::R(_) => Ctx::Int,
                        _ => Ctx::Num,
                    };
                    self.emit_assign(dst, rhs, ctx, &mut frame, b, params)?;
                }
                TemplateStmt::Call { var, args } => {
                    self.emit_call(var, args, &mut frame, b, params)?;
                }
            }
        }
        if !frame.loops.is_empty() {
            return Err(ExpandError::Invalid(format!(
                "unclosed loop in template {}",
                def.pattern
            )));
        }
        Ok(())
    }

    fn emit_call(
        &mut self,
        var: &str,
        args: &[TExpr],
        frame: &mut Frame,
        b: &Bindings,
        params: &Params,
    ) -> Result<(), ExpandError> {
        let sub = b
            .formulas
            .get(var)
            .cloned()
            .ok_or_else(|| ExpandError::Invalid(format!("unbound formula variable {var}")))?;
        let (sub_rows, sub_cols) = shape_of(&sub, self.table)?;
        let call_in_off = self.affine_of(&args[2], frame, b, params)?;
        let call_out_off = self.affine_of(&args[3], frame, b, params)?;
        let call_in_stride = self
            .affine_of(&args[4], frame, b, params)?
            .as_const()
            .ok_or_else(|| ExpandError::Invalid("input stride must be a constant".into()))?;
        let call_out_stride = self
            .affine_of(&args[5], frame, b, params)?
            .as_const()
            .ok_or_else(|| ExpandError::Invalid("output stride must be a constant".into()))?;
        let (in_base, in_off, in_stride) = self.compose_view(
            &args[0],
            frame,
            params,
            &call_in_off,
            call_in_stride,
            sub_cols,
        )?;
        let (out_base, out_off, out_stride) = self.compose_view(
            &args[1],
            frame,
            params,
            &call_out_off,
            call_out_stride,
            sub_rows,
        )?;
        let sub_params = Params {
            in_base,
            out_base,
            in_off,
            out_off,
            in_stride,
            out_stride,
            in_size: sub_cols,
            out_size: sub_rows,
            unroll: params.unroll,
        };
        self.expand(&sub, sub_params)
    }

    /// Resolves a call's vector argument (`$in`, `$out`, or `$t<k>`) into
    /// a base vector plus composed offset/stride, and updates temp sizing.
    fn compose_view(
        &mut self,
        arg: &TExpr,
        frame: &mut Frame,
        params: &Params,
        call_off: &Affine,
        call_stride: i64,
        elems: usize,
    ) -> Result<(VecKind, Affine, i64), ExpandError> {
        let name = match arg {
            TExpr::Var(v) => v.as_str(),
            other => {
                return Err(ExpandError::Invalid(format!(
                    "vector argument must be $in, $out, or a temporary, got {other}"
                )))
            }
        };
        match name {
            "in" => Ok((
                params.in_base,
                params.in_off.add(&call_off.scale(params.in_stride)),
                params.in_stride * call_stride,
            )),
            "out" => Ok((
                params.out_base,
                params.out_off.add(&call_off.scale(params.out_stride)),
                params.out_stride * call_stride,
            )),
            t if t.starts_with('t') => {
                let gid = self.temp_id(frame, t);
                // The callee touches offset + stride*k for k in 0..elems;
                // with a negative stride the *first* element is the
                // largest subscript, so note both endpoints.
                let top = call_off.add(&Affine::constant(call_stride * (elems as i64 - 1)));
                self.note_temp_extent(gid, &top);
                self.note_temp_extent(gid, call_off);
                Ok((VecKind::Temp(gid), call_off.clone(), call_stride))
            }
            other => Err(ExpandError::Invalid(format!(
                "vector argument must be $in, $out, or a temporary, got ${other}"
            ))),
        }
    }

    fn temp_id(&mut self, frame: &mut Frame, name: &str) -> u32 {
        if let Some(&gid) = frame.t_map.get(name) {
            return gid;
        }
        let gid = self.temp_max.len() as u32;
        self.temp_max.push(-1);
        frame.t_map.insert(name.to_string(), gid);
        gid
    }

    /// Records that `idx` is touched on temp `gid`, growing its size to
    /// cover the maximum value of `idx` over the loop ranges.
    fn note_temp_extent(&mut self, gid: u32, idx: &Affine) {
        let mut max = idx.c;
        for &(k, v) in &idx.terms {
            let (lo, hi) = self.loop_ranges.get(&v).copied().unwrap_or((0, 0));
            max += if k >= 0 { k * hi } else { k * lo };
        }
        let slot = &mut self.temp_max[gid as usize];
        *slot = (*slot).max(max);
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn lval_place(
        &mut self,
        lhs: &TLval,
        frame: &mut Frame,
        b: &Bindings,
        params: &Params,
    ) -> Result<Place, ExpandError> {
        match lhs {
            TLval::Scalar(name) => self.scalar_place(name, frame),
            TLval::VecElem(name, idx) => {
                let idx = self.affine_of(idx, frame, b, params)?;
                self.vec_place(name, idx, frame, params, false)
            }
        }
    }

    fn scalar_place(&mut self, name: &str, frame: &mut Frame) -> Result<Place, ExpandError> {
        if name.starts_with('f') {
            let id = *frame.f_map.entry(name.to_string()).or_insert_with(|| {
                let id = self.n_f;
                self.n_f += 1;
                id
            });
            Ok(Place::F(id))
        } else if name.starts_with('r') {
            let id = *frame.r_map.entry(name.to_string()).or_insert_with(|| {
                let id = self.n_r;
                self.n_r += 1;
                id
            });
            Ok(Place::R(id))
        } else {
            Err(ExpandError::Invalid(format!("${name} is not assignable")))
        }
    }

    fn vec_place(
        &mut self,
        name: &str,
        idx: Affine,
        frame: &mut Frame,
        params: &Params,
        reading: bool,
    ) -> Result<Place, ExpandError> {
        match name {
            "in" => {
                if !reading {
                    return Err(ExpandError::Invalid("cannot write to $in".into()));
                }
                Ok(Place::Vec(VecRef {
                    kind: params.in_base,
                    idx: params.in_off.add(&idx.scale(params.in_stride)),
                }))
            }
            "out" => Ok(Place::Vec(VecRef {
                kind: params.out_base,
                idx: params.out_off.add(&idx.scale(params.out_stride)),
            })),
            t if t.starts_with('t') => {
                let gid = self.temp_id(frame, t);
                self.note_temp_extent(gid, &idx);
                Ok(Place::Vec(VecRef {
                    kind: VecKind::Temp(gid),
                    idx,
                }))
            }
            other => Err(ExpandError::Invalid(format!("unknown vector ${other}"))),
        }
    }

    /// Converts a template expression to an affine subscript.
    fn affine_of(
        &mut self,
        e: &TExpr,
        frame: &Frame,
        b: &Bindings,
        params: &Params,
    ) -> Result<Affine, ExpandError> {
        match e {
            TExpr::Int(v) => Ok(Affine::constant(*v)),
            TExpr::PatVar(_) | TExpr::Prop(_, _) => {
                Ok(Affine::constant(static_eval(e, b, self.table)?))
            }
            TExpr::Var(name) => match name.as_str() {
                "in_stride" => Ok(Affine::constant(params.in_stride)),
                "out_stride" => Ok(Affine::constant(params.out_stride)),
                "in_offset" => Ok(params.in_off.clone()),
                "out_offset" => Ok(params.out_off.clone()),
                "in_size" => Ok(Affine::constant(params.in_size as i64)),
                "out_size" => Ok(Affine::constant(params.out_size as i64)),
                _ => {
                    for (ln, lv) in frame.loops.iter().rev() {
                        if ln == name {
                            return Ok(Affine::var(*lv));
                        }
                    }
                    Err(ExpandError::Invalid(format!(
                        "${name} is not usable in a subscript (not a loop variable)"
                    )))
                }
            },
            TExpr::Un(TUnOp::Neg, a) => Ok(self.affine_of(a, frame, b, params)?.scale(-1)),
            TExpr::Bin(op, x, y) => {
                let xa = self.affine_of(x, frame, b, params)?;
                let ya = self.affine_of(y, frame, b, params)?;
                match op {
                    TBinOp::Add => Ok(xa.add(&ya)),
                    TBinOp::Sub => Ok(xa.add(&ya.scale(-1))),
                    TBinOp::Mul => {
                        if let Some(c) = xa.as_const() {
                            Ok(ya.scale(c))
                        } else if let Some(c) = ya.as_const() {
                            Ok(xa.scale(c))
                        } else {
                            Err(ExpandError::Invalid(format!(
                                "subscript {e} is not affine in the loop indices"
                            )))
                        }
                    }
                    TBinOp::Div | TBinOp::Mod => match (xa.as_const(), ya.as_const()) {
                        (Some(x), Some(y)) if y != 0 => {
                            Ok(Affine::constant(if *op == TBinOp::Div {
                                x / y
                            } else {
                                x % y
                            }))
                        }
                        _ => Err(ExpandError::Invalid(format!(
                            "subscript {e} uses non-constant division"
                        ))),
                    },
                }
            }
            other => Err(ExpandError::Invalid(format!(
                "{other} cannot appear in a subscript"
            ))),
        }
    }

    /// Emits `dst = rhs`, flattening nested expressions into fresh
    /// registers (the paper's four-tuple discipline).
    fn emit_assign(
        &mut self,
        dst: Place,
        rhs: &TExpr,
        ctx: Ctx,
        frame: &mut Frame,
        b: &Bindings,
        params: &Params,
    ) -> Result<(), ExpandError> {
        match rhs {
            TExpr::Bin(op, x, y) => {
                let a = self.operand(x, ctx, frame, b, params)?;
                let bb = self.operand(y, ctx, frame, b, params)?;
                let op = match op {
                    TBinOp::Add => BinOp::Add,
                    TBinOp::Sub => BinOp::Sub,
                    TBinOp::Mul => BinOp::Mul,
                    TBinOp::Div => BinOp::Div,
                    TBinOp::Mod => {
                        return Err(ExpandError::Invalid(
                            "modulo is only valid in compile-time expressions".into(),
                        ))
                    }
                };
                self.instrs.push(Instr::Bin { op, dst, a, b: bb });
            }
            TExpr::Un(TUnOp::Neg, x) => {
                let a = self.operand(x, ctx, frame, b, params)?;
                self.instrs.push(Instr::Un {
                    op: UnOp::Neg,
                    dst,
                    a,
                });
            }
            other => {
                let a = self.operand(other, ctx, frame, b, params)?;
                self.instrs.push(Instr::Un {
                    op: UnOp::Copy,
                    dst,
                    a,
                });
            }
        }
        Ok(())
    }

    /// Converts a template expression to a single i-code operand, emitting
    /// helper instructions for nested subexpressions.
    fn operand(
        &mut self,
        e: &TExpr,
        ctx: Ctx,
        frame: &mut Frame,
        b: &Bindings,
        params: &Params,
    ) -> Result<Value, ExpandError> {
        match e {
            TExpr::Int(v) => Ok(Value::Int(*v)),
            TExpr::Float(v) => Ok(Value::Const(Complex::real(*v))),
            TExpr::Pair(re, im) => Ok(Value::Const(Complex::new(*re, *im))),
            TExpr::PatVar(_) | TExpr::Prop(_, _) => Ok(Value::Int(static_eval(e, b, self.table)?)),
            TExpr::Var(name) => match name.as_str() {
                "in_stride" => Ok(Value::Int(params.in_stride)),
                "out_stride" => Ok(Value::Int(params.out_stride)),
                "in_size" => Ok(Value::Int(params.in_size as i64)),
                "out_size" => Ok(Value::Int(params.out_size as i64)),
                n if n.starts_with('i') => {
                    for (ln, lv) in frame.loops.iter().rev() {
                        if ln == n {
                            return Ok(Value::LoopIdx(*lv));
                        }
                    }
                    Err(ExpandError::Invalid(format!(
                        "${n} is not a loop variable in scope"
                    )))
                }
                n if n.starts_with('f') => Ok(Value::Place(self.scalar_place(n, frame)?)),
                n if n.starts_with('r') => Ok(Value::Place(self.scalar_place(n, frame)?)),
                other => Err(ExpandError::Invalid(format!("unknown variable ${other}"))),
            },
            TExpr::VecElem(name, idx) => {
                let idx = self.affine_of(idx, frame, b, params)?;
                Ok(Value::Place(
                    self.vec_place(name, idx, frame, params, true)?,
                ))
            }
            TExpr::Intrinsic(name, args) => {
                let args = args
                    .iter()
                    .map(|a| self.operand(a, Ctx::Int, frame, b, params))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Value::Intrinsic(name.clone(), args))
            }
            TExpr::Un(_, _) | TExpr::Bin(_, _, _) => {
                // Flatten through a fresh register.
                let tmp = match ctx {
                    Ctx::Int => {
                        let id = self.n_r;
                        self.n_r += 1;
                        Place::R(id)
                    }
                    Ctx::Num => {
                        let id = self.n_f;
                        self.n_f += 1;
                        Place::F(id)
                    }
                };
                self.emit_assign(tmp.clone(), e, ctx, frame, b, params)?;
                Ok(Value::Place(tmp))
            }
        }
    }

    // ------------------------------------------------------------------
    // Native forms (variable-length element lists cannot be template
    // patterns; the paper treats these "general matrices" as primitives)
    // ------------------------------------------------------------------

    fn elements_of(&self, sexp: &Sexp, what: &str) -> Result<Vec<Complex>, ExpandError> {
        let items = sexp
            .as_list()
            .and_then(|l| l.get(1))
            .and_then(Sexp::as_list)
            .ok_or_else(|| {
                ExpandError::Invalid(format!("{what} requires an element list: {sexp}"))
            })?;
        items.iter().map(scalar_const).collect()
    }

    fn in_ref(&self, params: &Params, k: i64) -> Value {
        Value::Place(Place::Vec(VecRef {
            kind: params.in_base,
            idx: params.in_off.add(&Affine::constant(params.in_stride * k)),
        }))
    }

    fn out_ref(&self, params: &Params, k: i64) -> Place {
        Place::Vec(VecRef {
            kind: params.out_base,
            idx: params.out_off.add(&Affine::constant(params.out_stride * k)),
        })
    }

    fn native_diagonal(&mut self, sexp: &Sexp, params: &Params) -> Result<(), ExpandError> {
        let d = self.elements_of(sexp, "diagonal")?;
        for (k, &c) in d.iter().enumerate() {
            let dst = self.out_ref(params, k as i64);
            let a = self.in_ref(params, k as i64);
            self.instrs.push(Instr::Bin {
                op: BinOp::Mul,
                dst,
                a: Value::Const(c),
                b: a,
            });
        }
        Ok(())
    }

    fn native_permutation(&mut self, sexp: &Sexp, params: &Params) -> Result<(), ExpandError> {
        let items = sexp
            .as_list()
            .and_then(|l| l.get(1))
            .and_then(Sexp::as_list)
            .ok_or_else(|| ExpandError::Invalid(format!("permutation requires indices: {sexp}")))?;
        let perm = items
            .iter()
            .map(|e| {
                e.as_int()
                    .filter(|&v| v >= 1 && v <= items.len() as i64)
                    .map(|v| v - 1)
                    .ok_or_else(|| ExpandError::Invalid(format!("bad permutation index in {sexp}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        for (k, &src) in perm.iter().enumerate() {
            let dst = self.out_ref(params, k as i64);
            let a = self.in_ref(params, src);
            self.instrs.push(Instr::Un {
                op: UnOp::Copy,
                dst,
                a,
            });
        }
        Ok(())
    }

    fn native_matrix(&mut self, sexp: &Sexp, params: &Params) -> Result<(), ExpandError> {
        let rows_sexp = self.list_parts(sexp, "matrix")?;
        let mut rows: Vec<Vec<Complex>> = Vec::new();
        for r in rows_sexp {
            let r = r.as_list().ok_or_else(|| {
                ExpandError::Invalid(format!("matrix rows must be lists: {sexp}"))
            })?;
            rows.push(r.iter().map(scalar_const).collect::<Result<Vec<_>, _>>()?);
        }
        let cols = rows.first().map_or(0, Vec::len);
        if cols == 0 || rows.iter().any(|r| r.len() != cols) {
            return Err(ExpandError::Shape(format!(
                "matrix rows must be non-empty and of equal length: {sexp}"
            )));
        }
        for (r, row) in rows.iter().enumerate() {
            let dst = self.out_ref(params, r as i64);
            // out[r] = m[r][0]*in[0]; out[r] = out[r] + m[r][c]*in[c]
            let acc = {
                let id = self.n_f;
                self.n_f += 1;
                Place::F(id)
            };
            self.instrs.push(Instr::Bin {
                op: BinOp::Mul,
                dst: acc.clone(),
                a: Value::Const(row[0]),
                b: self.in_ref(params, 0),
            });
            for (c, &v) in row.iter().enumerate().skip(1) {
                let prod = {
                    let id = self.n_f;
                    self.n_f += 1;
                    Place::F(id)
                };
                self.instrs.push(Instr::Bin {
                    op: BinOp::Mul,
                    dst: prod.clone(),
                    a: Value::Const(v),
                    b: self.in_ref(params, c as i64),
                });
                self.instrs.push(Instr::Bin {
                    op: BinOp::Add,
                    dst: acc.clone(),
                    a: Value::Place(acc.clone()),
                    b: Value::Place(prod),
                });
            }
            self.instrs.push(Instr::Un {
                op: UnOp::Copy,
                dst,
                a: Value::Place(acc),
            });
        }
        Ok(())
    }

    /// General tensor fallback: `A ⊗ B = (A ⊗ I_p)(I_n ⊗ B)` for
    /// `A: m×n`, `B: p×q` — rewritten and re-expanded so the identity
    /// templates handle the pieces.
    fn native_tensor(&mut self, sexp: &Sexp, params: Params) -> Result<(), ExpandError> {
        let parts = self.list_parts(sexp, "tensor")?;
        let [a, b] = parts else {
            return Err(ExpandError::Shape(format!(
                "tensor must be binarized before expansion: {sexp}"
            )));
        };
        let (_a_rows, a_cols) = shape_of(a, self.table)?;
        let (b_rows, _b_cols) = shape_of(b, self.table)?;
        let rewritten = Sexp::List(vec![
            Sexp::sym("compose"),
            Sexp::List(vec![
                Sexp::sym("tensor"),
                a.clone(),
                Sexp::List(vec![Sexp::sym("I"), Sexp::Int(b_rows as i64)]),
            ]),
            Sexp::List(vec![
                Sexp::sym("tensor"),
                Sexp::List(vec![Sexp::sym("I"), Sexp::Int(a_cols as i64)]),
                b.clone(),
            ]),
        ]);
        self.expand(&rewritten, params)
    }
}

fn scalar_const(e: &Sexp) -> Result<Complex, ExpandError> {
    match e {
        Sexp::Int(v) => Ok(Complex::real(*v as f64)),
        Sexp::Scalar(expr) => {
            let v = expr
                .eval()
                .map_err(|err| ExpandError::Invalid(err.to_string()))?;
            Ok(Complex::new(v.re, v.im))
        }
        other => Err(ExpandError::Invalid(format!(
            "{other} is not a scalar constant"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spl_frontend::parser::parse_formula;
    use spl_icode::interp::run;
    use spl_numeric::reference;

    fn compile(src: &str) -> IProgram {
        let table = TemplateTable::builtin();
        let sexp = parse_formula(src).unwrap();
        expand_formula(&sexp, &table, &ExpandOptions::default()).unwrap()
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new(i as f64 + 1.0, (i as f64 * 0.3).cos()))
            .collect()
    }

    fn check_against_dense(src: &str, n: usize) {
        let prog = compile(src);
        let x = ramp(n);
        let got = run(&prog, &x).unwrap();
        let table = TemplateTable::builtin();
        let _ = &table;
        let f = spl_formula::formula_from_sexp(
            &parse_formula(src).unwrap(),
            &std::collections::HashMap::new(),
        )
        .unwrap();
        let want = spl_formula::dense::apply(&f, &x).unwrap();
        for (a, b) in got.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-11), "{src}: {a} vs {b}");
        }
    }

    #[test]
    fn identity_copies() {
        check_against_dense("(I 4)", 4);
    }

    #[test]
    fn f_by_definition() {
        for n in [1usize, 2, 3, 4, 5, 8] {
            let prog = compile(&format!("(F {n})"));
            let x = ramp(n);
            let got = run(&prog, &x).unwrap();
            let want = reference::dft(&x);
            for (a, b) in got.iter().zip(&want) {
                assert!(a.approx_eq(*b, 1e-11), "n={n}");
            }
        }
    }

    #[test]
    fn stride_and_twiddle() {
        check_against_dense("(L 8 2)", 8);
        check_against_dense("(L 8 4)", 8);
        check_against_dense("(L 12 3)", 12);
        check_against_dense("(T 8 4)", 8);
        check_against_dense("(T 12 3)", 12);
    }

    #[test]
    fn reversal() {
        check_against_dense("(J 5)", 5);
    }

    #[test]
    fn compose_uses_temp() {
        let prog = compile("(compose (F 2) (F 2))");
        assert_eq!(prog.temps, vec![2]);
        check_against_dense("(compose (F 2) (F 2))", 2);
    }

    #[test]
    fn tensor_identity_left_and_right() {
        check_against_dense("(tensor (I 4) (F 2))", 8);
        check_against_dense("(tensor (F 2) (I 4))", 8);
    }

    #[test]
    fn general_tensor_fallback() {
        check_against_dense("(tensor (F 2) (F 3))", 6);
        check_against_dense("(tensor (F 3) (F 2))", 6);
    }

    #[test]
    fn direct_sum() {
        check_against_dense("(direct-sum (F 2) (I 3))", 5);
        check_against_dense("(direct-sum (F 2) (F 2) (F 2))", 6);
    }

    #[test]
    fn diagonal_permutation_matrix_natives() {
        check_against_dense("(diagonal (1 -1 (0,-1) sqrt(2)))", 4);
        check_against_dense("(permutation (2 3 1))", 3);
        check_against_dense("(matrix (1 2) (3 4))", 2);
        check_against_dense("(matrix (1 0 2) (0 1 1))", 3);
    }

    #[test]
    fn paper_f4_and_fft16() {
        check_against_dense(
            "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))",
            4,
        );
        let src = "(compose (tensor (compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2)) (I 4)) (T 16 4) (tensor (I 4) (compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))) (L 16 4))";
        let prog = compile(src);
        let x = ramp(16);
        let got = run(&prog, &x).unwrap();
        let want = reference::dft(&x);
        for (a, b) in got.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-11));
        }
    }

    #[test]
    fn defines_resolve_in_order() {
        let table = TemplateTable::builtin();
        let sexp = parse_formula("(compose F4 (L 4 2))").unwrap();
        let f4 =
            parse_formula("(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))")
                .unwrap();
        let opts = ExpandOptions {
            defines: vec![("F4".into(), f4, false)],
            ..Default::default()
        };
        let prog = expand_formula(&sexp, &table, &opts).unwrap();
        assert_eq!(prog.n_in, 4);
    }

    #[test]
    fn unroll_marker_flags_loops() {
        let table = TemplateTable::builtin();
        let sexp = parse_formula("(tensor (I 32) I2F2)").unwrap();
        let i2f2 = parse_formula("(tensor (I 2) (F 2))").unwrap();
        let opts = ExpandOptions {
            defines: vec![("I2F2".into(), i2f2, true)],
            ..Default::default()
        };
        let prog = expand_formula(&sexp, &table, &opts).unwrap();
        // The outer (I 32) loop is not marked, the inner (I 2) loop is.
        let flags: Vec<bool> = prog
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::DoStart { unroll, .. } => Some(*unroll),
                _ => None,
            })
            .collect();
        assert_eq!(flags, vec![false, true]);
    }

    #[test]
    fn threshold_marks_small_subformulas() {
        let table = TemplateTable::builtin();
        let sexp = parse_formula("(tensor (I 32) (F 2))").unwrap();
        let opts = ExpandOptions {
            unroll_threshold: Some(2),
            ..Default::default()
        };
        let prog = expand_formula(&sexp, &table, &opts).unwrap();
        let flags: Vec<bool> = prog
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::DoStart { unroll, .. } => Some(*unroll),
                _ => None,
            })
            .collect();
        // Outer 64-point loop not marked; (F 2) generates no loops at all
        // (the butterfly override), so only one loop exists.
        assert_eq!(flags, vec![false]);
    }

    #[test]
    fn nary_compose_uses_two_buffers() {
        // A 5-factor chain must allocate at most two temporaries.
        let prog = compile("(compose (F 2) (J 2) (F 2) (J 2) (F 2))");
        assert!(prog.temps.len() <= 2, "{:?}", prog.temps);
        check_against_dense("(compose (F 2) (J 2) (F 2) (J 2) (F 2))", 2);
        check_against_dense(
            "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))",
            4,
        );
    }

    #[test]
    fn nary_compose_with_rectangular_factors() {
        // (matrix 2x3) then (matrix 3x2) then F2: sizes shrink and grow.
        check_against_dense(
            "(compose (F 2) (matrix (1 0 1) (0 1 0)) (matrix (1 0) (0 1) (1 1)) (F 2))",
            2,
        );
    }

    #[test]
    fn binarize_right_associates() {
        // tensor/direct-sum binarize; compose stays n-ary (ping-pong).
        let s = parse_formula("(tensor (F 2) (I 2) (L 2 1) (T 2 1))").unwrap();
        let b = binarize(&s);
        assert_eq!(
            b.to_string(),
            "(tensor (F 2) (tensor (I 2) (tensor (L 2 1) (T 2 1))))"
        );
        let s = parse_formula("(compose (F 2) (I 2) (L 2 1))").unwrap();
        assert_eq!(binarize(&s).to_string(), "(compose (F 2) (I 2) (L 2 1))");
    }

    #[test]
    fn zero_trip_loops_follow_fortran_semantics() {
        // (pad n n) degenerates: the zero-fill loop has zero trips and
        // must simply vanish, leaving a copy.
        use spl_frontend::parser::parse_program;
        let src = "(template (pad m_ n_) [m_>=n_ && n_>=1]
           (do $i0 = 0,n_-1
                 $out($i0) = $in($i0)
            end
            do $i0 = n_,m_-1
                 $out($i0) = 0
            end))";
        let mut table = TemplateTable::builtin();
        for item in parse_program(src).unwrap().items {
            if let spl_frontend::Item::Template(t) = item {
                table.add(t);
            }
        }
        // m > n: pads.
        let sexp = parse_formula("(pad 5 3)").unwrap();
        let prog = expand_formula(&sexp, &table, &ExpandOptions::default()).unwrap();
        let x: Vec<Complex> = (1..=3).map(|v| Complex::real(v as f64)).collect();
        let y = run(&prog, &x).unwrap();
        assert_eq!(
            y.iter().map(|c| c.re).collect::<Vec<_>>(),
            vec![1.0, 2.0, 3.0, 0.0, 0.0]
        );
        // m == n: the fill loop is empty; the result is a plain copy.
        let sexp = parse_formula("(pad 3 3)").unwrap();
        let prog = expand_formula(&sexp, &table, &ExpandOptions::default()).unwrap();
        let y = run(&prog, &x).unwrap();
        assert_eq!(
            y.iter().map(|c| c.re).collect::<Vec<_>>(),
            vec![1.0, 2.0, 3.0]
        );
    }

    #[test]
    fn ragged_matrix_rejected_by_expander() {
        let table = TemplateTable::builtin();
        for src in ["(matrix (1 2) (3))", "(matrix (1 2) ())"] {
            let sexp = parse_formula(src).unwrap();
            assert!(
                expand_formula(&sexp, &table, &ExpandOptions::default()).is_err(),
                "{src} must be rejected"
            );
        }
    }

    #[test]
    fn no_matching_template_is_error() {
        let table = TemplateTable::builtin();
        let sexp = parse_formula("(frobnicate 4)").unwrap();
        assert!(expand_formula(&sexp, &table, &ExpandOptions::default()).is_err());
    }

    #[test]
    fn user_template_overrides_builtin() {
        use spl_frontend::parser::parse_program;
        // Override (F 2) to compute the *negated* butterfly, and observe
        // the override taking effect.
        let src = "\
(template (F 2)
  ( $f0 = $in(0) + $in(1)
    $f1 = $in(0) - $in(1)
    $out(0) = 0 - $f0
    $out(1) = 0 - $f1 ))
";
        let mut table = TemplateTable::builtin();
        for item in parse_program(src).unwrap().items {
            if let spl_frontend::Item::Template(t) = item {
                table.add(t);
            }
        }
        let sexp = parse_formula("(F 2)").unwrap();
        let prog = expand_formula(&sexp, &table, &ExpandOptions::default()).unwrap();
        let y = run(&prog, &[Complex::real(3.0), Complex::real(5.0)]).unwrap();
        assert_eq!(y[0].re, -8.0);
        assert_eq!(y[1].re, 2.0);
    }

    #[test]
    fn strided_views_compose_through_calls() {
        // (tensor (F 2) (I 2)) applies F2 at stride 2 twice; composing
        // with an outer (tensor (I 2) ...) nests offsets.
        check_against_dense("(tensor (I 2) (tensor (F 2) (I 2)))", 8);
        check_against_dense("(tensor (tensor (I 2) (F 2)) (I 2))", 8);
    }

    #[test]
    fn wht8_as_tensor_cube() {
        let prog = compile("(tensor (F 2) (F 2) (F 2))");
        let xr: Vec<f64> = (0..8).map(|i| i as f64 - 3.5).collect();
        let x: Vec<Complex> = xr.iter().map(|&v| Complex::real(v)).collect();
        let y = run(&prog, &x).unwrap();
        let want = reference::wht(&xr);
        for (a, b) in y.iter().zip(&want) {
            assert!((a.re - b).abs() < 1e-12 && a.im.abs() < 1e-12);
        }
    }
}
