//! Live-daemon integration tests: Unix-socket serving, batching,
//! overload shedding, deadline cancellation, drain, and protocol
//! robustness against a *running* server (the parser-level robustness
//! corpus lives in the protocol unit tests; these prove the daemon
//! stays alive behind it).

#![cfg(unix)]

use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use spl_serve::plans::{PlanStore, PlanStoreOptions};
use spl_serve::{ChaosConfig, Client, Response, Server, ServerConfig, Tier};

/// Bitwise equality — the serving invariant is *bit-identical to the
/// plan's VM output*, so `==` on floats (which would equate 0.0 and
/// -0.0) is not strict enough.
fn assert_bits_eq(got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "sample {i} differs: {g:?} vs {w:?}"
        );
    }
}

/// The reference a reply must bitwise-match: the same VM program the
/// daemon resolves for `n`, run locally.
fn expected_vm(n: usize, x: &[f64]) -> Vec<f64> {
    let store = PlanStore::new(PlanStoreOptions {
        native: false,
        ..Default::default()
    })
    .expect("local plan store");
    let plan = store.entry(n).expect("plan");
    let mut y = vec![0.0; plan.vm().n_out];
    plan.run_vm(x, &mut y);
    y
}

fn sample_input(n: usize, salt: u64) -> Vec<f64> {
    (0..2 * n)
        .map(|i| ((i as u64 * 37 + salt * 101) % 97) as f64 * 0.25 - 12.0)
        .collect()
}

struct TestDaemon {
    socket: PathBuf,
    server: Arc<Server>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TestDaemon {
    fn start(name: &str, config: ServerConfig) -> TestDaemon {
        let dir = std::env::temp_dir().join(format!("spld-it-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("test dir");
        let socket = dir.join("sock");
        let server = Server::new(config).expect("server");
        let s = Arc::clone(&server);
        let path = socket.clone();
        let handle = std::thread::spawn(move || {
            s.serve_unix(&path).expect("serve_unix");
        });
        // Wait for the listener to bind.
        for _ in 0..400 {
            if socket.exists() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(socket.exists(), "daemon never bound its socket");
        TestDaemon {
            socket,
            server,
            handle: Some(handle),
        }
    }

    fn client(&self) -> Client<UnixStream> {
        for _ in 0..50 {
            if let Ok(c) = Client::connect_unix(&self.socket) {
                return c;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("could not connect to {}", self.socket.display());
    }

    /// Drains over the wire and joins the daemon thread.
    fn shut_down(mut self) {
        let mut c = self.client();
        match c.drain().expect("drain") {
            Response::Text(t) => assert_eq!(t, "drained"),
            other => panic!("drain answered {other:?}"),
        }
        self.handle
            .take()
            .expect("not yet joined")
            .join()
            .expect("daemon thread");
        assert!(self.server.is_shut_down());
    }

    fn counter(&self, stats: &str, key: &str) -> u64 {
        stats
            .lines()
            .filter_map(|line| {
                let mut it = line.split_whitespace();
                match (it.next(), it.next()) {
                    (Some(k), Some(v)) if k == key => v.parse().ok(),
                    _ => None,
                }
            })
            .next()
            .unwrap_or(0)
    }
}

fn vm_only(config: ServerConfig) -> ServerConfig {
    ServerConfig {
        native: false,
        ..config
    }
}

#[test]
fn daemon_serves_bit_identical_to_vm_over_socket() {
    let daemon = TestDaemon::start("serve", vm_only(ServerConfig::default()));
    let mut client = daemon.client();
    for (salt, n) in [(1u64, 4usize), (2, 8), (3, 16), (4, 8)] {
        let x = sample_input(n, salt);
        match client.transform(n, None, &x).expect("transform") {
            Response::Transformed { data, .. } => assert_bits_eq(&data, &expected_vm(n, &x)),
            other => panic!("size {n} answered {other:?}"),
        }
    }
    // Health names the warm plans.
    match client.health().expect("health") {
        Response::Text(t) => assert!(t.contains("plans=3"), "health said: {t}"),
        other => panic!("health answered {other:?}"),
    }
    drop(client);
    daemon.shut_down();
}

#[test]
fn unsupported_sizes_get_typed_errors_not_disconnects() {
    let daemon = TestDaemon::start("unsupported", vm_only(ServerConfig::default()));
    let mut client = daemon.client();
    // Size 6 has no radix-2 plan and no wisdom: a typed error...
    match client
        .transform(6, None, &sample_input(6, 9))
        .expect("transform")
    {
        Response::Error { class, .. } => assert_eq!(class, b'u'),
        other => panic!("size 6 answered {other:?}"),
    }
    // ...and the connection still serves the next request.
    let x = sample_input(4, 10);
    match client.transform(4, None, &x).expect("transform") {
        Response::Transformed { data, .. } => assert_bits_eq(&data, &expected_vm(4, &x)),
        other => panic!("size 4 answered {other:?}"),
    }
    drop(client);
    daemon.shut_down();
}

#[test]
fn overload_sheds_with_explicit_reply() {
    let config = ServerConfig {
        workers: 1,
        queue_cap: 2,
        batch_max: 1, // no batching: keep the queue under real pressure
        chaos: Some(ChaosConfig {
            seed: 7,
            p_kernel_fault: 0.0,
            p_latency: 1.0,
            latency: Duration::from_millis(40),
        }),
        ..ServerConfig::default()
    };
    let daemon = TestDaemon::start("overload", vm_only(config));
    let clients = 12;
    let barrier = Arc::new(Barrier::new(clients));
    let results: Vec<Response> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|salt| {
                let mut client = daemon.client();
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    let x = sample_input(4, salt as u64);
                    barrier.wait();
                    let resp = client.transform(4, None, &x).expect("transform");
                    if let Response::Transformed { data, .. } = &resp {
                        assert_bits_eq(data, &expected_vm(4, &x));
                    }
                    resp
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let shed = results
        .iter()
        .filter(|r| matches!(r, Response::Overloaded))
        .count();
    let ok = results
        .iter()
        .filter(|r| matches!(r, Response::Transformed { .. }))
        .count();
    assert!(
        shed >= 1,
        "queue_cap=2 with 12 clients must shed: {results:?}"
    );
    // At least the queue_cap jobs admitted before the burst filled the
    // queue are always served; how many more depends on whether the
    // worker frees a slot mid-burst, which is scheduler timing.
    assert!(ok >= 2, "the queue still serves: {results:?}");
    assert_eq!(shed + ok, clients, "every request answered explicitly");
    let mut client = daemon.client();
    let stats = match client.stats().expect("stats") {
        Response::Text(t) => t,
        other => panic!("stats answered {other:?}"),
    };
    assert_eq!(daemon.counter(&stats, "spld.shed"), shed as u64);
    drop(client);
    daemon.shut_down();
}

#[test]
fn deadlines_cancel_rather_than_serve_late() {
    let config = ServerConfig {
        workers: 1,
        batch_max: 1,
        chaos: Some(ChaosConfig {
            seed: 11,
            p_kernel_fault: 0.0,
            p_latency: 1.0,
            latency: Duration::from_millis(60),
        }),
        ..ServerConfig::default()
    };
    let daemon = TestDaemon::start("deadline", vm_only(config));
    let mut client = daemon.client();
    let x = sample_input(8, 5);
    match client
        .transform(8, Some(Duration::from_millis(5)), &x)
        .expect("transform")
    {
        Response::DeadlineExceeded => {}
        other => panic!("5ms deadline under 60ms injected latency answered {other:?}"),
    }
    // Without a deadline the same request succeeds, bit-identical.
    match client.transform(8, None, &x).expect("transform") {
        Response::Transformed { data, .. } => assert_bits_eq(&data, &expected_vm(8, &x)),
        other => panic!("undeadlined request answered {other:?}"),
    }
    let stats = match client.stats().expect("stats") {
        Response::Text(t) => t,
        other => panic!("stats answered {other:?}"),
    };
    assert!(daemon.counter(&stats, "spld.deadline.missed") >= 1);
    assert!(daemon.counter(&stats, "spld.chaos.latency_injected") >= 2);
    drop(client);
    daemon.shut_down();
}

#[test]
fn batching_fuses_concurrent_same_size_requests() {
    let config = ServerConfig {
        workers: 1,
        batch_max: 8,
        batch_window: Duration::from_millis(25),
        ..ServerConfig::default()
    };
    let daemon = TestDaemon::start("batch", vm_only(config));
    let clients = 6;
    let barrier = Arc::new(Barrier::new(clients));
    let tiers: Vec<Tier> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|salt| {
                let mut client = daemon.client();
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    let x = sample_input(8, 20 + salt as u64);
                    barrier.wait();
                    match client.transform(8, None, &x).expect("transform") {
                        Response::Transformed { tier, data } => {
                            // The batched path must stay bit-identical to
                            // the single-request VM answer.
                            assert_bits_eq(&data, &expected_vm(8, &x));
                            tier
                        }
                        other => panic!("batched client answered {other:?}"),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    assert!(
        tiers.contains(&Tier::BatchedVm),
        "no request was served from a batch: {tiers:?}"
    );
    let mut client = daemon.client();
    let stats = match client.stats().expect("stats") {
        Response::Text(t) => t,
        other => panic!("stats answered {other:?}"),
    };
    assert!(
        daemon.counter(&stats, "spld.batch.multi") >= 1,
        "stats must show a multi-request dispatch:\n{stats}"
    );
    assert!(
        daemon.counter(&stats, "spld.batch.requests")
            > daemon.counter(&stats, "spld.batch.dispatches"),
        "batched dispatches must cover more requests than dispatches:\n{stats}"
    );
    drop(client);
    daemon.shut_down();
}

#[test]
fn drain_finishes_in_flight_work_before_stopping() {
    let config = ServerConfig {
        workers: 1,
        batch_max: 1,
        chaos: Some(ChaosConfig {
            seed: 13,
            p_kernel_fault: 0.0,
            p_latency: 1.0,
            latency: Duration::from_millis(80),
        }),
        ..ServerConfig::default()
    };
    let mut daemon = TestDaemon::start("drain", vm_only(config));
    let x = sample_input(4, 31);
    let slow = {
        let mut client = daemon.client();
        let x = x.clone();
        std::thread::spawn(move || client.transform(4, None, &x).expect("transform"))
    };
    // Let the slow job get admitted, then drain concurrently.
    std::thread::sleep(Duration::from_millis(20));
    let mut drainer = daemon.client();
    let drained = drainer.drain().expect("drain");
    assert_eq!(drained, Response::Text("drained".into()));
    // The in-flight job was finished, not abandoned.
    match slow.join().expect("slow client") {
        Response::Transformed { data, .. } => assert_bits_eq(&data, &expected_vm(4, &x)),
        other => panic!("in-flight request answered {other:?}"),
    }
    daemon
        .handle
        .take()
        .expect("handle")
        .join()
        .expect("daemon thread");
    assert!(daemon.server.is_shut_down());
    assert!(!daemon.socket.exists(), "socket file removed on shutdown");
}

#[test]
fn malformed_frames_answered_and_daemon_survives() {
    let daemon = TestDaemon::start("malformed", vm_only(ServerConfig::default()));

    // A complete frame with a bad verb: typed error, connection lives.
    let mut client = daemon.client();
    client.send_raw_frame(&[b'Z', 1, 2, 3]).expect("send");
    match client.read_response().expect("reply") {
        Response::Error { class, .. } => assert_eq!(class, b'p'),
        other => panic!("bad verb answered {other:?}"),
    }
    match client.health().expect("health after bad verb") {
        Response::Text(_) => {}
        other => panic!("health answered {other:?}"),
    }

    // An oversized length prefix: answered once, then the connection is
    // closed (stream offset is unrecoverable).
    client
        .send_raw_bytes(&[0xff, 0xff, 0xff, 0xff])
        .expect("send");
    match client.read_response() {
        Ok(Response::Error { class, .. }) => assert_eq!(class, b'p'),
        Ok(other) => panic!("oversized length answered {other:?}"),
        Err(_) => {} // already closed: also acceptable
    }
    drop(client);

    // Seeded garbage corpus against the live daemon: framed garbage is
    // answered or the connection is dropped — the daemon never dies.
    let mut state = 0x0dd_ba11u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for _ in 0..40 {
        let mut garbage = daemon.client();
        let len = (next() % 48) as usize + 1;
        let mut payload: Vec<u8> = (0..len).map(|_| (next() & 0xff) as u8).collect();
        if payload[0] == b'D' {
            // Fuzz must not accidentally speak a valid drain verb.
            payload[0] = b'!';
        }
        if garbage.send_raw_frame(&payload).is_ok() {
            let _ = garbage.read_response();
        }
    }
    // Torn frame: a length prefix promising more than is sent, then a
    // hard disconnect mid-frame.
    let mut torn = daemon.client();
    torn.send_raw_bytes(&[0, 0, 1, 0, b'T']).expect("send");
    drop(torn);

    // After all of it: a fresh client gets correct answers.
    let mut fresh = daemon.client();
    let x = sample_input(4, 77);
    match fresh.transform(4, None, &x).expect("transform") {
        Response::Transformed { data, .. } => assert_bits_eq(&data, &expected_vm(4, &x)),
        other => panic!("post-garbage transform answered {other:?}"),
    }
    let stats = match fresh.stats().expect("stats") {
        Response::Text(t) => t,
        other => panic!("stats answered {other:?}"),
    };
    assert!(daemon.counter(&stats, "spld.protocol_errors") >= 2);
    drop(fresh);
    daemon.shut_down();
}

#[test]
fn reload_wisdom_makes_new_sizes_servable_live() {
    // A wisdom DB directory the daemon watches; empty at startup.
    let dir = std::env::temp_dir().join(format!("spld-it-wreload-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("test dir");
    let wdb = dir.join("wdb");
    let config = ServerConfig {
        wisdom_db: Some(wdb.clone()),
        ..ServerConfig::default()
    };
    let daemon = TestDaemon::start("wreload", vm_only(config));
    let mut client = daemon.client();

    // Size 12 is not a power of two and no wisdom covers it yet.
    match client
        .transform(12, None, &sample_input(12, 51))
        .expect("transform")
    {
        Response::Error { class, .. } => assert_eq!(class, b'u'),
        other => panic!("size 12 before reload answered {other:?}"),
    }

    // A concurrent searcher learns 12 = (ct 3 4) and records it into
    // the shared DB — exactly what `splsearch --wisdom-db` does.
    {
        let mut db = spl_search::WisdomDb::open(&wdb).expect("wisdom db");
        db.import_flat("12: (ct 3 4)\n", "fft/daemon-test")
            .expect("import");
    }

    // The W verb makes the new size servable without a restart.
    match client.reload_wisdom().expect("reload") {
        Response::Text(t) => assert_eq!(t, "wisdom reloaded sizes=1"),
        other => panic!("reload answered {other:?}"),
    }
    let x = sample_input(12, 52);
    match client.transform(12, None, &x).expect("transform") {
        Response::Transformed { data, .. } => {
            // Bit-identical to the same plan's VM program run locally.
            let store = PlanStore::new(PlanStoreOptions {
                native: false,
                ..Default::default()
            })
            .expect("local plan store");
            store.load_wisdom("12: (ct 3 4)\n").expect("wisdom");
            let plan = store.entry(12).expect("plan");
            let mut want = vec![0.0; plan.vm().n_out];
            plan.run_vm(&x, &mut want);
            assert_bits_eq(&data, &want);
        }
        other => panic!("size 12 after reload answered {other:?}"),
    }
    let stats = match client.stats().expect("stats") {
        Response::Text(t) => t,
        other => panic!("stats answered {other:?}"),
    };
    assert_eq!(daemon.counter(&stats, "spld.wisdom.reloads"), 1);
    assert!(
        daemon.counter(&stats, "spld.wisdom.sizes") >= 1,
        "reload must load the new size:\n{stats}"
    );
    drop(client);
    daemon.shut_down();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_flight_disconnect_does_not_kill_the_daemon() {
    let config = ServerConfig {
        workers: 1,
        batch_max: 1,
        chaos: Some(ChaosConfig {
            seed: 17,
            p_kernel_fault: 0.0,
            p_latency: 1.0,
            latency: Duration::from_millis(60),
        }),
        ..ServerConfig::default()
    };
    let daemon = TestDaemon::start("disconnect", vm_only(config));
    {
        let mut client = daemon.client();
        let x = sample_input(8, 41);
        // Fire the request, then vanish before the (delayed) reply.
        client
            .send_raw_frame(&spl_serve::protocol::encode_request(
                &spl_serve::Request::Transform {
                    kind: spl_serve::protocol::KIND_DFT,
                    n: 8,
                    deadline_ms: None,
                    data: x,
                },
            ))
            .expect("send");
    } // dropped: mid-flight disconnect
      // Give the worker time to finish and hit the dead socket.
    std::thread::sleep(Duration::from_millis(120));
    let mut fresh = daemon.client();
    let x = sample_input(8, 42);
    match fresh.transform(8, None, &x).expect("transform") {
        Response::Transformed { data, .. } => assert_bits_eq(&data, &expected_vm(8, &x)),
        other => panic!("post-disconnect transform answered {other:?}"),
    }
    let stats = match fresh.stats().expect("stats") {
        Response::Text(t) => t,
        other => panic!("stats answered {other:?}"),
    };
    assert!(
        daemon.counter(&stats, "spld.disconnects") >= 1,
        "the dropped reply must be counted:\n{stats}"
    );
    drop(fresh);
    daemon.shut_down();
}
