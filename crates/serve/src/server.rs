//! The daemon proper: admission, batching workers, deadlines, drain.
//!
//! Connection threads parse frames and *admit* transform jobs into one
//! bounded queue; `workers` threads pop jobs, opportunistically gather
//! queued same-size jobs into an `I_m ⊗ A` batch, execute through the
//! [`PlanStore`] degradation chain, and send each reply back over a
//! per-job channel. Robustness decisions, in one place:
//!
//! * **Backpressure** — a full queue sheds with an explicit
//!   [`Response::Overloaded`]; nothing is silently dropped.
//! * **Deadlines** — checked at admission, again when a worker picks
//!   the job up (an expired job is *cancelled*, never executed), and
//!   implicitly bounded by the client's own frame read.
//! * **Drain** — the `drain` verb stops admissions (new transforms get
//!   [`Response::Draining`]), waits for the queue and in-flight work to
//!   empty, answers, and stops the daemon. In-flight requests always
//!   finish.
//! * **Chaos** — an optional seeded [`ChaosInjector`] adds artificial
//!   latency per job and simulated kernel faults per native run, so
//!   fault paths are exercised deterministically in tests.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use spl_telemetry::cli::render_stats;
use spl_telemetry::Telemetry;

use crate::chaos::{ChaosConfig, ChaosInjector};
use crate::plans::{PlanStore, PlanStoreOptions, ServeError};
use crate::protocol::{
    encode_response, parse_request, read_frame_or_eof, write_frame, ProtocolError, Request,
    Response, Tier,
};

/// Everything configurable about one daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Serving state directory (kernel cache + plan journal).
    pub state_dir: Option<PathBuf>,
    /// Wisdom file preloaded at startup.
    pub wisdom: Option<PathBuf>,
    /// Wisdom *database* directory (`spl_search::WisdomDb`) preloaded
    /// at startup and re-read by the `reload wisdom` verb, so plans
    /// learned by concurrent `splsearch --wisdom-db` runs become
    /// servable without a restart.
    pub wisdom_db: Option<PathBuf>,
    /// Worker threads executing transforms.
    pub workers: usize,
    /// Bounded admission-queue capacity; beyond it requests shed.
    pub queue_cap: usize,
    /// Largest batch one dispatch may gather (1 disables batching).
    pub batch_max: usize,
    /// How long a worker holding one job waits for same-size company
    /// before dispatching (0 = only batch what is already queued).
    pub batch_window: Duration,
    /// `-B` unrolling threshold for plan compilation.
    pub unroll_threshold: usize,
    /// Largest servable transform size.
    pub max_size: usize,
    /// Compile native kernels (else VM-only serving).
    pub native: bool,
    /// Optional fault injection.
    pub chaos: Option<ChaosConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            state_dir: None,
            wisdom: None,
            wisdom_db: None,
            workers: 2,
            queue_cap: 64,
            batch_max: 16,
            batch_window: Duration::ZERO,
            unroll_threshold: 64,
            max_size: 1 << 16,
            native: true,
            chaos: None,
        }
    }
}

/// One admitted transform job.
struct Job {
    n: usize,
    data: Vec<f64>,
    deadline: Option<Instant>,
    admitted: Instant,
    reply: mpsc::Sender<Response>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    draining: bool,
    stopped: bool,
}

/// Latency ring: enough samples for stable p50/p99 without unbounded
/// growth.
const LATENCY_RING: usize = 4096;

/// Shared daemon state: plan store, queue, counters.
pub struct Server {
    config: ServerConfig,
    store: PlanStore,
    chaos: Option<ChaosInjector>,
    queue: Mutex<QueueState>,
    /// Signals workers that the queue gained a job (or stopped).
    available: Condvar,
    /// Signals the drainer that the queue may have emptied.
    idle: Condvar,
    in_flight: AtomicUsize,
    /// Accept loops exit when set.
    shutdown: AtomicBool,
    tel: Mutex<Telemetry>,
    latencies: Mutex<VecDeque<u64>>,
    started: Instant,
}

impl Server {
    /// Builds the daemon: opens the plan store (replaying its journal),
    /// loads wisdom, and starts nothing yet — call [`Server::serve_unix`]
    /// or [`Server::serve_stream`].
    ///
    /// # Errors
    ///
    /// Propagates state-directory and wisdom failures.
    pub fn new(config: ServerConfig) -> Result<Arc<Server>, ServeError> {
        let store = PlanStore::new(PlanStoreOptions {
            state_dir: config.state_dir.clone(),
            unroll_threshold: config.unroll_threshold,
            max_size: config.max_size,
            native: config.native,
            ..Default::default()
        })?;
        load_wisdom_sources(&config, &store)?;
        let chaos = config.chaos.map(ChaosInjector::new);
        Ok(Arc::new(Server {
            config,
            store,
            chaos,
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                draining: false,
                stopped: false,
            }),
            available: Condvar::new(),
            idle: Condvar::new(),
            in_flight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            tel: Mutex::new(Telemetry::new()),
            latencies: Mutex::new(VecDeque::with_capacity(LATENCY_RING)),
            started: Instant::now(),
        }))
    }

    /// Spawns the worker pool. Idempotent enough for one call per
    /// daemon; callers hold the `JoinHandle`s if they want to join
    /// after [`Server::is_shut_down`].
    pub fn start_workers(self: &Arc<Server>) -> Vec<std::thread::JoinHandle<()>> {
        (0..self.config.workers.max(1))
            .map(|_| {
                let server = Arc::clone(self);
                std::thread::spawn(move || server.worker_loop())
            })
            .collect()
    }

    /// Serves a Unix socket at `path` until drained: binds (replacing a
    /// stale socket file), accepts connections, one thread per client.
    ///
    /// # Errors
    ///
    /// Propagates bind failures; per-connection errors are contained.
    #[cfg(unix)]
    pub fn serve_unix(self: &Arc<Server>, path: &Path) -> std::io::Result<()> {
        use std::os::unix::net::UnixListener;
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let workers = self.start_workers();
        let mut conns = Vec::new();
        while !self.shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    // An idle client must not pin its connection thread
                    // past shutdown: the read timeout bounds how long a
                    // blocked read can outlive the drain.
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
                    let server = Arc::clone(self);
                    conns.push(std::thread::spawn(move || {
                        let mut reader = match stream.try_clone() {
                            Ok(r) => r,
                            Err(_) => return,
                        };
                        let mut writer = stream;
                        server.serve_connection(&mut reader, &mut writer);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        for c in conns {
            let _ = c.join();
        }
        for w in workers {
            let _ = w.join();
        }
        let _ = std::fs::remove_file(path);
        Ok(())
    }

    /// Serves exactly one connection over any byte stream (`--stdio`
    /// mode and in-process tests), spawning and joining the worker pool
    /// around it.
    pub fn serve_stream(self: &Arc<Server>, r: &mut impl Read, w: &mut impl Write) {
        let workers = self.start_workers();
        self.serve_connection(r, w);
        // One-shot service: when the single client is done, stop.
        self.stop();
        for t in workers {
            let _ = t.join();
        }
    }

    /// Whether drain (or stop) has completed.
    pub fn is_shut_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Stops workers and accept loops without waiting for queued work
    /// (used after a connection-driven drain, and by tests).
    pub fn stop(&self) {
        let mut q = self.queue.lock().unwrap();
        q.stopped = true;
        drop(q);
        self.shutdown.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }

    /// The per-connection read-dispatch-reply loop. Protocol errors are
    /// answered (typed) when the stream still has integrity, and close
    /// the connection when it does not; they never take the daemon
    /// down.
    fn serve_connection(self: &Arc<Server>, r: &mut impl Read, w: &mut impl Write) {
        loop {
            let payload = match read_frame_or_eof(r) {
                Ok(None) => return, // clean disconnect
                Ok(Some(p)) => p,
                Err(ProtocolError::IdleTimeout) => {
                    // Idle connection: keep waiting unless the daemon is
                    // going away under us.
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    continue;
                }
                Err(err) => {
                    self.count("spld.protocol_errors");
                    // A lost stream offset (oversized/truncated) cannot
                    // be answered reliably; try once, then close.
                    let _ = self.reply_protocol_error(w, &err);
                    return;
                }
            };
            let request = match parse_request(&payload) {
                Ok(req) => req,
                Err(err) => {
                    self.count("spld.protocol_errors");
                    if self.reply_protocol_error(w, &err).is_err() || !err.recoverable() {
                        return;
                    }
                    continue;
                }
            };
            let (response, drain_after) = self.dispatch(request);
            if write_frame(w, &encode_response(&response)).is_err() {
                // Mid-flight disconnect: the work is already done; drop
                // the reply and the connection.
                self.count("spld.disconnects");
                return;
            }
            if drain_after {
                self.stop();
                return;
            }
        }
    }

    fn reply_protocol_error(
        &self,
        w: &mut impl Write,
        err: &ProtocolError,
    ) -> Result<(), ProtocolError> {
        write_frame(
            w,
            &encode_response(&Response::Error {
                class: b'p',
                message: err.to_string(),
            }),
        )
    }

    /// Routes one parsed request. The bool asks the connection loop to
    /// finish the daemon's shutdown after the reply is written (drain).
    fn dispatch(self: &Arc<Server>, request: Request) -> (Response, bool) {
        match request {
            Request::Health => (
                Response::Text(format!(
                    "ok uptime_ms={} plans={} queue_depth={}",
                    self.started.elapsed().as_millis(),
                    self.store.plan_count(),
                    self.queue.lock().unwrap().jobs.len(),
                )),
                false,
            ),
            Request::Stats => (Response::Text(self.stats_text()), false),
            Request::Drain => {
                self.drain();
                (Response::Text("drained".into()), true)
            }
            Request::ReloadWisdom => {
                self.count("spld.wisdom.reloads");
                match load_wisdom_sources(&self.config, &self.store) {
                    Ok(sizes) => (
                        Response::Text(format!("wisdom reloaded sizes={sizes}")),
                        false,
                    ),
                    Err(err) => (
                        Response::Error {
                            class: err.class(),
                            message: err.to_string(),
                        },
                        false,
                    ),
                }
            }
            Request::Transform {
                n,
                data,
                deadline_ms,
                ..
            } => (self.admit(n, data, deadline_ms), false),
        }
    }

    /// Admission control: deadline bookkeeping, drain refusal, bounded
    /// queue with explicit shedding — then block on the reply channel.
    fn admit(&self, n: usize, data: Vec<f64>, deadline_ms: Option<u32>) -> Response {
        self.count("spld.requests");
        if data.len() != 2 * n {
            return Response::Error {
                class: b'p',
                message: format!("{} samples for size {n}", data.len()),
            };
        }
        let admitted = Instant::now();
        let deadline = deadline_ms.map(|ms| admitted + Duration::from_millis(u64::from(ms)));
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.queue.lock().unwrap();
            if q.draining || q.stopped {
                return Response::Draining;
            }
            if q.jobs.len() >= self.config.queue_cap {
                self.count("spld.shed");
                return Response::Overloaded;
            }
            q.jobs.push_back(Job {
                n,
                data,
                deadline,
                admitted,
                reply: tx,
            });
            let depth = q.jobs.len();
            drop(q);
            self.tel
                .lock()
                .unwrap()
                .set_metric("spld.queue.peak_depth", depth as f64);
            self.available.notify_one();
        }
        // The worker owns the job now; it always sends exactly one
        // reply (even for cancelled deadlines), so a disconnected
        // channel is a daemon bug surfaced as an internal error.
        match rx.recv() {
            Ok(resp) => resp,
            Err(_) => Response::Error {
                class: b'i',
                message: "worker dropped the reply channel".into(),
            },
        }
    }

    /// The drain handshake: stop admissions, wake everyone, wait for
    /// the queue and in-flight work to empty.
    fn drain(&self) {
        let mut q = self.queue.lock().unwrap();
        q.draining = true;
        self.available.notify_all();
        while !q.jobs.is_empty() || self.in_flight.load(Ordering::SeqCst) > 0 {
            let (guard, _) = self
                .idle
                .wait_timeout(q, Duration::from_millis(50))
                .unwrap();
            q = guard;
        }
        self.count("spld.drains");
    }

    fn worker_loop(self: &Arc<Server>) {
        loop {
            let batch = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if let Some(first) = q.jobs.pop_front() {
                        // Counted while the queue lock is held, so drain
                        // never observes "queue empty, nothing in
                        // flight" between a pop and its execution.
                        self.in_flight.fetch_add(1, Ordering::SeqCst);
                        break self.gather_batch(q, first);
                    }
                    if q.stopped || (q.draining && self.in_flight.load(Ordering::SeqCst) == 0) {
                        self.idle.notify_all();
                        return;
                    }
                    let (guard, _) = self
                        .available
                        .wait_timeout(q, Duration::from_millis(100))
                        .unwrap();
                    q = guard;
                }
            };
            let size = batch.len();
            self.execute_batch(batch);
            self.in_flight.fetch_sub(size, Ordering::SeqCst);
            self.idle.notify_all();
        }
    }

    /// Greedy same-size batch gathering: everything already queued for
    /// the first job's size (up to `batch_max`), plus — when a batch
    /// window is configured — a short wait for more company.
    fn gather_batch(&self, mut q: std::sync::MutexGuard<'_, QueueState>, first: Job) -> Vec<Job> {
        let n = first.n;
        let mut batch = vec![first];
        loop {
            while batch.len() < self.config.batch_max {
                if let Some(pos) = q.jobs.iter().position(|j| j.n == n) {
                    let job = q.jobs.remove(pos).expect("position is in range");
                    self.in_flight.fetch_add(1, Ordering::SeqCst);
                    batch.push(job);
                } else {
                    break;
                }
            }
            if batch.len() >= self.config.batch_max
                || self.config.batch_window.is_zero()
                || q.draining
                || q.stopped
            {
                return batch;
            }
            // Hold the single job briefly: under concurrent load the
            // window converts back-to-back arrivals into real batches.
            let deadline_ok = batch.iter().all(|j| {
                j.deadline
                    .is_none_or(|d| Instant::now() + self.config.batch_window < d)
            });
            if batch.len() > 1 || !deadline_ok {
                return batch;
            }
            let (guard, timeout) = self
                .available
                .wait_timeout(q, self.config.batch_window)
                .unwrap();
            q = guard;
            if let Some(pos) = q.jobs.iter().position(|j| j.n == n) {
                let job = q.jobs.remove(pos).expect("position is in range");
                self.in_flight.fetch_add(1, Ordering::SeqCst);
                batch.push(job);
            }
            if timeout.timed_out() {
                return batch;
            }
        }
    }

    /// Executes one gathered batch end to end and replies per job.
    fn execute_batch(self: &Arc<Server>, batch: Vec<Job>) {
        // Cancellation: jobs whose deadline passed while queued are
        // answered (never executed), and drop out of the batch.
        let now = Instant::now();
        let (expired, live): (Vec<Job>, Vec<Job>) = batch
            .into_iter()
            .partition(|j| j.deadline.is_some_and(|d| d <= now));
        for job in expired {
            self.count("spld.deadline.missed");
            let _ = job.reply.send(Response::DeadlineExceeded);
        }
        if live.is_empty() {
            return;
        }
        if let Some(chaos) = &self.chaos {
            if let Some(delay) = chaos.latency() {
                self.count("spld.chaos.latency_injected");
                std::thread::sleep(delay);
            }
        }
        let n = live[0].n;
        let plan = match self.store.entry(n) {
            Ok(plan) => plan,
            Err(err) => {
                for job in live {
                    let _ = job.reply.send(Response::Error {
                        class: err.class(),
                        message: err.to_string(),
                    });
                }
                return;
            }
        };
        let m = live.len();
        self.count("spld.batch.dispatches");
        self.tel
            .lock()
            .unwrap()
            .add("spld.batch.requests", m as u64);
        if m > 1 {
            self.count("spld.batch.multi");
            let mut xs = Vec::with_capacity(m * plan.vm().n_in);
            for job in &live {
                xs.extend_from_slice(&job.data);
            }
            if let Some(ys) = self.store.run_batched(&plan, m, &xs) {
                self.count("spld.tier.batched");
                let n_out = plan.vm().n_out;
                for (seg, job) in live.iter().enumerate() {
                    self.finish(
                        job,
                        Response::Transformed {
                            tier: Tier::BatchedVm,
                            data: ys[seg * n_out..(seg + 1) * n_out].to_vec(),
                        },
                    );
                }
                return;
            }
            // Batched program unavailable (self-check failed): degrade
            // to per-request execution — correctness over speed.
            self.count("spld.batch.fallback_singles");
        }
        for job in &live {
            let response = match self.store.run_single(&plan, &job.data, self.chaos.as_ref()) {
                Ok((data, tier)) => {
                    if tier == Tier::Vm {
                        self.count("spld.tier.vm");
                    }
                    Response::Transformed { tier, data }
                }
                Err(err) => Response::Error {
                    class: err.class(),
                    message: err.to_string(),
                },
            };
            self.finish(job, response);
        }
    }

    /// Final deadline check plus latency accounting, then the reply.
    fn finish(&self, job: &Job, response: Response) {
        let elapsed = job.admitted.elapsed();
        let response = match job.deadline {
            Some(d) if Instant::now() > d => {
                self.count("spld.deadline.missed");
                Response::DeadlineExceeded
            }
            _ => response,
        };
        if matches!(response, Response::Transformed { .. }) {
            self.count("spld.replies.ok");
            let mut ring = self.latencies.lock().unwrap();
            if ring.len() == LATENCY_RING {
                ring.pop_front();
            }
            ring.push_back(elapsed.as_micros() as u64);
        }
        let _ = job.reply.send(response);
    }

    /// The `stats` verb body: merged daemon + plan-store + kernel-cache
    /// telemetry rendered as the standard `--stats` table (script-
    /// friendly counter lines).
    pub fn stats_text(&self) -> String {
        let mut tel = self.tel.lock().unwrap();
        tel.merge(&self.store.drain_telemetry());
        let ring = self.latencies.lock().unwrap();
        if !ring.is_empty() {
            let mut sorted: Vec<u64> = ring.iter().copied().collect();
            sorted.sort_unstable();
            let pick = |p: f64| sorted[((sorted.len() - 1) as f64 * p) as usize];
            tel.set_metric("spld.latency.p50_us", pick(0.50) as f64);
            tel.set_metric("spld.latency.p99_us", pick(0.99) as f64);
        }
        render_stats(&tel)
    }

    fn count(&self, key: &str) {
        self.tel.lock().unwrap().add(key, 1);
    }
}

/// (Re-)reads every configured wisdom source into the plan store's
/// tree table: the flat wisdom file first, then the wisdom DB (whose
/// trusted best plans are exported in the same flat format). Returns
/// how many sizes were loaded across both. Only plans not yet
/// instantiated pick up new trees — already-warm sizes keep serving
/// their current plan.
fn load_wisdom_sources(config: &ServerConfig, store: &PlanStore) -> Result<usize, ServeError> {
    let mut sizes = 0;
    if let Some(path) = &config.wisdom {
        let text = std::fs::read_to_string(path).map_err(|e| {
            ServeError::Unsupported(format!("reading wisdom {}: {e}", path.display()))
        })?;
        sizes += store.load_wisdom(&text)?;
    }
    if let Some(dir) = &config.wisdom_db {
        let db = spl_search::WisdomDb::open(dir)
            .map_err(|e| ServeError::Unsupported(format!("wisdom db {}: {e}", dir.display())))?;
        sizes += store.load_wisdom(&db.export_flat())?;
    }
    Ok(sizes)
}
