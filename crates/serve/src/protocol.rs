//! The `spld` wire protocol: length-prefixed binary frames.
//!
//! Every message — request or response — is one *frame*: a 4-byte
//! big-endian payload length followed by that many payload bytes. The
//! length must be between 1 and [`MAX_FRAME`]; anything else is a
//! protocol error and the connection is closed (an over-long length
//! cannot be resynchronized, because the stream offset is lost).
//!
//! Request payloads start with a verb byte:
//!
//! | verb | meaning | rest of payload |
//! |------|---------|-----------------|
//! | `T`  | transform | kind byte (`F` = complex DFT), `u64` LE size `n`, `u32` LE deadline in ms (0 = none), `2n` `f64` LE interleaved complex samples |
//! | `H`  | health  | empty |
//! | `S`  | stats   | empty |
//! | `D`  | drain   | empty |
//! | `W`  | reload wisdom | empty |
//!
//! Response payloads start with a status byte:
//!
//! | status | meaning | rest of payload |
//! |--------|---------|-----------------|
//! | `K` | OK | transform: tier byte (`n` native, `v` VM, `b` batched VM), then `2n` `f64` LE; control verbs: UTF-8 text |
//! | `O` | overloaded (admission queue full; retry later) | empty |
//! | `X` | deadline exceeded (request cancelled) | empty |
//! | `G` | draining (daemon shutting down; no new work) | empty |
//! | `E` | error | class byte (`p` protocol, `u` unsupported, `c` compile, `i` internal), then UTF-8 message |
//!
//! Numbers are little-endian (host-order on every supported target);
//! only the frame length is big-endian, following the usual
//! network-framing convention.

use std::io::{self, Read, Write};

/// Hard bound on one frame's payload (8 MiB ≈ a size-2¹⁹ complex
/// transform). Larger lengths are rejected before any allocation.
pub const MAX_FRAME: usize = 8 << 20;

/// Transform-kind byte for the complex DFT (the only kind today; the
/// byte exists so WHT or real DFT serving can be added without a frame
/// format change).
pub const KIND_DFT: u8 = b'F';

/// Which execution tier produced an OK transform reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// A natively compiled kernel.
    Native,
    /// The resolved VM program.
    Vm,
    /// A batched `I_m ⊗ A` VM dispatch covering several requests.
    BatchedVm,
}

impl Tier {
    /// The wire byte for this tier.
    pub fn to_byte(self) -> u8 {
        match self {
            Tier::Native => b'n',
            Tier::Vm => b'v',
            Tier::BatchedVm => b'b',
        }
    }

    /// Parses a wire tier byte.
    pub fn from_byte(b: u8) -> Option<Tier> {
        match b {
            b'n' => Some(Tier::Native),
            b'v' => Some(Tier::Vm),
            b'b' => Some(Tier::BatchedVm),
            _ => None,
        }
    }
}

/// Why a frame or payload was rejected. Every variant is a *typed*
/// error the daemon answers (where the stream allows) and logs — a
/// malformed client must never panic or wedge a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The stream ended mid-frame (client disconnected).
    Truncated,
    /// The length prefix was zero.
    EmptyFrame,
    /// The length prefix exceeded [`MAX_FRAME`].
    Oversized {
        /// The claimed payload length.
        claimed: u64,
    },
    /// The verb byte was not one of `T`/`H`/`S`/`D`/`W`.
    BadVerb(u8),
    /// The transform kind byte is unknown.
    BadKind(u8),
    /// The payload length disagrees with the header's sample count.
    LengthMismatch {
        /// Samples the header promised.
        expected: usize,
        /// Payload bytes actually present.
        got: usize,
    },
    /// A transform header was shorter than its fixed fields.
    ShortHeader,
    /// The requested size is zero or beyond the server's limit.
    BadSize(u64),
    /// No frame arrived within the stream's read timeout (between
    /// frames only — the stream is still well-delimited). Used by the
    /// daemon to poll its shutdown flag on idle connections.
    IdleTimeout,
    /// Reading or writing the stream failed.
    Io(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "stream ended mid-frame"),
            ProtocolError::EmptyFrame => write!(f, "zero-length frame"),
            ProtocolError::Oversized { claimed } => {
                write!(f, "frame length {claimed} exceeds max {MAX_FRAME}")
            }
            ProtocolError::BadVerb(b) => write!(f, "unknown verb byte 0x{b:02x}"),
            ProtocolError::BadKind(b) => write!(f, "unknown transform kind 0x{b:02x}"),
            ProtocolError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "payload length {got} does not match header ({expected} expected)"
                )
            }
            ProtocolError::ShortHeader => write!(f, "transform header truncated"),
            ProtocolError::BadSize(n) => write!(f, "unsupported transform size {n}"),
            ProtocolError::IdleTimeout => write!(f, "idle read timeout between frames"),
            ProtocolError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl ProtocolError {
    /// Whether the connection can keep going after this error. Length
    /// errors lose the stream offset, and I/O errors lose the stream;
    /// everything else (including an idle timeout, which fires only on
    /// a frame boundary) leaves the stream well-delimited, so the next
    /// frame can still be served.
    pub fn recoverable(&self) -> bool {
        !matches!(
            self,
            ProtocolError::Truncated
                | ProtocolError::EmptyFrame
                | ProtocolError::Oversized { .. }
                | ProtocolError::Io(_)
        )
    }
}

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Apply a transform to a sample vector.
    Transform {
        /// Transform kind byte ([`KIND_DFT`]).
        kind: u8,
        /// Transform size (number of complex points).
        n: usize,
        /// Per-request deadline in milliseconds from admission
        /// (`None` = no deadline).
        deadline_ms: Option<u32>,
        /// `2n` interleaved re/im samples.
        data: Vec<f64>,
    },
    /// Liveness probe.
    Health,
    /// Telemetry snapshot request.
    Stats,
    /// Graceful shutdown: finish queued work, then stop.
    Drain,
    /// Re-read the wisdom sources (file and/or wisdom DB) so newly
    /// learned sizes become servable without a restart.
    ReloadWisdom,
}

/// One daemon reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A completed transform and the tier that produced it.
    Transformed {
        /// Execution tier of the reply.
        tier: Tier,
        /// `2n` interleaved re/im output samples.
        data: Vec<f64>,
    },
    /// Control-verb success (health, stats, drain) with a text body.
    Text(String),
    /// Admission queue full; the request was shed, not dropped.
    Overloaded,
    /// The deadline passed before the result could be produced.
    DeadlineExceeded,
    /// The daemon is draining and accepts no new transforms.
    Draining,
    /// The request failed; class byte per the module table.
    Error {
        /// Error class (`p`/`u`/`c`/`i`).
        class: u8,
        /// Human-readable detail.
        message: String,
    },
}

/// Reads one length-prefixed frame payload.
///
/// # Errors
///
/// [`ProtocolError::Truncated`] on a clean EOF before or inside the
/// frame, [`EmptyFrame`](ProtocolError::EmptyFrame) /
/// [`Oversized`](ProtocolError::Oversized) on a bad length, and
/// [`Io`](ProtocolError::Io) on transport failure.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ProtocolError> {
    let mut len = [0u8; 4];
    read_exact_or(r, &mut len)?;
    let len = u32::from_be_bytes(len) as usize;
    if len == 0 {
        return Err(ProtocolError::EmptyFrame);
    }
    if len > MAX_FRAME {
        return Err(ProtocolError::Oversized {
            claimed: len as u64,
        });
    }
    let mut payload = vec![0u8; len];
    read_exact_or(r, &mut payload)?;
    Ok(payload)
}

/// Like [`read_frame`], but a clean EOF *before any byte of the length
/// prefix* returns `Ok(None)` — the normal way a client ends a
/// connection — and a read timeout on that first byte returns
/// [`ProtocolError::IdleTimeout`] so a daemon can poll its shutdown
/// flag without abandoning an idle client.
///
/// # Errors
///
/// Same as [`read_frame`] for every other failure; a timeout *inside*
/// a frame is still an [`Io`](ProtocolError::Io) error (the offset is
/// lost).
pub fn read_frame_or_eof(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < len.len() {
        match r.read(&mut len[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(ProtocolError::Truncated),
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if filled == 0
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
            {
                return Err(ProtocolError::IdleTimeout)
            }
            Err(e) => return Err(io_error(e)),
        }
    }
    let len = u32::from_be_bytes(len) as usize;
    if len == 0 {
        return Err(ProtocolError::EmptyFrame);
    }
    if len > MAX_FRAME {
        return Err(ProtocolError::Oversized {
            claimed: len as u64,
        });
    }
    let mut payload = vec![0u8; len];
    read_exact_or(r, &mut payload)?;
    Ok(Some(payload))
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// [`ProtocolError::Io`] on transport failure; payloads over
/// [`MAX_FRAME`] are a caller bug reported as `Oversized`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtocolError> {
    if payload.is_empty() {
        return Err(ProtocolError::EmptyFrame);
    }
    if payload.len() > MAX_FRAME {
        return Err(ProtocolError::Oversized {
            claimed: payload.len() as u64,
        });
    }
    let len = (payload.len() as u32).to_be_bytes();
    w.write_all(&len).map_err(io_error)?;
    w.write_all(payload).map_err(io_error)?;
    w.flush().map_err(io_error)
}

fn read_exact_or(r: &mut impl Read, buf: &mut [u8]) -> Result<(), ProtocolError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtocolError::Truncated
        } else {
            io_error(e)
        }
    })
}

fn io_error(e: io::Error) -> ProtocolError {
    ProtocolError::Io(e.to_string())
}

/// Parses a request payload (the bytes of one frame).
///
/// # Errors
///
/// A typed [`ProtocolError`] for any malformation; parsing never
/// panics, whatever the bytes.
pub fn parse_request(payload: &[u8]) -> Result<Request, ProtocolError> {
    let (&verb, rest) = payload.split_first().ok_or(ProtocolError::EmptyFrame)?;
    match verb {
        b'H' => Ok(Request::Health),
        b'S' => Ok(Request::Stats),
        b'D' => Ok(Request::Drain),
        b'W' => Ok(Request::ReloadWisdom),
        b'T' => parse_transform(rest),
        other => Err(ProtocolError::BadVerb(other)),
    }
}

fn parse_transform(rest: &[u8]) -> Result<Request, ProtocolError> {
    // kind(1) + n(8) + deadline(4)
    if rest.len() < 13 {
        return Err(ProtocolError::ShortHeader);
    }
    let kind = rest[0];
    if kind != KIND_DFT {
        return Err(ProtocolError::BadKind(kind));
    }
    let n = u64::from_le_bytes(rest[1..9].try_into().expect("8 bytes"));
    let deadline_ms = u32::from_le_bytes(rest[9..13].try_into().expect("4 bytes"));
    // 2n f64 samples must fit the remaining payload exactly. Guard the
    // multiplication: a hostile n must not overflow before the check.
    let samples = n
        .checked_mul(2)
        .filter(|&s| s <= (MAX_FRAME as u64) / 8)
        .ok_or(ProtocolError::BadSize(n))?;
    if n == 0 {
        return Err(ProtocolError::BadSize(0));
    }
    let body = &rest[13..];
    let expected = (samples as usize) * 8;
    if body.len() != expected {
        return Err(ProtocolError::LengthMismatch {
            expected: samples as usize,
            got: body.len(),
        });
    }
    let data = body
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    Ok(Request::Transform {
        kind,
        n: n as usize,
        deadline_ms: (deadline_ms != 0).then_some(deadline_ms),
        data,
    })
}

/// Encodes a request into a frame payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Health => vec![b'H'],
        Request::Stats => vec![b'S'],
        Request::Drain => vec![b'D'],
        Request::ReloadWisdom => vec![b'W'],
        Request::Transform {
            kind,
            n,
            deadline_ms,
            data,
        } => {
            let mut out = Vec::with_capacity(14 + data.len() * 8);
            out.push(b'T');
            out.push(*kind);
            out.extend_from_slice(&(*n as u64).to_le_bytes());
            out.extend_from_slice(&deadline_ms.unwrap_or(0).to_le_bytes());
            for v in data {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out
        }
    }
}

/// Encodes a response into a frame payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Transformed { tier, data } => {
            let mut out = Vec::with_capacity(2 + data.len() * 8);
            out.push(b'K');
            out.push(tier.to_byte());
            for v in data {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out
        }
        Response::Text(text) => {
            let mut out = Vec::with_capacity(2 + text.len());
            out.push(b'K');
            out.push(b't');
            out.extend_from_slice(text.as_bytes());
            out
        }
        Response::Overloaded => vec![b'O'],
        Response::DeadlineExceeded => vec![b'X'],
        Response::Draining => vec![b'G'],
        Response::Error { class, message } => {
            let mut out = Vec::with_capacity(2 + message.len());
            out.push(b'E');
            out.push(*class);
            out.extend_from_slice(message.as_bytes());
            out
        }
    }
}

/// Parses a response payload (client side).
///
/// # Errors
///
/// [`ProtocolError`] on any malformation.
pub fn parse_response(payload: &[u8]) -> Result<Response, ProtocolError> {
    let (&status, rest) = payload.split_first().ok_or(ProtocolError::EmptyFrame)?;
    match status {
        b'O' => Ok(Response::Overloaded),
        b'X' => Ok(Response::DeadlineExceeded),
        b'G' => Ok(Response::Draining),
        b'E' => {
            let (&class, msg) = rest.split_first().ok_or(ProtocolError::ShortHeader)?;
            Ok(Response::Error {
                class,
                message: String::from_utf8_lossy(msg).into_owned(),
            })
        }
        b'K' => {
            let (&tag, body) = rest.split_first().ok_or(ProtocolError::ShortHeader)?;
            if tag == b't' {
                return Ok(Response::Text(String::from_utf8_lossy(body).into_owned()));
            }
            let tier = Tier::from_byte(tag).ok_or(ProtocolError::BadKind(tag))?;
            if body.len() % 8 != 0 {
                return Err(ProtocolError::LengthMismatch {
                    expected: body.len() / 8 * 8,
                    got: body.len(),
                });
            }
            let data = body
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect();
            Ok(Response::Transformed { tier, data })
        }
        other => Err(ProtocolError::BadVerb(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request::Transform {
            kind: KIND_DFT,
            n: 4,
            deadline_ms: Some(250),
            data: (0..8).map(|i| i as f64 * 0.5).collect(),
        };
        assert_eq!(parse_request(&encode_request(&req)).unwrap(), req);
        for req in [
            Request::Health,
            Request::Stats,
            Request::Drain,
            Request::ReloadWisdom,
        ] {
            assert_eq!(parse_request(&encode_request(&req)).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrip() {
        let cases = [
            Response::Transformed {
                tier: Tier::Native,
                data: vec![1.0, -2.5],
            },
            Response::Transformed {
                tier: Tier::BatchedVm,
                data: vec![0.0; 8],
            },
            Response::Text("ok uptime_ms=12".into()),
            Response::Overloaded,
            Response::DeadlineExceeded,
            Response::Draining,
            Response::Error {
                class: b'p',
                message: "bad verb".into(),
            },
        ];
        for resp in cases {
            assert_eq!(parse_response(&encode_response(&resp)).unwrap(), resp);
        }
    }

    #[test]
    fn frame_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, &[0xff; 3]).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), vec![0xff; 3]);
        assert_eq!(read_frame_or_eof(&mut r).unwrap(), None);
    }

    #[test]
    fn zero_and_oversized_lengths_are_typed_errors() {
        let mut r: &[u8] = &[0, 0, 0, 0];
        assert_eq!(read_frame(&mut r), Err(ProtocolError::EmptyFrame));
        let mut r: &[u8] = &[0xff, 0xff, 0xff, 0xff];
        assert!(matches!(
            read_frame(&mut r),
            Err(ProtocolError::Oversized { .. })
        ));
    }

    #[test]
    fn truncated_frames_are_typed_errors() {
        // Length promises 100 bytes, stream has 3.
        let mut bytes = 100u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[1, 2, 3]);
        let mut r = bytes.as_slice();
        assert_eq!(read_frame(&mut r), Err(ProtocolError::Truncated));
        // EOF mid-length-prefix.
        let mut r: &[u8] = &[0, 1];
        assert_eq!(read_frame_or_eof(&mut r), Err(ProtocolError::Truncated));
    }

    #[test]
    fn garbage_payloads_never_panic() {
        // Deterministic pseudo-random corpus (SplitMix64).
        let mut state = 0x5eed_cafe_f00du64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for round in 0..500 {
            let len = (next() % 64) as usize + 1;
            let mut payload: Vec<u8> = (0..len).map(|_| (next() & 0xff) as u8).collect();
            if round % 3 == 0 {
                // Bias some frames toward almost-valid transforms.
                payload[0] = b'T';
                if len > 1 {
                    payload[1] = KIND_DFT;
                }
            }
            let _ = parse_request(&payload); // must not panic
            let _ = parse_response(&payload);
        }
    }

    #[test]
    fn hostile_sample_counts_do_not_overflow() {
        // n = u64::MAX: 2n overflows u64 if unchecked.
        let mut payload = vec![b'T', KIND_DFT];
        payload.extend_from_slice(&u64::MAX.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            parse_request(&payload),
            Err(ProtocolError::BadSize(_))
        ));
        // n = 0 is rejected, not a divide-by-zero later.
        let mut payload = vec![b'T', KIND_DFT];
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(parse_request(&payload), Err(ProtocolError::BadSize(0)));
    }

    #[test]
    fn recoverability_is_classified() {
        assert!(!ProtocolError::Truncated.recoverable());
        assert!(!ProtocolError::Oversized { claimed: 1 << 40 }.recoverable());
        assert!(!ProtocolError::Io("reset".into()).recoverable());
        assert!(ProtocolError::BadVerb(b'Z').recoverable());
        assert!(ProtocolError::BadKind(b'Q').recoverable());
        assert!(ProtocolError::BadSize(3).recoverable());
    }
}
