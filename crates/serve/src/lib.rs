#![warn(missing_docs)]

//! `spl-serve`: a fault-tolerant transform-serving daemon.
//!
//! The paper's end state is a library wrapper that answers `y = Mx`
//! from generated code; this crate grows that into `spld`, a resident
//! service that keeps wisdom, resolved [`spl_vm`] programs, and
//! natively compiled kernels hot across many concurrent clients — and
//! treats robustness as the design center rather than an afterthought.
//! A one-shot CLI can crash and be re-run; a daemon must survive slow
//! clients, poisoned kernels, `cc` outages, and `SIGKILL` without ever
//! serving a wrong answer.
//!
//! The pieces:
//!
//! * [`protocol`] — the length-prefixed binary frame format, request /
//!   response types, and typed [`protocol::ProtocolError`]s (malformed
//!   frames are answered or dropped, never panics).
//! * [`plans`] — the warm plan store: per-size VM programs, native
//!   kernels through the shared on-disk cache, batched `I_m ⊗ A`
//!   programs, the `native → VM → reject` degradation chain with
//!   quarantine, and the crash-safe plan journal that makes a
//!   `kill -9` restart come back warm.
//! * [`server`] — admission with a bounded queue and explicit
//!   `OVERLOADED` shedding, per-request deadlines with cancellation,
//!   same-size batching, `health`/`stats`/`drain` control verbs, and
//!   Unix-socket / stdio transports.
//! * [`chaos`] — seeded, deterministic fault injection (kernel faults,
//!   artificial latency) for the soak harness.
//! * [`client`] — the blocking client the CLI, tests, and soak use.
//!
//! Telemetry counters all live under `spld.*` (queue depth, sheds,
//! deadline misses, degradations, batch sizes, latency percentiles)
//! and are served over the `stats` verb in the standard `--stats`
//! table format, so scripts can grep them.

pub mod chaos;
pub mod client;
pub mod plans;
pub mod protocol;
pub mod server;

pub use chaos::{ChaosConfig, ChaosInjector};
pub use client::Client;
pub use plans::{PlanEntry, PlanStore, PlanStoreOptions, ServeError};
pub use protocol::{ProtocolError, Request, Response, Tier};
pub use server::{Server, ServerConfig};
