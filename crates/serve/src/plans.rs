//! The daemon's plan store: hot transforms and their degradation chain.
//!
//! A *plan* is everything the daemon keeps warm for one transform size:
//! the factorization tree (from wisdom or a default radix-2 split), the
//! resolved [`VmProgram`], a natively compiled kernel (through the
//! shared on-disk [`KernelCache`], so a restart reloads instead of
//! recompiling), and lazily, batched `I_m ⊗ A` programs for answering
//! `m` queued requests in one dispatch.
//!
//! # The degradation chain
//!
//! Every execution walks `native kernel → resolved VM → reject`,
//! reusing `spl_search::ResilientEvaluator`'s pattern: failures are
//! *classified and counted*, the request falls to the next tier, and a
//! kernel that faults is quarantined (and evicted from the shared
//! cache) so it is never tried again. The VM tier is the trusted
//! baseline — the resolved interpreter executes exactly the compiled
//! i-code — so the chain keeps one invariant the whole daemon is built
//! on: **every reply is bit-identical to the plan's VM output**. A
//! native kernel earns the fast path only by *promotion*: its first run
//! happens in a fork sandbox and must reproduce the VM output
//! bit-for-bit; a kernel whose rounding differs (e.g. FMA contraction)
//! is demoted to the VM tier rather than allowed to serve
//! almost-right answers, and a crash or mismatch quarantines it.
//! Batched programs pass the same gate (a segment-by-segment self-check
//! against the single-request program) before they may serve.
//!
//! # Crash safety
//!
//! Instantiated plans are recorded in a `plans.journal`
//! ([`spl_resilience::Journal`]) next to the kernel cache; a daemon
//! killed with `SIGKILL` replays the journal on restart and comes back
//! warm — the native kernels load from the disk cache without invoking
//! `cc`.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use spl_generator::fft::{ct_sequence, FftTree, Rule};
use spl_native::{BuildOptions, KernelCache, NativeKernel};
use spl_resilience::Journal;
use spl_search::{compile_tree, compile_tree_batched, compile_unit_for_tree, wisdom_from_string};
use spl_telemetry::Telemetry;
use spl_vm::{VmProgram, VmState};

use crate::chaos::ChaosInjector;
use crate::protocol::Tier;

/// Why the store could not serve a request. Maps onto the wire error
/// classes (`u`/`c`/`i`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The transform size is not servable (not a power of two and not
    /// in wisdom, or beyond the configured limit).
    Unsupported(String),
    /// Compiling the plan failed.
    Compile(String),
    /// An internal invariant broke (always a bug, never client input).
    Internal(String),
}

impl ServeError {
    /// The wire error-class byte for this error.
    pub fn class(&self) -> u8 {
        match self {
            ServeError::Unsupported(_) => b'u',
            ServeError::Compile(_) => b'c',
            ServeError::Internal(_) => b'i',
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Unsupported(m) => write!(f, "unsupported: {m}"),
            ServeError::Compile(m) => write!(f, "compile: {m}"),
            ServeError::Internal(m) => write!(f, "internal: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A [`NativeKernel`] shared across worker threads.
///
/// SAFETY rationale: the kernel entry point is pure straight-line code
/// over its argument buffers (generated C with no globals, no
/// allocation, no locks), the dlopen handle is only used again at drop,
/// and drop runs once when the last `Arc` goes away. Concurrent `run`
/// calls from several workers are therefore safe.
struct SharedKernel(NativeKernel);

unsafe impl Send for SharedKernel {}
unsafe impl Sync for SharedKernel {}

/// Where one plan's native fast path currently stands.
enum NativeTier {
    /// No kernel (compile failed, or native serving disabled).
    Missing,
    /// Compiled but not yet promoted: the first run must reproduce the
    /// VM output bit-for-bit, in a sandbox.
    Untested(Arc<SharedKernel>),
    /// Promoted: serves in-process.
    Trusted(Arc<SharedKernel>),
    /// Rounding differs from the VM (e.g. FMA contraction): correct to
    /// tolerance but not bit-identical, so the VM serves instead.
    Demoted,
    /// Crashed or produced wrong output: never tried again.
    Quarantined,
}

/// One warm transform size.
pub struct PlanEntry {
    /// Transform size (complex points).
    pub n: usize,
    /// The factorization this plan executes.
    pub tree: FftTree,
    vm: Arc<VmProgram>,
    native: Mutex<NativeTier>,
    /// Cache key of the native kernel, for quarantine eviction.
    cache_key: Option<String>,
}

impl PlanEntry {
    /// The resolved single-request program (the trusted tier).
    pub fn vm(&self) -> &Arc<VmProgram> {
        &self.vm
    }

    /// Runs the trusted VM tier: always available once the plan exists.
    pub fn run_vm(&self, x: &[f64], y: &mut [f64]) {
        let mut st = VmState::new(&self.vm);
        self.vm.run(x, y, &mut st);
    }
}

/// A batched `I_m ⊗ A` program, or the tombstone of one that failed its
/// self-check.
enum BatchState {
    Ready(Arc<VmProgram>),
    Dead,
}

/// Configuration for [`PlanStore::new`].
#[derive(Debug, Clone)]
pub struct PlanStoreOptions {
    /// Serving state directory (kernel cache + plan journal); `None`
    /// disables persistence (cold every start).
    pub state_dir: Option<PathBuf>,
    /// `-B` unrolling threshold handed to the compiler.
    pub unroll_threshold: usize,
    /// Largest servable transform size.
    pub max_size: usize,
    /// Whether to compile native kernels at all (tests without a
    /// working `cc` can turn this off).
    pub native: bool,
    /// Build options for `cc` runs.
    pub build: BuildOptions,
    /// Wall-clock budget for the sandboxed promotion run.
    pub sandbox_timeout: Duration,
}

impl Default for PlanStoreOptions {
    fn default() -> Self {
        PlanStoreOptions {
            state_dir: None,
            unroll_threshold: 64,
            max_size: 1 << 16,
            native: true,
            build: BuildOptions::default(),
            sandbox_timeout: Duration::from_secs(10),
        }
    }
}

/// The daemon's shared plan store. All methods take `&self`; internal
/// state is mutex-guarded, and the expensive steps (compiles) happen
/// outside any lock held by executions.
pub struct PlanStore {
    opts: PlanStoreOptions,
    /// Preferred factorizations by size, from wisdom.
    trees: Mutex<HashMap<usize, FftTree>>,
    plans: Mutex<HashMap<usize, Arc<PlanEntry>>>,
    batched: Mutex<HashMap<(usize, usize), BatchState>>,
    kernels: Option<Arc<KernelCache>>,
    journal: Mutex<Option<Journal>>,
    tel: Mutex<Telemetry>,
}

impl PlanStore {
    /// Opens the store, its kernel cache, and its plan journal, and
    /// replays the journal so every previously served size is
    /// instantiated (warm) before the first request.
    ///
    /// # Errors
    ///
    /// Fails on state-directory I/O errors; a corrupt journal *tail* is
    /// dropped (tolerant load), not fatal.
    pub fn new(opts: PlanStoreOptions) -> Result<PlanStore, ServeError> {
        let mut kernels = None;
        let mut journal = None;
        let mut preload: Vec<(usize, FftTree)> = Vec::new();
        let mut tel = Telemetry::new();
        if let Some(dir) = &opts.state_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| ServeError::Internal(format!("creating {}: {e}", dir.display())))?;
            kernels = Some(Arc::new(
                KernelCache::with_dir(&dir.join("kernels"))
                    .map_err(|e| ServeError::Internal(format!("kernel cache: {e}")))?,
            ));
            let (j, loaded) = Journal::open(&dir.join("plans.journal"))
                .map_err(|e| ServeError::Internal(format!("plan journal: {e}")))?;
            if loaded.dropped > 0 {
                tel.add("spld.plan.journal_records_dropped", loaded.dropped as u64);
            }
            for rec in &loaded.records {
                if let Some((n, tree)) = parse_plan_record(rec) {
                    preload.push((n, tree));
                }
            }
            journal = Some(j);
        }
        let store = PlanStore {
            opts,
            trees: Mutex::new(HashMap::new()),
            plans: Mutex::new(HashMap::new()),
            batched: Mutex::new(HashMap::new()),
            kernels,
            journal: Mutex::new(journal),
            tel: Mutex::new(tel),
        };
        for (n, tree) in preload {
            store.trees.lock().unwrap().entry(n).or_insert(tree);
            // Instantiate (compiles the VM program; loads the native
            // kernel from the disk cache — no `cc` on a warm restart).
            // A plan that no longer compiles is dropped, not fatal.
            if store.entry(n).is_ok() {
                store.tel.lock().unwrap().add("spld.plan.preloaded", 1);
            }
        }
        Ok(store)
    }

    /// Loads wisdom text (`spl_search::wisdom_to_string` format):
    /// subsequent plans for those sizes use the searched factorization
    /// instead of the default radix-2 split. Returns how many sizes
    /// were loaded.
    ///
    /// # Errors
    ///
    /// Propagates wisdom parse failures as [`ServeError::Unsupported`].
    pub fn load_wisdom(&self, text: &str) -> Result<usize, ServeError> {
        let results = wisdom_from_string(text)
            .map_err(|e| ServeError::Unsupported(format!("wisdom: {e}")))?;
        let mut trees = self.trees.lock().unwrap();
        let mut loaded = 0;
        for r in results {
            trees.insert(r.tree.size(), r.tree);
            loaded += 1;
        }
        self.tel.lock().unwrap().add("spld.wisdom.sizes", loaded);
        Ok(loaded as usize)
    }

    /// The warm plan for size `n`, instantiating (and journaling) it on
    /// first use.
    ///
    /// # Errors
    ///
    /// [`ServeError::Unsupported`] for unservable sizes,
    /// [`ServeError::Compile`] when compilation fails.
    pub fn entry(&self, n: usize) -> Result<Arc<PlanEntry>, ServeError> {
        if let Some(plan) = self.plans.lock().unwrap().get(&n) {
            return Ok(Arc::clone(plan));
        }
        let tree = self.tree_for(n)?;
        // Compile outside the plans lock: concurrent first requests for
        // the same size may both compile; the second insert wins the
        // race harmlessly (content-addressed kernel cache absorbs the
        // duplicate).
        let vm = compile_tree(&tree, self.opts.unroll_threshold)
            .map_err(|e| ServeError::Compile(e.to_string()))?;
        let (native, cache_key) = self.compile_native(&tree);
        let plan = Arc::new(PlanEntry {
            n,
            tree,
            vm: Arc::new(vm),
            native: Mutex::new(native),
            cache_key,
        });
        let mut plans = self.plans.lock().unwrap();
        let plan = Arc::clone(plans.entry(n).or_insert(plan));
        drop(plans);
        self.journal_plan(&plan);
        Ok(plan)
    }

    /// Executes one request through the degradation chain. The reply is
    /// bit-identical to the plan's VM output whichever tier serves it.
    ///
    /// # Errors
    ///
    /// Only when even the VM tier cannot run (an internal bug).
    pub fn run_single(
        &self,
        plan: &PlanEntry,
        x: &[f64],
        chaos: Option<&ChaosInjector>,
    ) -> Result<(Vec<f64>, Tier), ServeError> {
        if x.len() != plan.vm.n_in {
            return Err(ServeError::Internal(format!(
                "input length {} for plan n_in {}",
                x.len(),
                plan.vm.n_in
            )));
        }
        let mut y = vec![0.0; plan.vm.n_out];
        match self.try_native(plan, x, &mut y, chaos) {
            Some(()) => Ok((y, Tier::Native)),
            None => {
                plan.run_vm(x, &mut y);
                Ok((y, Tier::Vm))
            }
        }
    }

    /// Executes `m` same-size requests (`xs` = inputs back to back) as
    /// one `I_m ⊗ A` dispatch. Returns `None` when no batched program
    /// can serve (self-check failed or compile failed) — the caller
    /// falls back to per-request execution.
    pub fn run_batched(&self, plan: &PlanEntry, m: usize, xs: &[f64]) -> Option<Vec<f64>> {
        if m < 2 || xs.len() != m * plan.vm.n_in {
            return None;
        }
        let program = self.batched_program(plan, m)?;
        let mut ys = vec![0.0; m * plan.vm.n_out];
        let mut st = VmState::new(&program);
        program.run(xs, &mut ys, &mut st);
        Some(ys)
    }

    /// Takes the store's accumulated telemetry (its own counters merged
    /// with the kernel cache's), leaving both empty.
    pub fn drain_telemetry(&self) -> Telemetry {
        let mut tel = std::mem::take(&mut *self.tel.lock().unwrap());
        if let Some(cache) = &self.kernels {
            tel.merge(&cache.drain_telemetry());
        }
        tel
    }

    /// Number of instantiated plans.
    pub fn plan_count(&self) -> usize {
        self.plans.lock().unwrap().len()
    }

    fn count(&self, key: &str) {
        self.tel.lock().unwrap().add(key, 1);
    }

    /// The factorization to serve size `n` with: wisdom first, then a
    /// default radix-2 rightmost split for powers of two.
    fn tree_for(&self, n: usize) -> Result<FftTree, ServeError> {
        if n < 2 || n > self.opts.max_size {
            return Err(ServeError::Unsupported(format!(
                "size {n} out of range 2..={}",
                self.opts.max_size
            )));
        }
        if let Some(tree) = self.trees.lock().unwrap().get(&n) {
            return Ok(tree.clone());
        }
        if !n.is_power_of_two() {
            return Err(ServeError::Unsupported(format!(
                "size {n} is not a power of two and no wisdom covers it"
            )));
        }
        let twos = vec![2usize; n.trailing_zeros() as usize];
        Ok(ct_sequence(&twos, Rule::CooleyTukey))
    }

    /// Compiles (or cache-loads) the native kernel for a fresh plan.
    /// Failure is a degradation, not an error: the plan serves on the
    /// VM tier.
    fn compile_native(&self, tree: &FftTree) -> (NativeTier, Option<String>) {
        if !self.opts.native {
            return (NativeTier::Missing, None);
        }
        let unit = match compile_unit_for_tree(tree, self.opts.unroll_threshold) {
            Ok(unit) => unit,
            Err(_) => {
                self.count("spld.native.compile_failures");
                return (NativeTier::Missing, None);
            }
        };
        let result = match &self.kernels {
            Some(cache) => {
                NativeKernel::compile_cached(&unit, &self.opts.build, cache).map(|(k, _)| k)
            }
            None => NativeKernel::compile_with(&unit, &self.opts.build),
        };
        let key = NativeKernel::cache_key(&unit, &self.opts.build).ok();
        match result {
            Ok(kernel) => (NativeTier::Untested(Arc::new(SharedKernel(kernel))), key),
            Err(_) => {
                self.count("spld.native.compile_failures");
                (NativeTier::Missing, None)
            }
        }
    }

    /// The native leg of the chain: `Some(())` when `y` was filled by a
    /// trusted kernel, `None` to fall through to the VM tier.
    fn try_native(
        &self,
        plan: &PlanEntry,
        x: &[f64],
        y: &mut [f64],
        chaos: Option<&ChaosInjector>,
    ) -> Option<()> {
        // Decide under the tier lock, run outside it where possible.
        let kernel = {
            let tier = plan.native.lock().unwrap();
            match &*tier {
                NativeTier::Trusted(k) => Some((Arc::clone(k), true)),
                NativeTier::Untested(k) => Some((Arc::clone(k), false)),
                _ => None,
            }
        };
        let (kernel, trusted) = kernel?;
        if let Some(injector) = chaos {
            if injector.kernel_fault() {
                // Simulated crash, reported before the kernel runs: the
                // request is recomputed on the VM tier from scratch.
                self.count("spld.chaos.kernel_faults");
                self.quarantine(plan, "injected kernel fault");
                return None;
            }
        }
        if trusted {
            kernel.0.run(x, y);
            self.count("spld.tier.native");
            return Some(());
        }
        self.promote_and_run(plan, &kernel, x, y)
    }

    /// The promotion gate: first native run, sandboxed, compared
    /// bit-for-bit against the VM tier on the same input.
    fn promote_and_run(
        &self,
        plan: &PlanEntry,
        kernel: &Arc<SharedKernel>,
        x: &[f64],
        y: &mut [f64],
    ) -> Option<()> {
        let mut expected = vec![0.0; plan.vm.n_out];
        plan.run_vm(x, &mut expected);
        match kernel.0.run_sandboxed(x, y, self.opts.sandbox_timeout) {
            Ok(()) if y == expected.as_slice() => {
                let mut tier = plan.native.lock().unwrap();
                if matches!(&*tier, NativeTier::Untested(_) | NativeTier::Trusted(_)) {
                    *tier = NativeTier::Trusted(Arc::clone(kernel));
                }
                drop(tier);
                self.count("spld.native.promoted");
                self.count("spld.tier.native");
                Some(())
            }
            Ok(()) if within_tolerance(y, &expected) => {
                // Correct but not bit-identical (rounding differences,
                // e.g. FMA contraction): the VM must keep serving so
                // replies stay reproducible.
                *plan.native.lock().unwrap() = NativeTier::Demoted;
                self.count("spld.native.rounding_demoted");
                None
            }
            Ok(()) => {
                self.quarantine(plan, "output mismatch on promotion run");
                None
            }
            Err(_) => {
                self.quarantine(plan, "crash/timeout on promotion run");
                None
            }
        }
    }

    /// Quarantines a plan's native kernel: tier poisoned, counter
    /// bumped, and the shared cache entry evicted so no restart (or
    /// sibling process) reloads the bad object.
    fn quarantine(&self, plan: &PlanEntry, _reason: &str) {
        *plan.native.lock().unwrap() = NativeTier::Quarantined;
        self.count("spld.quarantined");
        self.count("spld.degradations");
        if let (Some(cache), Some(key)) = (&self.kernels, &plan.cache_key) {
            cache.evict(key);
        }
    }

    /// The batched program for `(n, m)`, built and self-checked on
    /// first use.
    fn batched_program(&self, plan: &PlanEntry, m: usize) -> Option<Arc<VmProgram>> {
        if let Some(state) = self.batched.lock().unwrap().get(&(plan.n, m)) {
            return match state {
                BatchState::Ready(p) => Some(Arc::clone(p)),
                BatchState::Dead => None,
            };
        }
        let built = compile_tree_batched(&plan.tree, m, self.opts.unroll_threshold)
            .ok()
            .map(Arc::new)
            .filter(|p| self.batch_self_check(plan, m, p));
        let state = match &built {
            Some(p) => BatchState::Ready(Arc::clone(p)),
            None => {
                self.count("spld.batch.selfcheck_failed");
                BatchState::Dead
            }
        };
        // First builder wins; a concurrent duplicate is discarded.
        self.batched
            .lock()
            .unwrap()
            .entry((plan.n, m))
            .or_insert(state);
        built
    }

    /// One-time proof that the batched program is exactly `m`
    /// independent applications of the single program: a deterministic
    /// probe batch, compared segment by segment, bit for bit.
    fn batch_self_check(&self, plan: &PlanEntry, m: usize, batched: &VmProgram) -> bool {
        if batched.n_in != m * plan.vm.n_in || batched.n_out != m * plan.vm.n_out {
            return false;
        }
        let xs: Vec<f64> = (0..batched.n_in)
            .map(|i| (i as f64 * 0.7311).sin())
            .collect();
        let mut got = vec![0.0; batched.n_out];
        let mut st = VmState::new(batched);
        batched.run(&xs, &mut got, &mut st);
        let mut want = vec![0.0; plan.vm.n_out];
        for seg in 0..m {
            plan.run_vm(&xs[seg * plan.vm.n_in..(seg + 1) * plan.vm.n_in], &mut want);
            if got[seg * plan.vm.n_out..(seg + 1) * plan.vm.n_out] != want[..] {
                return false;
            }
        }
        true
    }

    /// Appends a `plan` record for a newly instantiated size (at most
    /// once per size per journal).
    fn journal_plan(&self, plan: &PlanEntry) {
        let mut guard = self.journal.lock().unwrap();
        let Some(journal) = guard.as_mut() else {
            return;
        };
        let rec = format!("plan {} {}", plan.n, plan.tree.to_spec());
        if journal.append(&rec).is_err() {
            self.count("spld.plan.journal_write_failures");
        }
    }
}

/// Parses one `plan <n> <spec>` journal record.
fn parse_plan_record(rec: &str) -> Option<(usize, FftTree)> {
    let mut it = rec.splitn(3, ' ');
    if it.next()? != "plan" {
        return None;
    }
    let n: usize = it.next()?.parse().ok()?;
    let tree = FftTree::from_spec(it.next()?).ok()?;
    if tree.size() != n {
        return None;
    }
    Some((n, tree))
}

/// Relative RMS tolerance for the demotion band (matches the search's
/// verification threshold scale).
fn within_tolerance(got: &[f64], want: &[f64]) -> bool {
    if got.len() != want.len() {
        return false;
    }
    let mut num = 0.0;
    let mut den = 0.0;
    for (g, w) in got.iter().zip(want) {
        num += (g - w) * (g - w);
        den += w * w;
    }
    if den == 0.0 {
        return num == 0.0;
    }
    (num / den).sqrt() < 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(dir: Option<&std::path::Path>, native: bool) -> PlanStore {
        PlanStore::new(PlanStoreOptions {
            state_dir: dir.map(std::path::Path::to_path_buf),
            native,
            ..Default::default()
        })
        .unwrap()
    }

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("spl_plans_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn vm_tier_serves_without_native() {
        let s = store(None, false);
        let plan = s.entry(8).unwrap();
        let x: Vec<f64> = (0..16).map(|i| (i as f64).cos()).collect();
        let (y, tier) = s.run_single(&plan, &x, None).unwrap();
        assert_eq!(tier, Tier::Vm);
        let mut want = vec![0.0; 16];
        plan.run_vm(&x, &mut want);
        assert_eq!(y, want);
    }

    #[test]
    fn unsupported_sizes_are_typed() {
        let s = store(None, false);
        assert!(matches!(s.entry(0), Err(ServeError::Unsupported(_))));
        assert!(matches!(s.entry(12), Err(ServeError::Unsupported(_))));
        assert!(matches!(s.entry(1 << 30), Err(ServeError::Unsupported(_))));
    }

    #[test]
    fn batched_dispatch_is_bit_identical_to_singles() {
        let s = store(None, false);
        let plan = s.entry(4).unwrap();
        let m = 3;
        let xs: Vec<f64> = (0..m * 8).map(|i| (i as f64 * 0.9).sin()).collect();
        let ys = s.run_batched(&plan, m, &xs).unwrap();
        let mut want = vec![0.0; 8];
        for seg in 0..m {
            plan.run_vm(&xs[seg * 8..(seg + 1) * 8], &mut want);
            assert_eq!(&ys[seg * 8..(seg + 1) * 8], want.as_slice());
        }
    }

    #[test]
    fn injected_kernel_fault_degrades_to_vm_with_correct_answer() {
        use crate::chaos::{ChaosConfig, ChaosInjector};
        let dir = tmp("chaosfault");
        let s = store(Some(&dir), true);
        let plan = s.entry(4).unwrap();
        let chaos = ChaosInjector::new(ChaosConfig {
            p_kernel_fault: 1.0,
            ..Default::default()
        });
        let x: Vec<f64> = (0..8).map(|i| (i as f64).sin()).collect();
        let (y, tier) = s.run_single(&plan, &x, Some(&chaos)).unwrap();
        assert_eq!(tier, Tier::Vm, "fault must degrade to the VM tier");
        let mut want = vec![0.0; 8];
        plan.run_vm(&x, &mut want);
        assert_eq!(y, want, "degraded reply must still be exact");
        let tel = s.drain_telemetry();
        assert_eq!(tel.counter("spld.chaos.kernel_faults"), Some(1));
        assert_eq!(tel.counter("spld.quarantined"), Some(1));
        // Quarantine is sticky: the next run degrades silently.
        let (_, tier2) = s.run_single(&plan, &x, Some(&chaos)).unwrap();
        assert_eq!(tier2, Tier::Vm);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plans_journal_preloads_on_restart() {
        let dir = tmp("warm");
        {
            let s = store(Some(&dir), false);
            s.entry(4).unwrap();
            s.entry(8).unwrap();
            assert_eq!(s.plan_count(), 2);
        } // dropped without any shutdown handshake — like SIGKILL
        let s = store(Some(&dir), false);
        assert_eq!(s.plan_count(), 2, "restart must replay the journal");
        let tel = s.drain_telemetry();
        assert_eq!(tel.counter("spld.plan.preloaded"), Some(2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wisdom_overrides_default_tree() {
        let s = store(None, false);
        // A wisdom file preferring a (ct 4 4) split for size 16.
        let tree = FftTree::node(Rule::CooleyTukey, FftTree::leaf(4), FftTree::leaf(4));
        let wisdom = spl_search::wisdom_to_string(&[spl_search::SizeResult {
            tree: tree.clone(),
            cost: 1.0,
        }]);
        assert_eq!(s.load_wisdom(&wisdom).unwrap(), 1);
        let plan = s.entry(16).unwrap();
        assert_eq!(plan.tree.to_spec(), tree.to_spec());
    }

    #[test]
    fn plan_records_parse() {
        let tree = ct_sequence(&[2, 2, 2], Rule::CooleyTukey);
        let rec = format!("plan 8 {}", tree.to_spec());
        let (n, parsed) = parse_plan_record(&rec).unwrap();
        assert_eq!(n, 8);
        assert_eq!(parsed.to_spec(), tree.to_spec());
        assert!(parse_plan_record("plan 8 4").is_none(), "size mismatch");
        assert!(parse_plan_record("so abc 1 2").is_none());
        assert!(parse_plan_record("plan").is_none());
    }
}
