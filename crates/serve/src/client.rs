//! A minimal blocking `spld` client, used by the CLI, the tests, and
//! the chaos soak harness.

use std::io::{Read, Write};
use std::path::Path;
use std::time::Duration;

use crate::protocol::{
    encode_request, parse_response, read_frame, write_frame, ProtocolError, Request, Response,
    KIND_DFT,
};

/// A connected client over any framed byte stream.
pub struct Client<S> {
    stream: S,
}

impl<S: Read + Write> Client<S> {
    /// Wraps an already-connected stream.
    pub fn over(stream: S) -> Client<S> {
        Client { stream }
    }

    /// One request-response round trip.
    ///
    /// # Errors
    ///
    /// Propagates frame and parse failures.
    pub fn call(&mut self, request: &Request) -> Result<Response, ProtocolError> {
        write_frame(&mut self.stream, &encode_request(request))?;
        let payload = read_frame(&mut self.stream)?;
        parse_response(&payload)
    }

    /// Applies the size-`n` complex DFT to `data` (`2n` interleaved
    /// samples), with an optional deadline.
    ///
    /// # Errors
    ///
    /// Propagates frame and parse failures; server-side refusals
    /// (overload, deadline, drain, error) come back as [`Response`]
    /// variants, not `Err`.
    pub fn transform(
        &mut self,
        n: usize,
        deadline: Option<Duration>,
        data: &[f64],
    ) -> Result<Response, ProtocolError> {
        self.call(&Request::Transform {
            kind: KIND_DFT,
            n,
            deadline_ms: deadline.map(|d| (d.as_millis().max(1)) as u32),
            data: data.to_vec(),
        })
    }

    /// The `health` verb.
    ///
    /// # Errors
    ///
    /// Propagates frame and parse failures.
    pub fn health(&mut self) -> Result<Response, ProtocolError> {
        self.call(&Request::Health)
    }

    /// The `stats` verb: the daemon's telemetry table.
    ///
    /// # Errors
    ///
    /// Propagates frame and parse failures.
    pub fn stats(&mut self) -> Result<Response, ProtocolError> {
        self.call(&Request::Stats)
    }

    /// The `drain` verb: graceful shutdown.
    ///
    /// # Errors
    ///
    /// Propagates frame and parse failures.
    pub fn drain(&mut self) -> Result<Response, ProtocolError> {
        self.call(&Request::Drain)
    }

    /// The `reload wisdom` verb: the daemon re-reads its wisdom file
    /// and wisdom DB so newly learned sizes become servable.
    ///
    /// # Errors
    ///
    /// Propagates frame and parse failures.
    pub fn reload_wisdom(&mut self) -> Result<Response, ProtocolError> {
        self.call(&Request::ReloadWisdom)
    }

    /// Sends raw bytes as one frame — the chaos harness's malformed-
    /// frame injection point.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send_raw_frame(&mut self, payload: &[u8]) -> Result<(), ProtocolError> {
        write_frame(&mut self.stream, payload)
    }

    /// Sends arbitrary bytes *without* framing (torn frames, garbage
    /// length prefixes).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send_raw_bytes(&mut self, bytes: &[u8]) -> Result<(), ProtocolError> {
        self.stream
            .write_all(bytes)
            .and_then(|()| self.stream.flush())
            .map_err(|e| ProtocolError::Io(e.to_string()))
    }

    /// Reads one response frame (for after a raw send).
    ///
    /// # Errors
    ///
    /// Propagates frame and parse failures.
    pub fn read_response(&mut self) -> Result<Response, ProtocolError> {
        parse_response(&read_frame(&mut self.stream)?)
    }

    /// The underlying stream (for shutdown/disconnect tricks).
    pub fn stream_mut(&mut self) -> &mut S {
        &mut self.stream
    }
}

#[cfg(unix)]
impl Client<std::os::unix::net::UnixStream> {
    /// Connects to a daemon's Unix socket.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect_unix(path: &Path) -> std::io::Result<Self> {
        let stream = std::os::unix::net::UnixStream::connect(path)?;
        Ok(Client { stream })
    }
}
