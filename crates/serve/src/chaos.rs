//! Deterministic fault injection for the serving daemon.
//!
//! The soak harness needs the daemon to *exercise* its fault paths —
//! kernel quarantine, degradation to the VM tier, deadline misses —
//! on demand and reproducibly. [`ChaosInjector`] is the daemon-side
//! half (the client-side half — malformed frames, mid-flight
//! disconnects — lives in the test harness, which owns the sockets):
//! a seeded SplitMix64 stream, in the mold of
//! `spl_search::FaultyEvaluator`, that decides per native-kernel run
//! whether to simulate a kernel fault and per request whether to add
//! artificial latency.
//!
//! Injected kernel faults are reported *before* the kernel runs, so a
//! degraded request is recomputed on the VM tier from scratch — chaos
//! can change which tier answers, never the answer itself.

use std::sync::Mutex;
use std::time::Duration;

use spl_numeric::rng::Rng;

/// Fault-injection probabilities and the seed that makes them
/// reproducible. All probabilities are clamped to `[0, 1]` at use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the decision stream.
    pub seed: u64,
    /// Probability that one native-kernel run reports a (simulated)
    /// crash, forcing degradation to the VM tier.
    pub p_kernel_fault: f64,
    /// Probability that one request is delayed by [`latency`](ChaosConfig::latency)
    /// before execution.
    pub p_latency: f64,
    /// The artificial delay injected when the latency roll hits.
    pub latency: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xc4a05,
            p_kernel_fault: 0.0,
            p_latency: 0.0,
            latency: Duration::from_millis(20),
        }
    }
}

/// The seeded decision stream behind one daemon's fault injection.
/// Decisions are drawn sequentially (thread-interleaving shifts which
/// request gets which draw, but the *rate* and the stream itself are
/// reproducible from the seed).
#[derive(Debug)]
pub struct ChaosInjector {
    config: ChaosConfig,
    rng: Mutex<Rng>,
}

impl ChaosInjector {
    /// An injector over `config`'s probabilities, seeded by
    /// `config.seed`.
    pub fn new(config: ChaosConfig) -> ChaosInjector {
        ChaosInjector {
            rng: Mutex::new(Rng::new(config.seed)),
            config,
        }
    }

    /// Rolls the kernel-fault die for one native run.
    pub fn kernel_fault(&self) -> bool {
        self.roll(self.config.p_kernel_fault)
    }

    /// Rolls the latency die for one request; `Some(delay)` means the
    /// worker should sleep `delay` before executing.
    pub fn latency(&self) -> Option<Duration> {
        self.roll(self.config.p_latency)
            .then_some(self.config.latency)
    }

    fn roll(&self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.rng.lock().unwrap().chance(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probabilities_never_fire() {
        let inj = ChaosInjector::new(ChaosConfig::default());
        for _ in 0..100 {
            assert!(!inj.kernel_fault());
            assert!(inj.latency().is_none());
        }
    }

    #[test]
    fn certain_probabilities_always_fire() {
        let inj = ChaosInjector::new(ChaosConfig {
            p_kernel_fault: 1.0,
            p_latency: 1.0,
            ..Default::default()
        });
        for _ in 0..10 {
            assert!(inj.kernel_fault());
            assert_eq!(inj.latency(), Some(Duration::from_millis(20)));
        }
    }

    #[test]
    fn streams_are_seeded() {
        let mk = |seed| {
            let inj = ChaosInjector::new(ChaosConfig {
                seed,
                p_kernel_fault: 0.5,
                ..Default::default()
            });
            (0..64).map(|_| inj.kernel_fault()).collect::<Vec<_>>()
        };
        assert_eq!(mk(1), mk(1));
        assert_ne!(mk(1), mk(2));
        // Rate is roughly the configured probability.
        let hits = mk(3).iter().filter(|&&b| b).count();
        assert!((16..=48).contains(&hits), "hits {hits}");
    }
}
