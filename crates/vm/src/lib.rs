#![warn(missing_docs)]

//! Execution engine for compiled SPL programs.
//!
//! The paper evaluates SPL by compiling the generated Fortran with the
//! platform compiler and timing it on SPARC/MIPS/Pentium hardware. This
//! reproduction substitutes a compact register VM: the *optimized i-code*
//! (real-typed, post type-transformation) is lowered to a flat operation
//! array over `f64` storage and executed directly. Operation count,
//! operation order, loop structure, and memory-access pattern are exactly
//! those of the emitted Fortran/C, so relative performance between
//! formulas — which is what the paper's experiments compare — is
//! preserved (see DESIGN.md, substitution 1).
//!
//! Execution has two engines. [`lower`] first builds the flat op
//! array (the *reference executor*, kept as the checked baseline),
//! then tries to *resolve* it into a fused, strength-reduced engine
//! (see [`resolved`]): peephole fusion produces multiply–add,
//! negate-folded, and butterfly macro-ops, and every operand becomes
//! a precomputed cursor into one unified arena, advanced by constant
//! strides at loop latches. [`VmProgram::run`] routes to the resolved
//! engine when resolution succeeded (bit-identical to the reference
//! executor by construction) and falls back otherwise.
//!
//! # Examples
//!
//! ```
//! use spl_compiler::Compiler;
//! use spl_vm::{lower, VmState};
//! use spl_numeric::Complex;
//!
//! let mut c = Compiler::new();
//! let unit = c.compile_formula_str("(F 2)").unwrap();
//! let vm = lower(&unit.program).unwrap();
//! let mut state = VmState::new(&vm);
//! let x = [1.0, 0.0, 2.0, 0.0]; // (1+0i, 2+0i) interleaved
//! let mut y = [0.0; 4];
//! vm.run(&x, &mut y, &mut state);
//! assert_eq!(y, [3.0, 0.0, -1.0, 0.0]);
//! # let _ = Complex::ZERO;
//! ```

pub mod convert;
pub mod profile;
pub mod program;
pub mod resolved;
pub mod simd;
pub mod timer;

pub use profile::{LoopBlock, NodeCost, VmProfile};
pub use program::{lower, VmError, VmProgram, VmState, FMA_MAX_ULPS};
pub use resolved::ResolveStats;
pub use timer::{describe_policy, measure, measure_reference, measure_with_reps, Measurement};
