//! Complex ↔ interleaved-real conversions for VM I/O.
//!
//! Real-typed generated code represents each complex point as two adjacent
//! `f64` words (paper Section 3.3.3); these helpers move between that
//! layout and [`Complex`] slices.

use spl_numeric::Complex;

/// `[z0, z1, ...]` → `[re0, im0, re1, im1, ...]`.
pub fn interleave(x: &[Complex]) -> Vec<f64> {
    let mut out = Vec::with_capacity(x.len() * 2);
    for z in x {
        out.push(z.re);
        out.push(z.im);
    }
    out
}

/// `[re0, im0, re1, im1, ...]` → `[z0, z1, ...]`.
///
/// # Panics
///
/// Panics if the length is odd.
pub fn deinterleave(x: &[f64]) -> Vec<Complex> {
    assert!(x.len().is_multiple_of(2), "deinterleave: odd length");
    x.chunks(2).map(|p| Complex::new(p[0], p[1])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let x = vec![Complex::new(1.0, 2.0), Complex::new(-0.5, 0.25)];
        assert_eq!(deinterleave(&interleave(&x)), x);
    }

    #[test]
    fn layout_is_re_im() {
        let flat = interleave(&[Complex::new(3.0, 4.0)]);
        assert_eq!(flat, vec![3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "odd length")]
    fn odd_length_panics() {
        deinterleave(&[1.0, 2.0, 3.0]);
    }
}
