//! Adaptive timing of VM programs.
//!
//! The paper's performance evaluation times each candidate implementation
//! and reports "pseudo MFlops" (`5 N log₂N / t`, `t` in µs). This module
//! provides the measurement loop: repetitions are scaled until the total
//! elapsed time passes a floor, which keeps per-call noise manageable even
//! for 2-point transforms.

use std::time::{Duration, Instant};

use crate::program::{VmProgram, VmState};

/// A timing result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Time per single execution, in seconds.
    pub secs_per_call: f64,
    /// Repetitions actually executed.
    pub reps: u64,
}

impl Measurement {
    /// Time per call in microseconds.
    pub fn micros_per_call(&self) -> f64 {
        self.secs_per_call * 1e6
    }
}

/// Times a program with an adaptive repetition count until at least
/// `min_time` has elapsed.
///
/// The input is a deterministic pseudo-random vector (so every candidate
/// in a search sees identical data), and the same buffers are reused
/// across repetitions, matching how generated library code is used.
pub fn measure(prog: &VmProgram, min_time: Duration) -> Measurement {
    let x: Vec<f64> = (0..prog.n_in)
        .map(|i| ((i as f64) * 0.7311).sin())
        .collect();
    let mut y = vec![0.0f64; prog.n_out];
    let mut st = VmState::new(prog);
    let mut reps: u64 = 0;
    let secs_per_call = spl_numeric::metrics::time_adaptive(min_time, || {
        prog.run(&x, &mut y, &mut st);
        reps += 1;
    });
    Measurement {
        secs_per_call,
        reps,
    }
}

/// Times a program with a fixed repetition count (used by tests and by
/// the search when a cheap, deterministic-cost estimate is enough).
pub fn measure_with_reps(prog: &VmProgram, reps: u64) -> Measurement {
    let x: Vec<f64> = (0..prog.n_in)
        .map(|i| ((i as f64) * 0.7311).sin())
        .collect();
    let mut y = vec![0.0f64; prog.n_out];
    let mut st = VmState::new(prog);
    let start = Instant::now();
    for _ in 0..reps.max(1) {
        prog.run(&x, &mut y, &mut st);
    }
    let total = start.elapsed();
    Measurement {
        secs_per_call: total.as_secs_f64() / reps.max(1) as f64,
        reps: reps.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::lower;
    use spl_compiler::Compiler;

    fn vm(src: &str) -> VmProgram {
        let mut c = Compiler::new();
        lower(&c.compile_formula_str(src).unwrap().program).unwrap()
    }

    #[test]
    fn measurement_is_positive() {
        let p = vm("(F 4)");
        let m = measure(&p, Duration::from_millis(5));
        assert!(m.secs_per_call > 0.0);
        assert!(m.reps >= 1);
        assert!(m.micros_per_call() > 0.0);
    }

    #[test]
    fn bigger_transforms_take_longer() {
        let small = vm("(F 2)");
        let big = vm("(F 16)"); // O(n^2) definition: 64x the work
        let ms = measure(&small, Duration::from_millis(20));
        let mb = measure(&big, Duration::from_millis(20));
        assert!(
            mb.secs_per_call > ms.secs_per_call,
            "{} vs {}",
            mb.secs_per_call,
            ms.secs_per_call
        );
    }

    #[test]
    fn fixed_reps_variant() {
        let p = vm("(F 4)");
        let m = measure_with_reps(&p, 100);
        assert_eq!(m.reps, 100);
        assert!(m.secs_per_call > 0.0);
    }
}
