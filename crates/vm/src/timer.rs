//! Adaptive timing of VM programs.
//!
//! The paper's performance evaluation times each candidate implementation
//! and reports "pseudo MFlops" (`5 N log₂N / t`, `t` in µs). This module
//! provides the measurement loop: repetitions are scaled until the total
//! elapsed time passes a floor, which keeps per-call noise manageable even
//! for 2-point transforms.

use std::time::{Duration, Instant};

use spl_telemetry::Telemetry;

use crate::program::{VmProgram, VmState};

/// A timing result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Time per single execution, in seconds.
    pub secs_per_call: f64,
    /// Repetitions actually executed.
    pub reps: u64,
    /// Untimed warm-up executions run before measurement started.
    pub warmup_reps: u64,
}

impl Measurement {
    /// Time per call in microseconds.
    pub fn micros_per_call(&self) -> f64 {
        self.secs_per_call * 1e6
    }

    /// Records this measurement into `tel`: counters `<prefix>.reps`
    /// and `<prefix>.warmup_reps` accumulate across calls, metric
    /// `<prefix>.secs_per_call` keeps the latest value.
    pub fn record(&self, tel: &mut Telemetry, prefix: &str) {
        tel.add(&format!("{prefix}.reps"), self.reps);
        tel.add(&format!("{prefix}.warmup_reps"), self.warmup_reps);
        tel.set_metric(&format!("{prefix}.secs_per_call"), self.secs_per_call);
    }
}

/// Describes the measurement policy in a telemetry section, so run
/// reports say how the numbers they carry were produced.
pub fn describe_policy(tel: &mut Telemetry, min_time: Duration) {
    tel.note("timer.strategy", "warmup + adaptive repetitions");
    tel.set_metric("timer.min_time_secs", min_time.as_secs_f64());
}

/// The default iteration ceiling for [`measure`]'s min-time loop. At
/// ~25 ns per 2-point transform this is well past any `min_time` the
/// search uses, while guaranteeing a pathological (near-zero-cost or
/// mis-calibrated) program cannot pin the measurement loop for minutes.
pub const DEFAULT_MAX_REPS: u64 = 1 << 22;

/// Times a program with an adaptive repetition count until at least
/// `min_time` has elapsed, capped at [`DEFAULT_MAX_REPS`] repetitions.
///
/// The input is a deterministic pseudo-random vector (so every candidate
/// in a search sees identical data), and the same buffers are reused
/// across repetitions, matching how generated library code is used.
pub fn measure(prog: &VmProgram, min_time: Duration) -> Measurement {
    measure_capped(prog, min_time, DEFAULT_MAX_REPS)
}

/// [`measure`] with an explicit repetition ceiling: the timing loop
/// stops at `max_reps` even if `min_time` has not elapsed, so one
/// degenerate candidate cannot stall a long search.
pub fn measure_capped(prog: &VmProgram, min_time: Duration, max_reps: u64) -> Measurement {
    let x: Vec<f64> = (0..prog.n_in)
        .map(|i| ((i as f64) * 0.7311).sin())
        .collect();
    let mut y = vec![0.0f64; prog.n_out];
    let mut st = VmState::new(prog);
    // One untimed warm-up call so cold caches, lazy page faults, and
    // table initialization don't bias the first timed repetition.
    prog.run(&x, &mut y, &mut st);
    // The calibration call inside the counted timer also runs the
    // program but is not part of the average; `run.reps` is exactly the
    // timed-loop count, so the reported reps agrees with the divisor of
    // `secs_per_call`. The calibration call is a second warm-up.
    let run = spl_numeric::metrics::time_adaptive_counted(min_time, max_reps, || {
        prog.run(&x, &mut y, &mut st);
    });
    Measurement {
        secs_per_call: run.secs_per_call,
        reps: run.reps,
        warmup_reps: 1 + run.untimed_calls,
    }
}

/// Like [`measure`], but forcing execution through the op-at-a-time
/// reference executor even when the program resolved. This is the
/// "old engine" baseline of the `vmbench` old-vs-new comparison.
pub fn measure_reference(prog: &VmProgram, min_time: Duration) -> Measurement {
    let x: Vec<f64> = (0..prog.n_in)
        .map(|i| ((i as f64) * 0.7311).sin())
        .collect();
    let mut y = vec![0.0f64; prog.n_out];
    let mut st = VmState::new(prog);
    prog.run_reference(&x, &mut y, &mut st);
    let run = spl_numeric::metrics::time_adaptive_counted(min_time, DEFAULT_MAX_REPS, || {
        prog.run_reference(&x, &mut y, &mut st);
    });
    Measurement {
        secs_per_call: run.secs_per_call,
        reps: run.reps,
        warmup_reps: 1 + run.untimed_calls,
    }
}

/// Times a program with a fixed repetition count (used by tests and by
/// the search when a cheap, deterministic-cost estimate is enough).
///
/// Like the adaptive path, one untimed warm-up call runs first so a
/// cold first call (page faults, table initialization) does not bias
/// short fixed-rep estimates.
pub fn measure_with_reps(prog: &VmProgram, reps: u64) -> Measurement {
    let x: Vec<f64> = (0..prog.n_in)
        .map(|i| ((i as f64) * 0.7311).sin())
        .collect();
    let mut y = vec![0.0f64; prog.n_out];
    let mut st = VmState::new(prog);
    prog.run(&x, &mut y, &mut st);
    let start = Instant::now();
    for _ in 0..reps.max(1) {
        prog.run(&x, &mut y, &mut st);
    }
    let total = start.elapsed();
    Measurement {
        secs_per_call: total.as_secs_f64() / reps.max(1) as f64,
        reps: reps.max(1),
        warmup_reps: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::lower;
    use spl_compiler::Compiler;

    fn vm(src: &str) -> VmProgram {
        let mut c = Compiler::new();
        lower(&c.compile_formula_str(src).unwrap().program).unwrap()
    }

    #[test]
    fn measurement_is_positive() {
        let p = vm("(F 4)");
        let m = measure(&p, Duration::from_millis(5));
        assert!(m.secs_per_call > 0.0);
        assert!(m.reps >= 1);
        assert!(m.micros_per_call() > 0.0);
    }

    #[test]
    fn bigger_transforms_take_longer() {
        let small = vm("(F 2)");
        let big = vm("(F 16)"); // O(n^2) definition: 64x the work
        let ms = measure(&small, Duration::from_millis(20));
        let mb = measure(&big, Duration::from_millis(20));
        assert!(
            mb.secs_per_call > ms.secs_per_call,
            "{} vs {}",
            mb.secs_per_call,
            ms.secs_per_call
        );
    }

    #[test]
    fn capped_measure_cannot_spin_forever() {
        // A cheap program with an hour-long floor: without the cap this
        // would run the min-time loop for an hour; with it the call
        // returns promptly having done at most `cap` repetitions.
        let p = vm("(F 2)");
        let start = std::time::Instant::now();
        let m = measure_capped(&p, Duration::from_secs(3600), 64);
        assert!(m.reps >= 1 && m.reps <= 64, "reps {}", m.reps);
        assert!(start.elapsed() < Duration::from_secs(10));
        assert!(m.secs_per_call > 0.0);
    }

    #[test]
    fn reported_reps_match_the_timed_loop_exactly() {
        // Regression: the calibration call used to leak into `reps`,
        // so a capped measurement reported cap + 1 repetitions while
        // `secs_per_call` was averaged over only `cap`. With an
        // hour-long floor the adaptive count pins the cap exactly, so
        // any calibration leak shows up as an off-by-one here.
        let p = vm("(F 2)");
        for cap in [1u64, 7, 64] {
            let m = measure_capped(&p, Duration::from_secs(3600), cap);
            assert_eq!(m.reps, cap, "calibration call leaked into reps");
        }
    }

    #[test]
    fn default_measure_respects_global_cap() {
        let p = vm("(F 2)");
        let m = measure(&p, Duration::from_millis(1));
        assert!(m.reps <= DEFAULT_MAX_REPS);
    }

    #[test]
    fn fixed_reps_variant() {
        let p = vm("(F 4)");
        let m = measure_with_reps(&p, 100);
        assert_eq!(m.reps, 100);
        assert_eq!(m.warmup_reps, 1);
        assert!(m.secs_per_call > 0.0);
    }

    #[test]
    fn fixed_and_adaptive_paths_agree_on_a_tiny_program() {
        // Regression: the fixed-rep path used to time a cold first call
        // while the adaptive path warmed up, biasing short fixed-rep
        // estimates by orders of magnitude (a cold (F 2) call pays page
        // faults and lazy init). Warmed up, the two estimates land in
        // the same ballpark; the tolerance is deliberately loose so the
        // test checks the warm-up, not the scheduler's mood.
        let p = vm("(F 2)");
        let adaptive = measure(&p, Duration::from_millis(20));
        let fixed = measure_with_reps(&p, adaptive.reps.clamp(100, 100_000));
        let ratio = fixed.secs_per_call / adaptive.secs_per_call;
        assert!(
            (0.02..=50.0).contains(&ratio),
            "fixed {} vs adaptive {} (ratio {ratio})",
            fixed.secs_per_call,
            adaptive.secs_per_call
        );
    }

    #[test]
    fn measure_warms_up_and_records_telemetry() {
        let p = vm("(F 4)");
        let m = measure(&p, Duration::from_millis(2));
        // One explicit warm-up call plus the untimed calibration call.
        assert_eq!(m.warmup_reps, 2);
        let mut tel = Telemetry::new();
        describe_policy(&mut tel, Duration::from_millis(2));
        m.record(&mut tel, "timer");
        m.record(&mut tel, "timer");
        assert_eq!(tel.counter("timer.reps"), Some(2 * m.reps));
        assert_eq!(tel.counter("timer.warmup_reps"), Some(4));
        assert!(tel.metric("timer.secs_per_call").unwrap() > 0.0);
        assert_eq!(tel.metric("timer.min_time_secs"), Some(0.002));
        assert!(tel
            .notes()
            .iter()
            .any(|(k, v)| k == "timer.strategy" && v.contains("warmup")));
    }
}
