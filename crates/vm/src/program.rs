//! Lowering real-typed i-code to a flat VM program, and its executor.

use std::error::Error;
use std::fmt;

use spl_icode::{Affine, BinOp, IProgram, Instr, Place, ProvNode, UnOp, Value, VecKind, VecRef};

use crate::profile::VmProfile;
use crate::resolved::{resolve, ResolveStats, ResolvedProgram, Unsupported};

/// A lowering error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The program is complex-typed; run the type transformation first.
    ComplexProgram,
    /// A float op writes to an input or table vector.
    WriteToReadOnly,
    /// A float op targets an `$r` register.
    IntDstInFloatOp,
    /// A complex constant survived into a real-typed program.
    ComplexConstant,
    /// An intrinsic survived to lowering.
    Intrinsic,
    /// An operand of an integer op is not an integer (debug rendering
    /// of the offending value).
    NonIntegerOperand(String),
    /// A `do`-end without a matching `do`.
    UnmatchedLoopEnd,
    /// A `do` without a matching end.
    UnclosedLoop,
    /// An affine subscript can reach a negative address at runtime
    /// (which the release-mode executor would silently wrap).
    NegativeAddress(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm: ")?;
        match self {
            VmError::ComplexProgram => write!(
                f,
                "the VM executes real-typed programs; run the type transformation first"
            ),
            VmError::WriteToReadOnly => write!(f, "write to read-only vector"),
            VmError::IntDstInFloatOp => write!(f, "integer destination in float op"),
            VmError::ComplexConstant => write!(f, "complex constant in real program"),
            VmError::Intrinsic => write!(f, "intrinsics must be evaluated before lowering"),
            VmError::NonIntegerOperand(v) => write!(f, "operand {v} is not an integer"),
            VmError::UnmatchedLoopEnd => write!(f, "unmatched end"),
            VmError::UnclosedLoop => write!(f, "unclosed loop at end of program"),
            VmError::NegativeAddress(d) => write!(f, "negative-reachable subscript: {d}"),
        }
    }
}

impl Error for VmError {}

/// Documented worst-case drift of FMA mode from never-fused
/// execution, in ULPs per output element, for the transform sizes
/// the VM test corpus pins (n ≤ 64). Fusing drops one rounding per
/// multiply–add, and the drift compounds across butterfly stages —
/// but stays far below this bound in practice; the
/// `fma_stays_within_documented_ulp_bound` test enforces it.
pub const FMA_MAX_ULPS: u64 = 64;

/// A runtime address: `base + Σ coeff·loop[slot]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Addr {
    pub(crate) base: i64,
    pub(crate) terms: Vec<(i64, u32)>,
}

impl Addr {
    fn from_affine(a: &Affine) -> Addr {
        Addr {
            base: a.c,
            terms: a.terms.iter().map(|&(c, lv)| (c, lv.0)).collect(),
        }
    }

    #[inline]
    fn eval(&self, loops: &[i64]) -> usize {
        let mut v = self.base;
        for &(c, slot) in &self.terms {
            v += c * loops[slot as usize];
        }
        debug_assert!(v >= 0);
        v as usize
    }
}

/// A floating-point source operand.
#[derive(Debug, Clone, PartialEq)]
pub enum Src {
    /// Input vector element.
    In(Addr),
    /// Output vector element (accumulations read back the output).
    Out(Addr),
    /// Temporary arena element (address already includes the temp's
    /// arena offset).
    Temp(Addr),
    /// Constant-table element (address includes the table's offset).
    Table(Addr),
    /// An `$f` register.
    F(u32),
    /// An immediate.
    Const(f64),
    /// An `$r` register read as a float (unoptimized code only).
    RF(u32),
    /// A loop variable read as a float (unoptimized code only).
    LoopF(u32),
}

/// A floating-point destination.
#[derive(Debug, Clone, PartialEq)]
pub enum Dst {
    /// Output vector element.
    Out(Addr),
    /// Temporary arena element.
    Temp(Addr),
    /// An `$f` register.
    F(u32),
}

/// An integer source operand (for `$r` arithmetic in unoptimized code).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ISrc {
    /// Immediate.
    Const(i64),
    /// `$r` register.
    R(u32),
    /// Loop variable.
    Loop(u32),
}

/// A VM operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `dst = a op b` over `f64`.
    Bin {
        /// Operator.
        op: BinOp,
        /// Destination.
        dst: Dst,
        /// Left operand.
        a: Src,
        /// Right operand.
        b: Src,
    },
    /// `dst = a` or `dst = -a`.
    Un {
        /// `true` negates.
        neg: bool,
        /// Destination.
        dst: Dst,
        /// Operand.
        a: Src,
    },
    /// `r[dst] = a op b` over `i64`.
    IntBin {
        /// Operator.
        op: BinOp,
        /// Destination register index.
        dst: u32,
        /// Left operand.
        a: ISrc,
        /// Right operand.
        b: ISrc,
    },
    /// `r[dst] = ±a`.
    IntUn {
        /// `true` negates.
        neg: bool,
        /// Destination register index.
        dst: u32,
        /// Operand.
        a: ISrc,
    },
    /// Loop header: initializes `loop[var] = lo`; `end_pc` indexes the
    /// matching [`Op::LoopEnd`].
    LoopStart {
        /// Loop variable slot.
        var: u32,
        /// Initial value.
        lo: i64,
        /// Index of the matching end.
        end_pc: usize,
        /// Advisory lane-safety mark from the compiler's vectorize
        /// pass. The reference executor ignores it; the resolver
        /// re-verifies it before building a vector plan.
        vec: bool,
    },
    /// Loop latch: increments and jumps back while `loop[var] < hi`.
    LoopEnd {
        /// Loop variable slot.
        var: u32,
        /// Final value (inclusive).
        hi: i64,
        /// Index of the matching start.
        start_pc: usize,
    },
}

/// A lowered, executable program.
///
/// [`lower`] additionally tries to *resolve* the program into the
/// fused, strength-reduced engine (see [`crate::resolved`]); when that
/// succeeds, [`VmProgram::run`] executes through it, otherwise through
/// the checked reference executor ([`VmProgram::run_reference`]).
#[derive(Debug, Clone, PartialEq)]
pub struct VmProgram {
    code: Vec<Op>,
    /// Per-op formula-node provenance (parallel to `code`; empty when
    /// the source program carried none).
    prov: Vec<u32>,
    /// The formula-node table the provenance ids index.
    prov_nodes: Vec<ProvNode>,
    /// The resolved engine, or why resolution was declined.
    resolved: Result<ResolvedProgram, Unsupported>,
    /// Input vector length (in `f64` words).
    pub n_in: usize,
    /// Output vector length (in `f64` words).
    pub n_out: usize,
    /// Total temporary arena length.
    pub temp_len: usize,
    /// Flattened constant tables.
    pub tables: Vec<f64>,
    /// `$f` register count.
    pub n_f: usize,
    /// `$r` register count.
    pub n_r: usize,
    /// Loop-variable count.
    pub n_loop: usize,
}

impl VmProgram {
    /// The operations (read-only view, for inspection in tests/benches).
    pub fn code(&self) -> &[Op] {
        &self.code
    }

    /// Per-op formula-node provenance, parallel to [`VmProgram::code`]
    /// (empty when the source i-code carried none).
    pub fn prov(&self) -> &[u32] {
        &self.prov
    }

    /// The formula-node table the provenance ids index.
    pub fn prov_nodes(&self) -> &[ProvNode] {
        &self.prov_nodes
    }

    /// Bytes of state the program needs beyond input and output: the
    /// temporary arena, constant tables, and registers. This is the
    /// "memory required to run the code" of the paper's Figure 5.
    pub fn memory_bytes(&self) -> usize {
        (self.temp_len + self.tables.len() + self.n_f) * std::mem::size_of::<f64>()
            + self.n_r * std::mem::size_of::<i64>()
            + self.n_loop * std::mem::size_of::<i64>()
    }

    /// Static float-arithmetic operation count (loop bodies counted
    /// once): the adds, subs, muls, divs, copies, and negations.
    pub fn float_ops(&self) -> usize {
        self.code
            .iter()
            .filter(|op| matches!(op, Op::Bin { .. } | Op::Un { .. }))
            .count()
    }

    /// Static integer bookkeeping operation count (`$r` arithmetic in
    /// unoptimized code; loop bodies counted once).
    pub fn int_ops(&self) -> usize {
        self.code
            .iter()
            .filter(|op| matches!(op, Op::IntBin { .. } | Op::IntUn { .. }))
            .count()
    }

    /// `true` when [`VmProgram::run`] executes through the resolved
    /// engine rather than the reference executor.
    pub fn is_resolved(&self) -> bool {
        self.resolved.is_ok()
    }

    /// Fusion and strength-reduction counters, when resolution
    /// succeeded.
    pub fn resolve_stats(&self) -> Option<&ResolveStats> {
        self.resolved.as_ref().ok().map(|r| r.stats())
    }

    /// Why the program fell back to the reference executor, if it did.
    pub fn resolve_fallback(&self) -> Option<&'static str> {
        self.resolved.as_ref().err().map(|u| u.0)
    }

    /// Enables hardware fused multiply–add for the fused macro-ops.
    ///
    /// Off by default: single-rounding FMA is faster on FMA-capable
    /// targets but **not bit-identical** to the reference executor
    /// (and slower where `f64::mul_add` falls back to libm). The
    /// differential harnesses therefore pin FMA off; with it on,
    /// outputs may drift from the never-fused result by up to
    /// [`FMA_MAX_ULPS`] ULPs per element (each fusion removes one
    /// rounding, and the drift compounds across butterfly stages).
    /// The vector path is also skipped in FMA mode — the lane
    /// backends never fuse.
    pub fn set_fma(&mut self, on: bool) {
        if let Ok(rp) = &mut self.resolved {
            rp.set_fma(on);
        }
    }

    /// Executes the program through the resolved engine when
    /// available, else through the reference executor.
    ///
    /// Like the Fortran the code generator emits, temporary storage is
    /// *static*: a reused [`VmState`] keeps temp contents across calls
    /// (well-formed generated code writes every temp element before
    /// reading it, so this is unobservable there). Reuse a state with
    /// one engine only: the resolved engine keeps temps in its arena,
    /// the reference executor in its own vector.
    ///
    /// # Panics
    ///
    /// Panics if `x`/`y` lengths do not match `n_in`/`n_out`, on
    /// out-of-bounds subscripts (slice bounds), or on integer division
    /// by zero — the VM trusts programs that passed `IProgram::validate`
    /// and has no error channel on the hot path; use the i-code
    /// interpreter when you need checked execution.
    pub fn run(&self, x: &[f64], y: &mut [f64], st: &mut VmState) {
        if let Ok(rp) = &self.resolved {
            assert_eq!(x.len(), self.n_in, "input length mismatch");
            assert_eq!(y.len(), self.n_out, "output length mismatch");
            rp.run(x, y, st);
        } else {
            self.run_reference(x, y, st);
        }
    }

    /// Executes the program through the resolved engine while
    /// collecting a [`VmProfile`]: dynamic per-op-class counts, flop
    /// counts, per-loop iteration and wall-time figures, and — when
    /// the program carries formula-node provenance — per-node self
    /// time and flops.
    ///
    /// This is a separate instrumented interpreter; the unprofiled
    /// [`VmProgram::run`] hot path is untouched. Returns `None` when
    /// the program fell back to the reference executor.
    ///
    /// Output and state are updated exactly as by [`VmProgram::run`]
    /// (the profiled interpreter executes the same resolved ops in
    /// the same order, so results are bit-identical).
    pub fn run_profiled(&self, x: &[f64], y: &mut [f64], st: &mut VmState) -> Option<VmProfile> {
        let rp = self.resolved.as_ref().ok()?;
        assert_eq!(x.len(), self.n_in, "input length mismatch");
        assert_eq!(y.len(), self.n_out, "output length mismatch");
        Some(rp.run_profiled(x, y, st, &self.prov_nodes))
    }

    /// Executes the program through the original op-at-a-time
    /// reference executor (the checked baseline the resolved engine
    /// is differentially tested against).
    pub fn run_reference(&self, x: &[f64], y: &mut [f64], st: &mut VmState) {
        assert_eq!(x.len(), self.n_in, "input length mismatch");
        assert_eq!(y.len(), self.n_out, "output length mismatch");
        let code = &self.code[..];
        let loops = &mut st.loops[..];
        let f = &mut st.f[..];
        let r = &mut st.r[..];
        let temps = &mut st.temps[..];
        let tables = &self.tables[..];

        macro_rules! src {
            ($s:expr) => {
                match $s {
                    Src::In(a) => x[a.eval(loops)],
                    Src::Out(a) => y[a.eval(loops)],
                    Src::Temp(a) => temps[a.eval(loops)],
                    Src::Table(a) => tables[a.eval(loops)],
                    Src::F(k) => f[*k as usize],
                    Src::Const(c) => *c,
                    Src::RF(k) => r[*k as usize] as f64,
                    Src::LoopF(k) => loops[*k as usize] as f64,
                }
            };
        }
        macro_rules! isrc {
            ($s:expr) => {
                match $s {
                    ISrc::Const(c) => *c,
                    ISrc::R(k) => r[*k as usize],
                    ISrc::Loop(k) => loops[*k as usize],
                }
            };
        }

        let mut pc = 0usize;
        while pc < code.len() {
            match &code[pc] {
                Op::Bin { op, dst, a, b } => {
                    let av = src!(a);
                    let bv = src!(b);
                    let v = match op {
                        BinOp::Add => av + bv,
                        BinOp::Sub => av - bv,
                        BinOp::Mul => av * bv,
                        BinOp::Div => av / bv,
                    };
                    match dst {
                        Dst::Out(a) => y[a.eval(loops)] = v,
                        Dst::Temp(a) => temps[a.eval(loops)] = v,
                        Dst::F(k) => f[*k as usize] = v,
                    }
                    pc += 1;
                }
                Op::Un { neg, dst, a } => {
                    let av = src!(a);
                    let v = if *neg { -av } else { av };
                    match dst {
                        Dst::Out(a) => y[a.eval(loops)] = v,
                        Dst::Temp(a) => temps[a.eval(loops)] = v,
                        Dst::F(k) => f[*k as usize] = v,
                    }
                    pc += 1;
                }
                Op::IntBin { op, dst, a, b } => {
                    let av = isrc!(a);
                    let bv = isrc!(b);
                    r[*dst as usize] = match op {
                        BinOp::Add => av + bv,
                        BinOp::Sub => av - bv,
                        BinOp::Mul => av * bv,
                        BinOp::Div => av / bv,
                    };
                    pc += 1;
                }
                Op::IntUn { neg, dst, a } => {
                    let av = isrc!(a);
                    r[*dst as usize] = if *neg { -av } else { av };
                    pc += 1;
                }
                Op::LoopStart {
                    var, lo, end_pc, ..
                } => {
                    // Zero-trip loops (possible only in hand-built
                    // programs; the compiler never emits them) skip to
                    // the matching end, exactly like the interpreter.
                    let hi = match &code[*end_pc] {
                        Op::LoopEnd { hi, .. } => *hi,
                        _ => unreachable!("end_pc points at the LoopEnd"),
                    };
                    if *lo > hi {
                        pc = *end_pc + 1;
                    } else {
                        loops[*var as usize] = *lo;
                        pc += 1;
                    }
                }
                Op::LoopEnd { var, hi, start_pc } => {
                    let v = loops[*var as usize] + 1;
                    if v <= *hi {
                        loops[*var as usize] = v;
                        pc = start_pc + 1;
                    } else {
                        pc += 1;
                    }
                }
            }
        }
    }
}

/// Reusable mutable execution state (registers, loop counters, temporary
/// arena).
#[derive(Debug, Clone)]
pub struct VmState {
    pub(crate) f: Vec<f64>,
    pub(crate) r: Vec<i64>,
    pub(crate) loops: Vec<i64>,
    pub(crate) temps: Vec<f64>,
    /// Unified arena of the resolved engine (empty when the program
    /// is unresolved).
    pub(crate) arena: Vec<f64>,
    /// Cursor file of the resolved engine.
    pub(crate) cur: Vec<i64>,
}

impl VmState {
    /// Allocates state sized for a program.
    pub fn new(prog: &VmProgram) -> VmState {
        let (arena, cur) = match &prog.resolved {
            Ok(rp) => (rp.fresh_arena(), rp.init_cursors().to_vec()),
            Err(_) => (Vec::new(), Vec::new()),
        };
        VmState {
            f: vec![0.0; prog.n_f],
            r: vec![0; prog.n_r],
            loops: vec![0; prog.n_loop],
            temps: vec![0.0; prog.temp_len],
            arena,
            cur,
        }
    }
}

/// Rejects programs where an affine subscript can reach a negative
/// address: `Addr::eval` only `debug_assert`s non-negativity, so in
/// release builds a negative address would wrap to a huge `usize` and
/// panic far away at slice indexing (or, in the unified-arena engine,
/// silently read a neighboring region). All loop bounds are
/// compile-time constants and every bound combination is reached, so
/// the interval box over the enclosing ranges is exact; subscripts
/// under a zero-trip loop are skipped (the access never executes), and
/// out-of-scope variables are widened to every value their slot can
/// hold (including the initial 0).
fn check_negative_reachable(
    prog: &IProgram,
    temp_offsets: &[usize],
    table_offsets: &[usize],
) -> Result<(), VmError> {
    use std::collections::HashMap;
    let mut union: HashMap<u32, (i64, i64)> = HashMap::new();
    for ins in &prog.instrs {
        if let Instr::DoStart { var, lo, hi, .. } = ins {
            if lo <= hi {
                let e = union.entry(var.0).or_insert((0, 0));
                e.0 = e.0.min(*lo);
                e.1 = e.1.max(*hi);
            }
        }
    }
    let check_vec = |stack: &[(u32, i64, i64)], vr: &VecRef| -> Result<(), VmError> {
        let off = match vr.kind {
            VecKind::Temp(t) => temp_offsets.get(t as usize).copied().unwrap_or(0) as i128,
            VecKind::Table(t) => table_offsets.get(t as usize).copied().unwrap_or(0) as i128,
            _ => 0,
        };
        let mut min = vr.idx.c as i128 + off;
        for &(c, lv) in &vr.idx.terms {
            let (lo, hi) = stack
                .iter()
                .rev()
                .find(|&&(v, _, _)| v == lv.0)
                .map(|&(_, lo, hi)| (lo, hi))
                .or_else(|| union.get(&lv.0).copied())
                .unwrap_or((0, 0));
            min += (c as i128 * lo as i128).min(c as i128 * hi as i128);
        }
        if min < 0 {
            return Err(VmError::NegativeAddress(format!(
                "{:?}[{:?}] reaches address {min}",
                vr.kind, vr.idx
            )));
        }
        Ok(())
    };
    let mut stack: Vec<(u32, i64, i64)> = Vec::new();
    for ins in &prog.instrs {
        match ins {
            Instr::DoStart { var, lo, hi, .. } => stack.push((var.0, *lo, *hi)),
            Instr::DoEnd => {
                stack.pop();
            }
            Instr::Bin { dst, a, b, .. } => {
                if stack.iter().all(|&(_, lo, hi)| lo <= hi) {
                    if let Place::Vec(vr) = dst {
                        check_vec(&stack, vr)?;
                    }
                    for v in [a, b] {
                        if let Value::Place(Place::Vec(vr)) = v {
                            check_vec(&stack, vr)?;
                        }
                    }
                }
            }
            Instr::Un { dst, a, .. } => {
                if stack.iter().all(|&(_, lo, hi)| lo <= hi) {
                    if let Place::Vec(vr) = dst {
                        check_vec(&stack, vr)?;
                    }
                    if let Value::Place(Place::Vec(vr)) = a {
                        check_vec(&stack, vr)?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Lowers a *real-typed* i-code program (after type transformation) to a
/// VM program.
///
/// # Errors
///
/// Fails on complex programs, surviving intrinsics, operands the VM
/// cannot encode, or subscripts that can reach a negative address.
pub fn lower(prog: &IProgram) -> Result<VmProgram, VmError> {
    if prog.complex {
        return Err(VmError::ComplexProgram);
    }
    // Flatten temps and tables into single arenas.
    let mut temp_offsets = Vec::with_capacity(prog.temps.len());
    let mut temp_len = 0usize;
    for &t in &prog.temps {
        temp_offsets.push(temp_len);
        temp_len += t;
    }
    let mut table_offsets = Vec::with_capacity(prog.tables.len());
    let mut tables = Vec::new();
    for t in &prog.tables {
        table_offsets.push(tables.len());
        tables.extend(t.iter().map(|c| c.re));
    }
    check_negative_reachable(prog, &temp_offsets, &table_offsets)?;

    let addr_of = |v: &VecRef| -> Addr {
        let mut a = Addr::from_affine(&v.idx);
        match v.kind {
            VecKind::Temp(t) => a.base += temp_offsets[t as usize] as i64,
            VecKind::Table(t) => a.base += table_offsets[t as usize] as i64,
            _ => {}
        }
        a
    };
    let dst_of = |p: &Place| -> Result<Dst, VmError> {
        match p {
            Place::F(k) => Ok(Dst::F(*k)),
            Place::Vec(v) => match v.kind {
                VecKind::Out => Ok(Dst::Out(addr_of(v))),
                VecKind::Temp(_) => Ok(Dst::Temp(addr_of(v))),
                VecKind::In | VecKind::Table(_) => Err(VmError::WriteToReadOnly),
            },
            Place::R(_) => Err(VmError::IntDstInFloatOp),
        }
    };
    let src_of = |v: &Value| -> Result<Src, VmError> {
        match v {
            Value::Const(c) => {
                if c.is_real() {
                    Ok(Src::Const(c.re))
                } else {
                    Err(VmError::ComplexConstant)
                }
            }
            Value::Int(i) => Ok(Src::Const(*i as f64)),
            Value::LoopIdx(lv) => Ok(Src::LoopF(lv.0)),
            Value::Place(Place::F(k)) => Ok(Src::F(*k)),
            Value::Place(Place::R(k)) => Ok(Src::RF(*k)),
            Value::Place(Place::Vec(vr)) => Ok(match vr.kind {
                VecKind::In => Src::In(addr_of(vr)),
                VecKind::Out => Src::Out(addr_of(vr)),
                VecKind::Temp(_) => Src::Temp(addr_of(vr)),
                VecKind::Table(_) => Src::Table(addr_of(vr)),
            }),
            Value::Intrinsic(_, _) => Err(VmError::Intrinsic),
        }
    };
    let isrc_of = |v: &Value| -> Result<ISrc, VmError> {
        match v {
            Value::Int(i) => Ok(ISrc::Const(*i)),
            Value::Const(c) if c.is_real() && c.re.fract() == 0.0 => Ok(ISrc::Const(c.re as i64)),
            Value::LoopIdx(lv) => Ok(ISrc::Loop(lv.0)),
            Value::Place(Place::R(k)) => Ok(ISrc::R(*k)),
            other => Err(VmError::NonIntegerOperand(format!("{other:?}"))),
        }
    };

    let mut code = Vec::with_capacity(prog.instrs.len());
    let mut loop_stack: Vec<(usize, u32, i64)> = Vec::new(); // (start_pc, var, hi)
    for ins in &prog.instrs {
        match ins {
            Instr::DoStart { var, lo, hi, .. } => {
                loop_stack.push((code.len(), var.0, *hi));
                code.push(Op::LoopStart {
                    var: var.0,
                    lo: *lo,
                    end_pc: usize::MAX, // patched at DoEnd
                    vec: prog.vec_loops.contains(&var.0),
                });
            }
            Instr::DoEnd => {
                let (start_pc, var, hi) = loop_stack.pop().ok_or(VmError::UnmatchedLoopEnd)?;
                let end_pc = code.len();
                code.push(Op::LoopEnd { var, hi, start_pc });
                if let Op::LoopStart { end_pc: e, .. } = &mut code[start_pc] {
                    *e = end_pc;
                }
            }
            Instr::Bin { op, dst, a, b } => {
                if let Place::R(k) = dst {
                    code.push(Op::IntBin {
                        op: *op,
                        dst: *k,
                        a: isrc_of(a)?,
                        b: isrc_of(b)?,
                    });
                } else {
                    code.push(Op::Bin {
                        op: *op,
                        dst: dst_of(dst)?,
                        a: src_of(a)?,
                        b: src_of(b)?,
                    });
                }
            }
            Instr::Un { op, dst, a } => {
                let neg = matches!(op, UnOp::Neg);
                if let Place::R(k) = dst {
                    code.push(Op::IntUn {
                        neg,
                        dst: *k,
                        a: isrc_of(a)?,
                    });
                } else {
                    code.push(Op::Un {
                        neg,
                        dst: dst_of(dst)?,
                        a: src_of(a)?,
                    });
                }
            }
        }
    }
    if !loop_stack.is_empty() {
        return Err(VmError::UnclosedLoop);
    }
    // Lowering emits exactly one op per instruction, so the i-code
    // provenance carries over index-for-index.
    let prov = prog.prov_slice().to_vec();
    debug_assert!(prov.is_empty() || prov.len() == prog.instrs.len());
    let mut vm = VmProgram {
        code,
        prov,
        prov_nodes: prog.prov_nodes.clone(),
        resolved: Err(Unsupported("unresolved")),
        n_in: prog.n_in,
        n_out: prog.n_out,
        temp_len,
        tables,
        n_f: prog.n_f as usize,
        n_r: prog.n_r as usize,
        n_loop: prog.n_loop as usize,
    };
    vm.resolved = resolve(&vm);
    Ok(vm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spl_compiler::{Compiler, CompilerOptions, OptLevel};
    use spl_numeric::{reference, Complex};

    fn compile(src: &str, opts: CompilerOptions) -> VmProgram {
        let mut c = Compiler::with_options(opts);
        let unit = c.compile_formula_str(src).unwrap();
        lower(&unit.program).unwrap()
    }

    fn run_complex(vm: &VmProgram, x: &[Complex]) -> Vec<Complex> {
        let flat = crate::convert::interleave(x);
        let mut y = vec![0.0; vm.n_out];
        let mut st = VmState::new(vm);
        vm.run(&flat, &mut y, &mut st);
        crate::convert::deinterleave(&y)
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 + 0.3).cos()))
            .collect()
    }

    #[test]
    fn butterfly_runs() {
        let vm = compile("(F 2)", CompilerOptions::default());
        let x = ramp(2);
        let y = run_complex(&vm, &x);
        let want = reference::dft(&x);
        for (a, b) in y.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-13));
        }
    }

    #[test]
    fn looped_fft_runs() {
        let src = "(compose (tensor (F 2) (I 4)) (T 8 4) (tensor (I 2) (compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))) (L 8 2))";
        let vm = compile(src, CompilerOptions::default());
        let x = ramp(8);
        let y = run_complex(&vm, &x);
        let want = reference::dft(&x);
        for (a, b) in y.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn unrolled_fft_runs() {
        let src = "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))";
        let vm = compile(
            src,
            CompilerOptions {
                unroll_threshold: Some(64),
                ..Default::default()
            },
        );
        let x = ramp(4);
        let y = run_complex(&vm, &x);
        let want = reference::dft(&x);
        for (a, b) in y.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-13));
        }
    }

    #[test]
    fn unoptimized_code_executes_integer_ops() {
        // OptLevel::None keeps $r computations and table reads.
        let vm = compile(
            "(F 4)",
            CompilerOptions {
                opt_level: OptLevel::None,
                ..Default::default()
            },
        );
        let x = ramp(4);
        let y = run_complex(&vm, &x);
        let want = reference::dft(&x);
        for (a, b) in y.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn all_opt_levels_agree_on_vm() {
        let src = "(compose (tensor (F 2) (I 4)) (T 8 4) (tensor (I 2) (F 4)) (L 8 2))";
        let x = ramp(8);
        let mut outs = Vec::new();
        for level in [OptLevel::None, OptLevel::ScalarTemps, OptLevel::Default] {
            let vm = compile(
                src,
                CompilerOptions {
                    opt_level: level,
                    ..Default::default()
                },
            );
            outs.push(run_complex(&vm, &x));
        }
        for o in &outs[1..] {
            for (a, b) in o.iter().zip(&outs[0]) {
                assert!(a.approx_eq(*b, 1e-12));
            }
        }
    }

    #[test]
    fn complex_ir_rejected() {
        let mut c = Compiler::new();
        let units = c
            .compile_source("#datatype complex\n#codetype complex\n(F 2)")
            .unwrap();
        assert!(lower(&units[0].program).is_err());
    }

    #[test]
    fn memory_accounting() {
        let vm = compile("(compose (F 4) (F 4))", CompilerOptions::default());
        // compose temp: 4 complex = 8 f64; plus a twiddle table.
        assert!(vm.memory_bytes() >= 8 * 8);
    }

    #[test]
    fn zero_trip_loops_execute_nothing() {
        use spl_icode::{Affine, Instr, LoopVar, Place, UnOp, Value, VecKind, VecRef};
        // Hand-built program with an (invalid-by-validate) empty loop;
        // lower it manually to check the executor's guard.
        let prog = spl_icode::IProgram {
            instrs: vec![
                Instr::DoStart {
                    var: LoopVar(0),
                    lo: 5,
                    hi: 2,
                    unroll: false,
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: Place::Vec(VecRef {
                        kind: VecKind::Out,
                        idx: Affine::constant(0),
                    }),
                    a: Value::Const(spl_numeric::Complex::real(9.0)),
                },
                Instr::DoEnd,
            ],
            n_in: 1,
            n_out: 1,
            n_loop: 1,
            complex: false,
            ..spl_icode::IProgram::empty()
        };
        let vm = lower(&prog).unwrap();
        let mut y = [0.0];
        vm.run(&[0.0], &mut y, &mut VmState::new(&vm));
        assert_eq!(y[0], 0.0, "zero-trip body must not execute");
    }

    #[test]
    fn unclosed_loop_rejected_by_lower() {
        use spl_icode::{Instr, LoopVar};
        let prog = spl_icode::IProgram {
            instrs: vec![Instr::DoStart {
                var: LoopVar(0),
                lo: 0,
                hi: 1,
                unroll: false,
            }],
            n_in: 1,
            n_out: 1,
            n_loop: 1,
            complex: false,
            ..spl_icode::IProgram::empty()
        };
        assert!(lower(&prog).is_err());
    }

    #[test]
    fn negative_reachable_address_rejected_by_lower() {
        use spl_icode::{Affine, Instr, LoopVar, Place, UnOp, Value, VecKind, VecRef};
        // out[i - 2] with i in 0..=3 reaches address -2: in release the
        // old executor would wrap this to a huge usize and panic at
        // slice indexing; lowering must reject it with a typed error.
        let prog = spl_icode::IProgram {
            instrs: vec![
                Instr::DoStart {
                    var: LoopVar(0),
                    lo: 0,
                    hi: 3,
                    unroll: false,
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: Place::Vec(VecRef {
                        kind: VecKind::Out,
                        idx: Affine {
                            c: -2,
                            terms: vec![(1, LoopVar(0))],
                        },
                    }),
                    a: Value::Const(spl_numeric::Complex::real(1.0)),
                },
                Instr::DoEnd,
            ],
            n_in: 4,
            n_out: 4,
            n_loop: 1,
            complex: false,
            ..spl_icode::IProgram::empty()
        };
        match lower(&prog) {
            Err(VmError::NegativeAddress(_)) => {}
            other => panic!("expected NegativeAddress, got {other:?}"),
        }
        // The same subscript shifted into range is accepted.
        let mut ok = prog;
        if let Instr::Un {
            dst: Place::Vec(vr),
            ..
        } = &mut ok.instrs[1]
        {
            vr.idx.c = 0;
        }
        assert!(lower(&ok).is_ok());
    }

    #[test]
    fn negative_address_under_zero_trip_loop_is_allowed() {
        use spl_icode::{Affine, Instr, LoopVar, Place, UnOp, Value, VecKind, VecRef};
        // The body never executes, so the hazard is unreachable — this
        // mirrors the executor's zero-trip guard.
        let prog = spl_icode::IProgram {
            instrs: vec![
                Instr::DoStart {
                    var: LoopVar(0),
                    lo: 5,
                    hi: 2,
                    unroll: false,
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: Place::Vec(VecRef {
                        kind: VecKind::Out,
                        idx: Affine::constant(-7),
                    }),
                    a: Value::Const(spl_numeric::Complex::real(1.0)),
                },
                Instr::DoEnd,
            ],
            n_in: 1,
            n_out: 1,
            n_loop: 1,
            complex: false,
            ..spl_icode::IProgram::empty()
        };
        let vm = lower(&prog).unwrap();
        let mut y = [0.0];
        vm.run(&[0.0], &mut y, &mut VmState::new(&vm));
        assert_eq!(y[0], 0.0);
    }

    #[test]
    fn resolved_engine_bit_identical_to_reference() {
        let sources = [
            "(F 2)",
            "(F 8)",
            "(compose (tensor (F 2) (I 4)) (T 8 4) (tensor (I 2) (compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))) (L 8 2))",
            "(compose (F 4) (F 4))",
        ];
        for src in sources {
            for level in [OptLevel::None, OptLevel::ScalarTemps, OptLevel::Default] {
                let vm = compile(
                    src,
                    CompilerOptions {
                        opt_level: level,
                        ..Default::default()
                    },
                );
                assert!(
                    vm.is_resolved(),
                    "{src} at {level:?} fell back: {:?}",
                    vm.resolve_fallback()
                );
                let x: Vec<f64> = (0..vm.n_in).map(|i| ((i as f64) * 0.7311).sin()).collect();
                let mut y_new = vec![0.0; vm.n_out];
                let mut y_ref = vec![0.0; vm.n_out];
                vm.run(&x, &mut y_new, &mut VmState::new(&vm));
                vm.run_reference(&x, &mut y_ref, &mut VmState::new(&vm));
                for (a, b) in y_new.iter().zip(&y_ref) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{src} at {level:?}: engines disagree"
                    );
                }
            }
        }
    }

    #[test]
    fn fusion_and_hoist_counters_are_reported() {
        // An 8-point FFT has butterflies and twiddle multiplications
        // feeding adds, and its looped form has strided subscripts —
        // all three fusion classes and the LSR counters should fire.
        let src = "(compose (tensor (F 2) (I 4)) (T 8 4) (tensor (I 2) (F 4)) (L 8 2))";
        let vm = compile(src, CompilerOptions::default());
        let stats = *vm.resolve_stats().expect("resolved");
        assert!(stats.fused_butterfly > 0, "{stats:?}");
        assert!(stats.fused_muladd > 0, "{stats:?}");
        assert!(stats.cursors > 0, "{stats:?}");
        assert!(stats.hoisted_terms > 0, "{stats:?}");
        let mut tel = spl_telemetry::Telemetry::new();
        stats.record(&mut tel);
        assert_eq!(
            tel.counter("vm.fuse.butterfly"),
            Some(stats.fused_butterfly)
        );
        assert_eq!(tel.counter("vm.lsr.cursors"), Some(stats.cursors));
    }

    #[test]
    fn aliased_butterfly_pattern_is_not_misfused() {
        use spl_icode::{Affine, BinOp, Instr, LoopVar, Place, Value, VecKind, VecRef};
        // t[0] = t[0] + t[1]; out[0] = t[0] - t[1]: the second op must
        // read the UPDATED t[0], so butterfly fusion (which reads each
        // operand once) would be wrong here. Both engines must agree.
        let t = |i: i64| {
            Place::Vec(VecRef {
                kind: VecKind::Temp(0),
                idx: Affine::constant(i),
            })
        };
        let out = |i: i64| {
            Place::Vec(VecRef {
                kind: VecKind::Out,
                idx: Affine::constant(i),
            })
        };
        let input = |i: i64| {
            Value::Place(Place::Vec(VecRef {
                kind: VecKind::In,
                idx: Affine::constant(i),
            }))
        };
        let prog = spl_icode::IProgram {
            instrs: vec![
                Instr::Un {
                    op: spl_icode::UnOp::Copy,
                    dst: t(0),
                    a: input(0),
                },
                Instr::Un {
                    op: spl_icode::UnOp::Copy,
                    dst: t(1),
                    a: input(1),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: t(0),
                    a: Value::Place(t(0)),
                    b: Value::Place(t(1)),
                },
                Instr::Bin {
                    op: BinOp::Sub,
                    dst: out(0),
                    a: Value::Place(t(0)),
                    b: Value::Place(t(1)),
                },
                Instr::Bin {
                    op: BinOp::Sub,
                    dst: out(1),
                    a: Value::Place(t(0)),
                    b: Value::Place(t(1)),
                },
            ],
            n_in: 2,
            n_out: 2,
            temps: vec![2],
            n_loop: 0,
            complex: false,
            ..spl_icode::IProgram::empty()
        };
        let _ = LoopVar(0);
        let vm = lower(&prog).unwrap();
        assert!(vm.is_resolved());
        let x = [3.0, 5.0];
        let mut y_new = [0.0; 2];
        let mut y_ref = [0.0; 2];
        vm.run(&x, &mut y_new, &mut VmState::new(&vm));
        vm.run_reference(&x, &mut y_ref, &mut VmState::new(&vm));
        assert_eq!(y_new, y_ref);
        assert_eq!(y_new, [3.0, 3.0]); // (3+5) - 5, twice
    }

    #[test]
    fn deep_nested_loops_stride_correctly() {
        use spl_icode::{Affine, Instr, LoopVar, Place, Value, VecKind, VecRef};
        // out[8i + 4j + k + 3 - (i + j + k)] over a 2x2x4 nest: mixed
        // strides, a shared subscript between two loops, and a negative
        // coefficient component. Compare engines bit-for-bit.
        let idx = Affine {
            c: 3,
            terms: vec![(7, LoopVar(0)), (3, LoopVar(1)), (0, LoopVar(2))],
        };
        let src_idx = Affine {
            c: 0,
            terms: vec![(8, LoopVar(0)), (4, LoopVar(1)), (1, LoopVar(2))],
        };
        let prog = spl_icode::IProgram {
            instrs: vec![
                Instr::DoStart {
                    var: LoopVar(0),
                    lo: 0,
                    hi: 1,
                    unroll: false,
                },
                Instr::DoStart {
                    var: LoopVar(1),
                    lo: 0,
                    hi: 1,
                    unroll: false,
                },
                Instr::DoStart {
                    var: LoopVar(2),
                    lo: 0,
                    hi: 3,
                    unroll: false,
                },
                Instr::Bin {
                    op: spl_icode::BinOp::Add,
                    dst: Place::Vec(VecRef {
                        kind: VecKind::Out,
                        idx,
                    }),
                    a: Value::Place(Place::Vec(VecRef {
                        kind: VecKind::In,
                        idx: src_idx,
                    })),
                    b: Value::Const(spl_numeric::Complex::real(0.5)),
                },
                Instr::DoEnd,
                Instr::DoEnd,
                Instr::DoEnd,
            ],
            n_in: 16,
            n_out: 16,
            n_loop: 3,
            complex: false,
            ..spl_icode::IProgram::empty()
        };
        let vm = lower(&prog).unwrap();
        assert!(vm.is_resolved(), "{:?}", vm.resolve_fallback());
        let x: Vec<f64> = (0..16).map(|i| (i as f64) * 1.5 - 3.0).collect();
        let mut y_new = vec![0.0; 16];
        let mut y_ref = vec![0.0; 16];
        vm.run(&x, &mut y_new, &mut VmState::new(&vm));
        vm.run_reference(&x, &mut y_ref, &mut VmState::new(&vm));
        assert_eq!(y_new, y_ref);
    }

    #[test]
    fn fma_mode_is_opt_in_and_still_close() {
        let src = "(compose (tensor (F 2) (I 4)) (T 8 4) (tensor (I 2) (F 4)) (L 8 2))";
        let mut vm = compile(src, CompilerOptions::default());
        let x: Vec<f64> = (0..vm.n_in).map(|i| ((i as f64) * 0.31).cos()).collect();
        let mut y_plain = vec![0.0; vm.n_out];
        vm.run(&x, &mut y_plain, &mut VmState::new(&vm));
        vm.set_fma(true);
        let mut y_fma = vec![0.0; vm.n_out];
        vm.run(&x, &mut y_fma, &mut VmState::new(&vm));
        for (a, b) in y_fma.iter().zip(&y_plain) {
            assert!((a - b).abs() <= 1e-12 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    /// Distance between two finite doubles in units in the last place,
    /// via the standard monotone mapping of the IEEE bit patterns.
    fn ulp_distance(a: f64, b: f64) -> u64 {
        fn ordered(x: f64) -> i64 {
            let bits = x.to_bits() as i64;
            if bits < 0 {
                i64::MIN.wrapping_sub(bits)
            } else {
                bits
            }
        }
        ordered(a).abs_diff(ordered(b))
    }

    #[test]
    fn fma_stays_within_documented_ulp_bound() {
        // FMA-on output must stay within FMA_MAX_ULPS of never-fused
        // output — the bound set_fma's docs promise and the fuzz
        // harness relies on when it pins FMA off for bit-exactness.
        for src in [
            "(compose (tensor (F 2) (I 4)) (T 8 4) (tensor (I 2) (F 4)) (L 8 2))",
            "(compose (tensor (F 4) (I 4)) (T 16 4) (tensor (I 4) (F 4)) (L 16 4))",
        ] {
            let mut vm = compile(src, CompilerOptions::default());
            let x: Vec<f64> = (0..vm.n_in).map(|i| ((i as f64) * 0.47).sin()).collect();
            let mut y_plain = vec![0.0; vm.n_out];
            vm.run(&x, &mut y_plain, &mut VmState::new(&vm));
            vm.set_fma(true);
            let mut y_fma = vec![0.0; vm.n_out];
            vm.run(&x, &mut y_fma, &mut VmState::new(&vm));
            for (i, (a, b)) in y_fma.iter().zip(&y_plain).enumerate() {
                let d = ulp_distance(*a, *b);
                assert!(
                    d <= crate::program::FMA_MAX_ULPS,
                    "{src}: output {i} drifts {d} ULPs ({a} vs {b})"
                );
            }
        }
    }

    #[test]
    fn float_and_int_op_counts_are_split() {
        // Unoptimized code keeps $r bookkeeping; the split counters
        // must not blend it into the float arithmetic count.
        let vm = compile(
            "(F 4)",
            CompilerOptions {
                opt_level: OptLevel::None,
                ..Default::default()
            },
        );
        assert!(vm.float_ops() > 0);
        assert!(vm.int_ops() > 0);
        let opt = compile("(F 4)", CompilerOptions::default());
        assert_eq!(opt.int_ops(), 0, "optimized code has no $r arithmetic");
        assert!(opt.float_ops() > 0);
    }

    #[test]
    fn profiled_run_is_bit_identical_and_telescopes() {
        let src = "(compose (tensor (F 2) (I 4)) (T 8 4) (tensor (I 2) (F 4)) (L 8 2))";
        let vm = compile(src, CompilerOptions::default());
        assert!(vm.is_resolved(), "{:?}", vm.resolve_fallback());
        let x: Vec<f64> = (0..vm.n_in).map(|i| ((i as f64) * 0.7311).sin()).collect();
        let mut y_prof = vec![0.0; vm.n_out];
        let mut y_ref = vec![0.0; vm.n_out];
        let prof = vm
            .run_profiled(&x, &mut y_prof, &mut VmState::new(&vm))
            .expect("resolved");
        vm.run(&x, &mut y_ref, &mut VmState::new(&vm));
        for (a, b) in y_prof.iter().zip(&y_ref) {
            assert_eq!(a.to_bits(), b.to_bits(), "profiled run changed results");
        }
        // Telescoping attribution: self times sum *exactly* to the
        // total, with nothing lost between clock reads.
        let sum: u128 = prof.nodes.iter().map(|n| n.self_ns).sum::<u128>() + prof.unattributed_ns;
        assert_eq!(sum, prof.total_ns);
        // Provenance survived the whole pipeline down to the VM.
        assert!(!prof.nodes.is_empty());
        assert!(prof.nodes.iter().any(|n| n.ops > 0));
        assert!(prof.flops() > 0);
        assert!(prof.fused_ops() > 0, "fused macro-ops executed");
        assert!(prof.fused_utilization() > 0.0);
        // The root subtree contains every attributed nanosecond.
        let incl = prof.inclusive_ns();
        assert_eq!(incl[0], prof.attributed_ns());
        // Loop blocks ran.
        assert!(!prof.loops.is_empty());
        assert!(prof.loops.iter().map(|l| l.iterations).sum::<u64>() > 0);
        // The JSON report round-trips through the parser.
        let js = prof.to_json().to_string();
        assert!(spl_telemetry::json::parse(&js).is_ok());
    }

    #[test]
    fn profiled_run_without_provenance_is_unattributed() {
        use spl_icode::{Affine, Instr, Place, UnOp, Value, VecKind, VecRef};
        let prog = spl_icode::IProgram {
            instrs: vec![Instr::Un {
                op: UnOp::Copy,
                dst: Place::Vec(VecRef {
                    kind: VecKind::Out,
                    idx: Affine::constant(0),
                }),
                a: Value::Const(spl_numeric::Complex::real(4.0)),
            }],
            n_in: 1,
            n_out: 1,
            complex: false,
            ..spl_icode::IProgram::empty()
        };
        let vm = lower(&prog).unwrap();
        let mut y = [0.0];
        let prof = vm
            .run_profiled(&[0.0], &mut y, &mut VmState::new(&vm))
            .expect("resolved");
        assert_eq!(y[0], 4.0);
        assert!(prof.nodes.is_empty());
        assert_eq!(prof.unattributed_ns, prof.total_ns);
        assert_eq!(prof.op_counts[4], 1, "one copy executed");
    }

    #[test]
    fn state_reuse_is_clean() {
        let vm = compile("(F 2)", CompilerOptions::default());
        let mut st = VmState::new(&vm);
        let x1 = crate::convert::interleave(&ramp(2));
        let mut y1 = vec![0.0; vm.n_out];
        vm.run(&x1, &mut y1, &mut st);
        let mut y2 = vec![0.0; vm.n_out];
        vm.run(&x1, &mut y2, &mut st);
        assert_eq!(y1, y2);
    }

    /// Serializes tests that flip the process-wide forced-scalar
    /// switch so they cannot race each other.
    fn force_scalar_lock() -> std::sync::MutexGuard<'static, ()> {
        crate::simd::override_lock()
    }

    /// A looped formula whose inner `⊗ I_m` loops the vectorize pass
    /// marks and the resolver plans.
    const VEC_SRC: &str = "(compose (tensor (F 2) (I 8)) (T 16 8) (tensor (I 2) (F 8)) (L 16 2))";

    #[test]
    fn vector_plans_engage_on_looped_tensor_code() {
        let vm = compile(VEC_SRC, CompilerOptions::default());
        let stats = *vm.resolve_stats().expect("resolved");
        assert!(stats.vec_loops > 0, "no loop was planned: {stats:?}");
        assert!(stats.vec_ops > 0, "{stats:?}");
        let mut tel = spl_telemetry::Telemetry::new();
        stats.record(&mut tel);
        assert_eq!(tel.counter("vm.vec.loops"), Some(stats.vec_loops));
        assert_eq!(tel.counter("vm.vec.demoted"), Some(stats.vec_demoted));
        assert_eq!(tel.counter("vm.vec.ops"), Some(stats.vec_ops));
    }

    #[test]
    fn forced_scalar_and_vector_execution_bit_identical() {
        let _g = force_scalar_lock();
        // Odd sizes exercise remainder lanes: trip counts that are not
        // multiples of any lane width (2 or 4) leave 1–3 scalar
        // iterations after the chunks.
        let sources = [
            VEC_SRC,
            "(tensor (F 2) (I 3))",
            "(tensor (F 2) (I 5))",
            "(tensor (F 2) (I 7))",
            "(compose (F 4) (F 4))",
        ];
        for src in sources {
            let vm = compile(src, CompilerOptions::default());
            assert!(vm.is_resolved(), "{src}: {:?}", vm.resolve_fallback());
            let x: Vec<f64> = (0..vm.n_in).map(|i| ((i as f64) * 1.37).cos()).collect();
            let mut y_vec = vec![0.0; vm.n_out];
            let mut y_sca = vec![0.0; vm.n_out];
            let mut y_ref = vec![0.0; vm.n_out];
            crate::simd::set_force_scalar(false);
            vm.run(&x, &mut y_vec, &mut VmState::new(&vm));
            crate::simd::set_force_scalar(true);
            vm.run(&x, &mut y_sca, &mut VmState::new(&vm));
            crate::simd::set_force_scalar(false);
            vm.run_reference(&x, &mut y_ref, &mut VmState::new(&vm));
            for i in 0..vm.n_out {
                assert_eq!(
                    y_vec[i].to_bits(),
                    y_sca[i].to_bits(),
                    "{src}: vector vs forced-scalar at {i}"
                );
                assert_eq!(
                    y_vec[i].to_bits(),
                    y_ref[i].to_bits(),
                    "{src}: vector vs reference at {i}"
                );
            }
        }
    }

    #[test]
    fn zero_trip_vec_hinted_loop_is_demoted_and_skipped() {
        use spl_icode::{Affine, Instr, LoopVar, Place, UnOp, Value, VecKind, VecRef};
        // A (bogus) lane-safety mark on a zero-trip loop: the resolver
        // must demote it, and the body must still never execute.
        let prog = spl_icode::IProgram {
            instrs: vec![
                Instr::DoStart {
                    var: LoopVar(0),
                    lo: 5,
                    hi: 2,
                    unroll: false,
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: Place::Vec(VecRef {
                        kind: VecKind::Out,
                        idx: Affine {
                            c: 0,
                            terms: vec![(1, LoopVar(0))],
                        },
                    }),
                    a: Value::Const(spl_numeric::Complex::real(9.0)),
                },
                Instr::DoEnd,
            ],
            n_in: 1,
            n_out: 1,
            n_loop: 1,
            complex: false,
            vec_loops: vec![0],
            ..spl_icode::IProgram::empty()
        };
        let vm = lower(&prog).unwrap();
        let stats = *vm.resolve_stats().expect("resolved");
        assert_eq!(stats.vec_loops, 0, "{stats:?}");
        assert_eq!(stats.vec_demoted, 1, "{stats:?}");
        let mut y = [0.0];
        vm.run(&[0.0], &mut y, &mut VmState::new(&vm));
        assert_eq!(y[0], 0.0, "zero-trip body must not execute");
    }

    #[test]
    fn cross_iteration_alias_hint_is_demoted_not_trusted() {
        use spl_icode::{Affine, BinOp, Instr, LoopVar, Place, Value, VecKind, VecRef};
        // out[i+1] = out[i] + in[i]: a loop-carried recurrence behind
        // aliased subscripts, wrongly marked lane-safe. The resolver
        // must demote the hint and both engines must agree.
        let vec = |kind: VecKind, c: i64| {
            Place::Vec(VecRef {
                kind,
                idx: Affine {
                    c,
                    terms: vec![(1, LoopVar(0))],
                },
            })
        };
        let prog = spl_icode::IProgram {
            instrs: vec![
                Instr::DoStart {
                    var: LoopVar(0),
                    lo: 0,
                    hi: 5,
                    unroll: false,
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: vec(VecKind::Out, 1),
                    a: Value::Place(vec(VecKind::Out, 0)),
                    b: Value::Place(vec(VecKind::In, 0)),
                },
                Instr::DoEnd,
            ],
            n_in: 7,
            n_out: 7,
            n_loop: 1,
            complex: false,
            vec_loops: vec![0],
            ..spl_icode::IProgram::empty()
        };
        let vm = lower(&prog).unwrap();
        let stats = *vm.resolve_stats().expect("resolved");
        assert_eq!(stats.vec_loops, 0, "recurrence must not be planned");
        assert_eq!(stats.vec_demoted, 1, "{stats:?}");
        let x: Vec<f64> = (0..7).map(|i| i as f64 + 1.0).collect();
        let mut y_new = vec![0.0; 7];
        let mut y_ref = vec![0.0; 7];
        vm.run(&x, &mut y_new, &mut VmState::new(&vm));
        vm.run_reference(&x, &mut y_ref, &mut VmState::new(&vm));
        assert_eq!(y_new, y_ref);
    }

    #[test]
    fn profiled_run_counts_vector_lane_ops() {
        let _g = force_scalar_lock();
        crate::simd::set_force_scalar(false);
        if crate::simd::width() == 0 {
            return; // no vector backend on this target
        }
        let vm = compile(VEC_SRC, CompilerOptions::default());
        assert!(vm.resolve_stats().unwrap().vec_loops > 0);
        let x: Vec<f64> = (0..vm.n_in).map(|i| (i as f64 * 0.11).sin()).collect();
        let mut y = vec![0.0; vm.n_out];
        let mut y_ref = vec![0.0; vm.n_out];
        let prof = vm
            .run_profiled(&x, &mut y, &mut VmState::new(&vm))
            .expect("resolved");
        vm.run_reference(&x, &mut y_ref, &mut VmState::new(&vm));
        for (a, b) in y.iter().zip(&y_ref) {
            assert_eq!(a.to_bits(), b.to_bits(), "profiled vector run diverged");
        }
        assert!(
            prof.vector_lane_ops() > 0,
            "vector classes did not count: {:?}",
            prof.op_counts
        );
        // Lane-op counting keeps totals width-independent: the same
        // program forced scalar reports identical float-op and flop
        // totals, just binned into the scalar classes.
        crate::simd::set_force_scalar(true);
        let mut y2 = vec![0.0; vm.n_out];
        let prof_scalar = vm
            .run_profiled(&x, &mut y2, &mut VmState::new(&vm))
            .expect("resolved");
        crate::simd::set_force_scalar(false);
        assert_eq!(prof_scalar.vector_lane_ops(), 0);
        assert_eq!(prof.float_ops(), prof_scalar.float_ops());
        assert_eq!(prof.flops(), prof_scalar.flops());
    }
}
