//! Lowering real-typed i-code to a flat VM program, and its executor.

use std::error::Error;
use std::fmt;

use spl_icode::{Affine, BinOp, IProgram, Instr, Place, UnOp, Value, VecKind, VecRef};

/// A lowering or execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmError(pub String);

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm: {}", self.0)
    }
}

impl Error for VmError {}

/// A runtime address: `base + Σ coeff·loop[slot]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Addr {
    base: i64,
    terms: Vec<(i64, u32)>,
}

impl Addr {
    fn from_affine(a: &Affine) -> Addr {
        Addr {
            base: a.c,
            terms: a.terms.iter().map(|&(c, lv)| (c, lv.0)).collect(),
        }
    }

    #[inline]
    fn eval(&self, loops: &[i64]) -> usize {
        let mut v = self.base;
        for &(c, slot) in &self.terms {
            v += c * loops[slot as usize];
        }
        debug_assert!(v >= 0);
        v as usize
    }
}

/// A floating-point source operand.
#[derive(Debug, Clone, PartialEq)]
pub enum Src {
    /// Input vector element.
    In(Addr),
    /// Output vector element (accumulations read back the output).
    Out(Addr),
    /// Temporary arena element (address already includes the temp's
    /// arena offset).
    Temp(Addr),
    /// Constant-table element (address includes the table's offset).
    Table(Addr),
    /// An `$f` register.
    F(u32),
    /// An immediate.
    Const(f64),
    /// An `$r` register read as a float (unoptimized code only).
    RF(u32),
    /// A loop variable read as a float (unoptimized code only).
    LoopF(u32),
}

/// A floating-point destination.
#[derive(Debug, Clone, PartialEq)]
pub enum Dst {
    /// Output vector element.
    Out(Addr),
    /// Temporary arena element.
    Temp(Addr),
    /// An `$f` register.
    F(u32),
}

/// An integer source operand (for `$r` arithmetic in unoptimized code).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ISrc {
    /// Immediate.
    Const(i64),
    /// `$r` register.
    R(u32),
    /// Loop variable.
    Loop(u32),
}

/// A VM operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `dst = a op b` over `f64`.
    Bin {
        /// Operator.
        op: BinOp,
        /// Destination.
        dst: Dst,
        /// Left operand.
        a: Src,
        /// Right operand.
        b: Src,
    },
    /// `dst = a` or `dst = -a`.
    Un {
        /// `true` negates.
        neg: bool,
        /// Destination.
        dst: Dst,
        /// Operand.
        a: Src,
    },
    /// `r[dst] = a op b` over `i64`.
    IntBin {
        /// Operator.
        op: BinOp,
        /// Destination register index.
        dst: u32,
        /// Left operand.
        a: ISrc,
        /// Right operand.
        b: ISrc,
    },
    /// `r[dst] = ±a`.
    IntUn {
        /// `true` negates.
        neg: bool,
        /// Destination register index.
        dst: u32,
        /// Operand.
        a: ISrc,
    },
    /// Loop header: initializes `loop[var] = lo`; `end_pc` indexes the
    /// matching [`Op::LoopEnd`].
    LoopStart {
        /// Loop variable slot.
        var: u32,
        /// Initial value.
        lo: i64,
        /// Index of the matching end.
        end_pc: usize,
    },
    /// Loop latch: increments and jumps back while `loop[var] < hi`.
    LoopEnd {
        /// Loop variable slot.
        var: u32,
        /// Final value (inclusive).
        hi: i64,
        /// Index of the matching start.
        start_pc: usize,
    },
}

/// A lowered, executable program.
#[derive(Debug, Clone, PartialEq)]
pub struct VmProgram {
    code: Vec<Op>,
    /// Input vector length (in `f64` words).
    pub n_in: usize,
    /// Output vector length (in `f64` words).
    pub n_out: usize,
    /// Total temporary arena length.
    pub temp_len: usize,
    /// Flattened constant tables.
    pub tables: Vec<f64>,
    /// `$f` register count.
    pub n_f: usize,
    /// `$r` register count.
    pub n_r: usize,
    /// Loop-variable count.
    pub n_loop: usize,
}

impl VmProgram {
    /// The operations (read-only view, for inspection in tests/benches).
    pub fn code(&self) -> &[Op] {
        &self.code
    }

    /// Bytes of state the program needs beyond input and output: the
    /// temporary arena, constant tables, and registers. This is the
    /// "memory required to run the code" of the paper's Figure 5.
    pub fn memory_bytes(&self) -> usize {
        (self.temp_len + self.tables.len() + self.n_f) * std::mem::size_of::<f64>()
            + self.n_r * std::mem::size_of::<i64>()
            + self.n_loop * std::mem::size_of::<i64>()
    }

    /// Static operation count (loop bodies counted once).
    pub fn static_ops(&self) -> usize {
        self.code
            .iter()
            .filter(|op| !matches!(op, Op::LoopStart { .. } | Op::LoopEnd { .. }))
            .count()
    }

    /// Executes the program.
    ///
    /// Like the Fortran the code generator emits, temporary storage is
    /// *static*: a reused [`VmState`] keeps temp contents across calls
    /// (well-formed generated code writes every temp element before
    /// reading it, so this is unobservable there).
    ///
    /// # Panics
    ///
    /// Panics if `x`/`y` lengths do not match `n_in`/`n_out`, on
    /// out-of-bounds subscripts (slice bounds), or on integer division
    /// by zero — the VM trusts programs that passed `IProgram::validate`
    /// and has no error channel on the hot path; use the i-code
    /// interpreter when you need checked execution.
    pub fn run(&self, x: &[f64], y: &mut [f64], st: &mut VmState) {
        assert_eq!(x.len(), self.n_in, "input length mismatch");
        assert_eq!(y.len(), self.n_out, "output length mismatch");
        let code = &self.code[..];
        let loops = &mut st.loops[..];
        let f = &mut st.f[..];
        let r = &mut st.r[..];
        let temps = &mut st.temps[..];
        let tables = &self.tables[..];

        macro_rules! src {
            ($s:expr) => {
                match $s {
                    Src::In(a) => x[a.eval(loops)],
                    Src::Out(a) => y[a.eval(loops)],
                    Src::Temp(a) => temps[a.eval(loops)],
                    Src::Table(a) => tables[a.eval(loops)],
                    Src::F(k) => f[*k as usize],
                    Src::Const(c) => *c,
                    Src::RF(k) => r[*k as usize] as f64,
                    Src::LoopF(k) => loops[*k as usize] as f64,
                }
            };
        }
        macro_rules! isrc {
            ($s:expr) => {
                match $s {
                    ISrc::Const(c) => *c,
                    ISrc::R(k) => r[*k as usize],
                    ISrc::Loop(k) => loops[*k as usize],
                }
            };
        }

        let mut pc = 0usize;
        while pc < code.len() {
            match &code[pc] {
                Op::Bin { op, dst, a, b } => {
                    let av = src!(a);
                    let bv = src!(b);
                    let v = match op {
                        BinOp::Add => av + bv,
                        BinOp::Sub => av - bv,
                        BinOp::Mul => av * bv,
                        BinOp::Div => av / bv,
                    };
                    match dst {
                        Dst::Out(a) => y[a.eval(loops)] = v,
                        Dst::Temp(a) => temps[a.eval(loops)] = v,
                        Dst::F(k) => f[*k as usize] = v,
                    }
                    pc += 1;
                }
                Op::Un { neg, dst, a } => {
                    let av = src!(a);
                    let v = if *neg { -av } else { av };
                    match dst {
                        Dst::Out(a) => y[a.eval(loops)] = v,
                        Dst::Temp(a) => temps[a.eval(loops)] = v,
                        Dst::F(k) => f[*k as usize] = v,
                    }
                    pc += 1;
                }
                Op::IntBin { op, dst, a, b } => {
                    let av = isrc!(a);
                    let bv = isrc!(b);
                    r[*dst as usize] = match op {
                        BinOp::Add => av + bv,
                        BinOp::Sub => av - bv,
                        BinOp::Mul => av * bv,
                        BinOp::Div => av / bv,
                    };
                    pc += 1;
                }
                Op::IntUn { neg, dst, a } => {
                    let av = isrc!(a);
                    r[*dst as usize] = if *neg { -av } else { av };
                    pc += 1;
                }
                Op::LoopStart { var, lo, end_pc } => {
                    // Zero-trip loops (possible only in hand-built
                    // programs; the compiler never emits them) skip to
                    // the matching end, exactly like the interpreter.
                    let hi = match &code[*end_pc] {
                        Op::LoopEnd { hi, .. } => *hi,
                        _ => unreachable!("end_pc points at the LoopEnd"),
                    };
                    if *lo > hi {
                        pc = *end_pc + 1;
                    } else {
                        loops[*var as usize] = *lo;
                        pc += 1;
                    }
                }
                Op::LoopEnd { var, hi, start_pc } => {
                    let v = loops[*var as usize] + 1;
                    if v <= *hi {
                        loops[*var as usize] = v;
                        pc = start_pc + 1;
                    } else {
                        pc += 1;
                    }
                }
            }
        }
    }
}

/// Reusable mutable execution state (registers, loop counters, temporary
/// arena).
#[derive(Debug, Clone)]
pub struct VmState {
    f: Vec<f64>,
    r: Vec<i64>,
    loops: Vec<i64>,
    temps: Vec<f64>,
}

impl VmState {
    /// Allocates state sized for a program.
    pub fn new(prog: &VmProgram) -> VmState {
        VmState {
            f: vec![0.0; prog.n_f],
            r: vec![0; prog.n_r],
            loops: vec![0; prog.n_loop],
            temps: vec![0.0; prog.temp_len],
        }
    }
}

/// Lowers a *real-typed* i-code program (after type transformation) to a
/// VM program.
///
/// # Errors
///
/// Fails on complex programs, surviving intrinsics, or operands the VM
/// cannot encode.
pub fn lower(prog: &IProgram) -> Result<VmProgram, VmError> {
    if prog.complex {
        return Err(VmError(
            "the VM executes real-typed programs; run the type transformation first".into(),
        ));
    }
    // Flatten temps and tables into single arenas.
    let mut temp_offsets = Vec::with_capacity(prog.temps.len());
    let mut temp_len = 0usize;
    for &t in &prog.temps {
        temp_offsets.push(temp_len);
        temp_len += t;
    }
    let mut table_offsets = Vec::with_capacity(prog.tables.len());
    let mut tables = Vec::new();
    for t in &prog.tables {
        table_offsets.push(tables.len());
        tables.extend(t.iter().map(|c| c.re));
    }

    let addr_of = |v: &VecRef| -> Addr {
        let mut a = Addr::from_affine(&v.idx);
        match v.kind {
            VecKind::Temp(t) => a.base += temp_offsets[t as usize] as i64,
            VecKind::Table(t) => a.base += table_offsets[t as usize] as i64,
            _ => {}
        }
        a
    };
    let dst_of = |p: &Place| -> Result<Dst, VmError> {
        match p {
            Place::F(k) => Ok(Dst::F(*k)),
            Place::Vec(v) => match v.kind {
                VecKind::Out => Ok(Dst::Out(addr_of(v))),
                VecKind::Temp(_) => Ok(Dst::Temp(addr_of(v))),
                VecKind::In | VecKind::Table(_) => Err(VmError("write to read-only vector".into())),
            },
            Place::R(_) => Err(VmError("integer destination in float op".into())),
        }
    };
    let src_of = |v: &Value| -> Result<Src, VmError> {
        match v {
            Value::Const(c) => {
                if c.is_real() {
                    Ok(Src::Const(c.re))
                } else {
                    Err(VmError("complex constant in real program".into()))
                }
            }
            Value::Int(i) => Ok(Src::Const(*i as f64)),
            Value::LoopIdx(lv) => Ok(Src::LoopF(lv.0)),
            Value::Place(Place::F(k)) => Ok(Src::F(*k)),
            Value::Place(Place::R(k)) => Ok(Src::RF(*k)),
            Value::Place(Place::Vec(vr)) => Ok(match vr.kind {
                VecKind::In => Src::In(addr_of(vr)),
                VecKind::Out => Src::Out(addr_of(vr)),
                VecKind::Temp(_) => Src::Temp(addr_of(vr)),
                VecKind::Table(_) => Src::Table(addr_of(vr)),
            }),
            Value::Intrinsic(_, _) => Err(VmError(
                "intrinsics must be evaluated before lowering".into(),
            )),
        }
    };
    let isrc_of = |v: &Value| -> Result<ISrc, VmError> {
        match v {
            Value::Int(i) => Ok(ISrc::Const(*i)),
            Value::Const(c) if c.is_real() && c.re.fract() == 0.0 => Ok(ISrc::Const(c.re as i64)),
            Value::LoopIdx(lv) => Ok(ISrc::Loop(lv.0)),
            Value::Place(Place::R(k)) => Ok(ISrc::R(*k)),
            other => Err(VmError(format!("operand {other:?} is not an integer"))),
        }
    };

    let mut code = Vec::with_capacity(prog.instrs.len());
    let mut loop_stack: Vec<(usize, u32, i64)> = Vec::new(); // (start_pc, var, hi)
    for ins in &prog.instrs {
        match ins {
            Instr::DoStart { var, lo, hi, .. } => {
                loop_stack.push((code.len(), var.0, *hi));
                code.push(Op::LoopStart {
                    var: var.0,
                    lo: *lo,
                    end_pc: usize::MAX, // patched at DoEnd
                });
            }
            Instr::DoEnd => {
                let (start_pc, var, hi) = loop_stack
                    .pop()
                    .ok_or_else(|| VmError("unmatched end".into()))?;
                let end_pc = code.len();
                code.push(Op::LoopEnd { var, hi, start_pc });
                if let Op::LoopStart { end_pc: e, .. } = &mut code[start_pc] {
                    *e = end_pc;
                }
            }
            Instr::Bin { op, dst, a, b } => {
                if let Place::R(k) = dst {
                    code.push(Op::IntBin {
                        op: *op,
                        dst: *k,
                        a: isrc_of(a)?,
                        b: isrc_of(b)?,
                    });
                } else {
                    code.push(Op::Bin {
                        op: *op,
                        dst: dst_of(dst)?,
                        a: src_of(a)?,
                        b: src_of(b)?,
                    });
                }
            }
            Instr::Un { op, dst, a } => {
                let neg = matches!(op, UnOp::Neg);
                if let Place::R(k) = dst {
                    code.push(Op::IntUn {
                        neg,
                        dst: *k,
                        a: isrc_of(a)?,
                    });
                } else {
                    code.push(Op::Un {
                        neg,
                        dst: dst_of(dst)?,
                        a: src_of(a)?,
                    });
                }
            }
        }
    }
    if !loop_stack.is_empty() {
        return Err(VmError("unclosed loop at end of program".into()));
    }
    Ok(VmProgram {
        code,
        n_in: prog.n_in,
        n_out: prog.n_out,
        temp_len,
        tables,
        n_f: prog.n_f as usize,
        n_r: prog.n_r as usize,
        n_loop: prog.n_loop as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spl_compiler::{Compiler, CompilerOptions, OptLevel};
    use spl_numeric::{reference, Complex};

    fn compile(src: &str, opts: CompilerOptions) -> VmProgram {
        let mut c = Compiler::with_options(opts);
        let unit = c.compile_formula_str(src).unwrap();
        lower(&unit.program).unwrap()
    }

    fn run_complex(vm: &VmProgram, x: &[Complex]) -> Vec<Complex> {
        let flat = crate::convert::interleave(x);
        let mut y = vec![0.0; vm.n_out];
        let mut st = VmState::new(vm);
        vm.run(&flat, &mut y, &mut st);
        crate::convert::deinterleave(&y)
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 + 0.3).cos()))
            .collect()
    }

    #[test]
    fn butterfly_runs() {
        let vm = compile("(F 2)", CompilerOptions::default());
        let x = ramp(2);
        let y = run_complex(&vm, &x);
        let want = reference::dft(&x);
        for (a, b) in y.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-13));
        }
    }

    #[test]
    fn looped_fft_runs() {
        let src = "(compose (tensor (F 2) (I 4)) (T 8 4) (tensor (I 2) (compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))) (L 8 2))";
        let vm = compile(src, CompilerOptions::default());
        let x = ramp(8);
        let y = run_complex(&vm, &x);
        let want = reference::dft(&x);
        for (a, b) in y.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn unrolled_fft_runs() {
        let src = "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))";
        let vm = compile(
            src,
            CompilerOptions {
                unroll_threshold: Some(64),
                ..Default::default()
            },
        );
        let x = ramp(4);
        let y = run_complex(&vm, &x);
        let want = reference::dft(&x);
        for (a, b) in y.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-13));
        }
    }

    #[test]
    fn unoptimized_code_executes_integer_ops() {
        // OptLevel::None keeps $r computations and table reads.
        let vm = compile(
            "(F 4)",
            CompilerOptions {
                opt_level: OptLevel::None,
                ..Default::default()
            },
        );
        let x = ramp(4);
        let y = run_complex(&vm, &x);
        let want = reference::dft(&x);
        for (a, b) in y.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn all_opt_levels_agree_on_vm() {
        let src = "(compose (tensor (F 2) (I 4)) (T 8 4) (tensor (I 2) (F 4)) (L 8 2))";
        let x = ramp(8);
        let mut outs = Vec::new();
        for level in [OptLevel::None, OptLevel::ScalarTemps, OptLevel::Default] {
            let vm = compile(
                src,
                CompilerOptions {
                    opt_level: level,
                    ..Default::default()
                },
            );
            outs.push(run_complex(&vm, &x));
        }
        for o in &outs[1..] {
            for (a, b) in o.iter().zip(&outs[0]) {
                assert!(a.approx_eq(*b, 1e-12));
            }
        }
    }

    #[test]
    fn complex_ir_rejected() {
        let mut c = Compiler::new();
        let units = c
            .compile_source("#datatype complex\n#codetype complex\n(F 2)")
            .unwrap();
        assert!(lower(&units[0].program).is_err());
    }

    #[test]
    fn memory_accounting() {
        let vm = compile("(compose (F 4) (F 4))", CompilerOptions::default());
        // compose temp: 4 complex = 8 f64; plus a twiddle table.
        assert!(vm.memory_bytes() >= 8 * 8);
    }

    #[test]
    fn zero_trip_loops_execute_nothing() {
        use spl_icode::{Affine, Instr, LoopVar, Place, UnOp, Value, VecKind, VecRef};
        // Hand-built program with an (invalid-by-validate) empty loop;
        // lower it manually to check the executor's guard.
        let prog = spl_icode::IProgram {
            instrs: vec![
                Instr::DoStart {
                    var: LoopVar(0),
                    lo: 5,
                    hi: 2,
                    unroll: false,
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: Place::Vec(VecRef {
                        kind: VecKind::Out,
                        idx: Affine::constant(0),
                    }),
                    a: Value::Const(spl_numeric::Complex::real(9.0)),
                },
                Instr::DoEnd,
            ],
            n_in: 1,
            n_out: 1,
            n_loop: 1,
            complex: false,
            ..spl_icode::IProgram::empty()
        };
        let vm = lower(&prog).unwrap();
        let mut y = [0.0];
        vm.run(&[0.0], &mut y, &mut VmState::new(&vm));
        assert_eq!(y[0], 0.0, "zero-trip body must not execute");
    }

    #[test]
    fn unclosed_loop_rejected_by_lower() {
        use spl_icode::{Instr, LoopVar};
        let prog = spl_icode::IProgram {
            instrs: vec![Instr::DoStart {
                var: LoopVar(0),
                lo: 0,
                hi: 1,
                unroll: false,
            }],
            n_in: 1,
            n_out: 1,
            n_loop: 1,
            complex: false,
            ..spl_icode::IProgram::empty()
        };
        assert!(lower(&prog).is_err());
    }

    #[test]
    fn state_reuse_is_clean() {
        let vm = compile("(F 2)", CompilerOptions::default());
        let mut st = VmState::new(&vm);
        let x1 = crate::convert::interleave(&ramp(2));
        let mut y1 = vec![0.0; vm.n_out];
        vm.run(&x1, &mut y1, &mut st);
        let mut y2 = vec![0.0; vm.n_out];
        vm.run(&x1, &mut y2, &mut st);
        assert_eq!(y1, y2);
    }
}
