//! Runtime-detected f64 SIMD lane backends for the resolved engine's
//! vector path.
//!
//! The resolved engine executes loops the compiler's `vectorize` pass
//! marked lane-safe in chunks of `W` iterations, all lanes of one
//! resolved op at a time (see `resolved::VecPlan`). This module
//! supplies the lane arithmetic: a [`Lanes`] implementation per
//! target — SSE2 (2×f64, the x86-64 baseline), AVX (4×f64, behind
//! `is_x86_feature_detected!`), and NEON (2×f64, the aarch64
//! baseline) — selected once at runtime and cached.
//!
//! Every backend performs exactly the IEEE-754 double operations the
//! scalar engine performs (adds, subs, muls, divs, sign flips — all
//! correctly rounded, never fused), so vector execution is
//! **bit-identical** to scalar execution by construction; the
//! differential tests in `spl-fuzz` assert this on every target.
//!
//! The scalar fallback can be forced for testing: programmatically via
//! [`set_force_scalar`], or for a whole process via the
//! `SPL_VM_FORCE_SCALAR` environment variable (any non-empty value
//! other than `0`). When forced, [`active`] reports
//! [`Backend::Scalar`] and the engine runs every loop through the
//! ordinary scalar body path.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The widest lane count any backend exposes (AVX: 4 × f64). Plan
/// verification in `resolved` treats alias distances at or beyond
/// this as always crossing a chunk boundary.
pub(crate) const MAX_VEC_WIDTH: usize = 4;

/// A vector execution backend, as reported by [`active`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// No vector path: unsupported target or scalar execution forced.
    Scalar,
    /// SSE2, 2 × f64 (baseline on x86-64).
    #[cfg(target_arch = "x86_64")]
    Sse2,
    /// AVX, 4 × f64 (runtime-detected).
    #[cfg(target_arch = "x86_64")]
    Avx,
    /// NEON, 2 × f64 (baseline on aarch64).
    #[cfg(target_arch = "aarch64")]
    Neon,
}

static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

fn env_force() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("SPL_VM_FORCE_SCALAR")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// Whether the scalar fallback is currently forced (programmatically
/// or via `SPL_VM_FORCE_SCALAR`).
pub fn force_scalar() -> bool {
    FORCE_SCALAR.load(Ordering::Relaxed) || env_force()
}

/// Forces (or un-forces) the scalar fallback for subsequent runs.
///
/// Used by the differential harnesses to compare vector and scalar
/// execution of the same program. Scalar and vector paths are
/// bit-identical, so flipping this concurrently with a run is benign —
/// it only affects which (equivalent) path later loops take. The
/// environment-variable force cannot be un-forced.
pub fn set_force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// Lane-width cap applied on top of detection (0 = uncapped).
static MAX_WIDTH: AtomicUsize = AtomicUsize::new(0);

/// Caps the lane width [`active`] may pick: `Some(2)` demotes AVX to
/// the width-2 baseline backend, `Some(1)` (or less) forces scalar,
/// `None` removes the cap. `vmbench` uses this to measure every
/// width the hardware supports; bit-exactness makes flipping it
/// mid-process benign.
pub fn set_max_width(w: Option<usize>) {
    MAX_WIDTH.store(w.unwrap_or(0), Ordering::Relaxed);
}

/// Serializes tests (across the crate) that flip the process-wide
/// overrides above, so concurrent tests cannot observe each other's
/// settings.
#[cfg(test)]
pub(crate) fn override_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn max_width() -> usize {
    let w = MAX_WIDTH.load(Ordering::Relaxed);
    if w != 0 {
        return w;
    }
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("SPL_VM_MAX_WIDTH")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    })
}

/// The backend the hardware supports, detected once and cached.
fn detected() -> Backend {
    static DET: OnceLock<Backend> = OnceLock::new();
    *DET.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx") {
                return Backend::Avx;
            }
            // SSE2 is part of the x86-64 baseline.
            return Backend::Sse2;
        }
        #[cfg(target_arch = "aarch64")]
        {
            // NEON (with f64 lanes) is part of the aarch64 baseline.
            return Backend::Neon;
        }
        #[allow(unreachable_code)]
        Backend::Scalar
    })
}

/// The backend the engine will use right now: the detected one,
/// narrowed by [`set_max_width`] / `SPL_VM_MAX_WIDTH`, or
/// [`Backend::Scalar`] when the fallback is forced.
pub fn active() -> Backend {
    if force_scalar() {
        return Backend::Scalar;
    }
    let det = detected();
    let cap = max_width();
    if cap == 0 {
        return det;
    }
    if cap < 2 {
        return Backend::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    if det == Backend::Avx && cap < 4 {
        return Backend::Sse2;
    }
    det
}

/// The active lane width in f64 elements: 0 (no vector path), 2, or 4.
pub fn width() -> usize {
    match active() {
        Backend::Scalar => 0,
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => 2,
        #[cfg(target_arch = "x86_64")]
        Backend::Avx => 4,
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => 2,
    }
}

/// Short human-readable name of the active backend (telemetry, bench
/// reports).
pub fn backend_name() -> &'static str {
    match active() {
        Backend::Scalar => "scalar",
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => "sse2",
        #[cfg(target_arch = "x86_64")]
        Backend::Avx => "avx",
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => "neon",
    }
}

/// `W` f64 lanes and the operations the vector plan executor needs.
///
/// Contract: every arithmetic method performs lane-wise exactly the
/// IEEE-754 binary64 operation its name says (correctly rounded,
/// no fusing, `neg` a pure sign flip), so results are bit-identical
/// to scalar execution.
pub(crate) trait Lanes {
    /// Lane count.
    const W: usize;
    /// The vector value type.
    type V: Copy;
    /// All lanes set to `x`.
    fn splat(x: f64) -> Self::V;
    /// Loads lane `l` from `base + l·stride` (stride in elements;
    /// `stride == 0` splats `*base`).
    ///
    /// # Safety
    ///
    /// Every lane address must be in bounds of the allocation.
    unsafe fn load(base: *const f64, stride: i64) -> Self::V;
    /// Stores lane `l` to `base + l·stride`.
    ///
    /// # Safety
    ///
    /// Every lane address must be in bounds, and `stride != 0`.
    unsafe fn store(base: *mut f64, stride: i64, v: Self::V);
    /// Lane-wise `a + b`.
    fn add(a: Self::V, b: Self::V) -> Self::V;
    /// Lane-wise `a - b`.
    fn sub(a: Self::V, b: Self::V) -> Self::V;
    /// Lane-wise `a * b`.
    fn mul(a: Self::V, b: Self::V) -> Self::V;
    /// Lane-wise `a / b`.
    fn div(a: Self::V, b: Self::V) -> Self::V;
    /// Lane-wise sign flip.
    fn neg(a: Self::V) -> Self::V;
    /// Extracts lane `l`.
    fn lane(v: Self::V, l: usize) -> f64;
}

#[cfg(target_arch = "x86_64")]
pub(crate) struct Sse2;

#[cfg(target_arch = "x86_64")]
impl Lanes for Sse2 {
    const W: usize = 2;
    type V = core::arch::x86_64::__m128d;

    #[inline(always)]
    fn splat(x: f64) -> Self::V {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        unsafe { core::arch::x86_64::_mm_set1_pd(x) }
    }

    #[inline(always)]
    unsafe fn load(base: *const f64, stride: i64) -> Self::V {
        use core::arch::x86_64::*;
        if stride == 1 {
            _mm_loadu_pd(base)
        } else if stride == 0 {
            _mm_set1_pd(*base)
        } else {
            // `_mm_set_pd` takes (high lane, low lane).
            _mm_set_pd(*base.offset(stride as isize), *base)
        }
    }

    #[inline(always)]
    unsafe fn store(base: *mut f64, stride: i64, v: Self::V) {
        use core::arch::x86_64::*;
        if stride == 1 {
            _mm_storeu_pd(base, v);
        } else {
            *base = Self::lane(v, 0);
            *base.offset(stride as isize) = Self::lane(v, 1);
        }
    }

    #[inline(always)]
    fn add(a: Self::V, b: Self::V) -> Self::V {
        unsafe { core::arch::x86_64::_mm_add_pd(a, b) }
    }

    #[inline(always)]
    fn sub(a: Self::V, b: Self::V) -> Self::V {
        unsafe { core::arch::x86_64::_mm_sub_pd(a, b) }
    }

    #[inline(always)]
    fn mul(a: Self::V, b: Self::V) -> Self::V {
        unsafe { core::arch::x86_64::_mm_mul_pd(a, b) }
    }

    #[inline(always)]
    fn div(a: Self::V, b: Self::V) -> Self::V {
        unsafe { core::arch::x86_64::_mm_div_pd(a, b) }
    }

    #[inline(always)]
    fn neg(a: Self::V) -> Self::V {
        // XOR with the sign mask: an exact sign flip, like scalar `-x`
        // (0.0 - x would mishandle signed zeros).
        unsafe { core::arch::x86_64::_mm_xor_pd(a, Self::splat(-0.0)) }
    }

    #[inline(always)]
    fn lane(v: Self::V, l: usize) -> f64 {
        // SAFETY: __m128d and [f64; 2] have identical layout.
        let a: [f64; 2] = unsafe { core::mem::transmute(v) };
        a[l]
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) struct Avx;

#[cfg(target_arch = "x86_64")]
impl Lanes for Avx {
    const W: usize = 4;
    type V = core::arch::x86_64::__m256d;

    // SAFETY (whole impl): AVX intrinsics are only reached through the
    // `#[target_feature(enable = "avx")]` entry point in `resolved`,
    // which the dispatcher calls only when `Backend::Avx` was
    // runtime-detected; all methods are `#[inline(always)]` so they
    // compile inside that feature-enabled frame.

    #[inline(always)]
    fn splat(x: f64) -> Self::V {
        unsafe { core::arch::x86_64::_mm256_set1_pd(x) }
    }

    #[inline(always)]
    unsafe fn load(base: *const f64, stride: i64) -> Self::V {
        use core::arch::x86_64::*;
        if stride == 1 {
            _mm256_loadu_pd(base)
        } else if stride == 0 {
            _mm256_set1_pd(*base)
        } else {
            let s = stride as isize;
            _mm256_setr_pd(
                *base,
                *base.offset(s),
                *base.offset(2 * s),
                *base.offset(3 * s),
            )
        }
    }

    #[inline(always)]
    unsafe fn store(base: *mut f64, stride: i64, v: Self::V) {
        use core::arch::x86_64::*;
        if stride == 1 {
            _mm256_storeu_pd(base, v);
        } else {
            let a: [f64; 4] = core::mem::transmute(v);
            let s = stride as isize;
            *base = a[0];
            *base.offset(s) = a[1];
            *base.offset(2 * s) = a[2];
            *base.offset(3 * s) = a[3];
        }
    }

    #[inline(always)]
    fn add(a: Self::V, b: Self::V) -> Self::V {
        unsafe { core::arch::x86_64::_mm256_add_pd(a, b) }
    }

    #[inline(always)]
    fn sub(a: Self::V, b: Self::V) -> Self::V {
        unsafe { core::arch::x86_64::_mm256_sub_pd(a, b) }
    }

    #[inline(always)]
    fn mul(a: Self::V, b: Self::V) -> Self::V {
        unsafe { core::arch::x86_64::_mm256_mul_pd(a, b) }
    }

    #[inline(always)]
    fn div(a: Self::V, b: Self::V) -> Self::V {
        unsafe { core::arch::x86_64::_mm256_div_pd(a, b) }
    }

    #[inline(always)]
    fn neg(a: Self::V) -> Self::V {
        unsafe { core::arch::x86_64::_mm256_xor_pd(a, Self::splat(-0.0)) }
    }

    #[inline(always)]
    fn lane(v: Self::V, l: usize) -> f64 {
        // SAFETY: __m256d and [f64; 4] have identical layout.
        let a: [f64; 4] = unsafe { core::mem::transmute(v) };
        a[l]
    }
}

#[cfg(target_arch = "aarch64")]
pub(crate) struct Neon;

#[cfg(target_arch = "aarch64")]
impl Lanes for Neon {
    const W: usize = 2;
    type V = core::arch::aarch64::float64x2_t;

    // SAFETY (whole impl): NEON with f64 lanes is part of the aarch64
    // baseline.

    #[inline(always)]
    fn splat(x: f64) -> Self::V {
        unsafe { core::arch::aarch64::vdupq_n_f64(x) }
    }

    #[inline(always)]
    unsafe fn load(base: *const f64, stride: i64) -> Self::V {
        use core::arch::aarch64::*;
        if stride == 1 {
            vld1q_f64(base)
        } else if stride == 0 {
            vdupq_n_f64(*base)
        } else {
            let a = [*base, *base.offset(stride as isize)];
            vld1q_f64(a.as_ptr())
        }
    }

    #[inline(always)]
    unsafe fn store(base: *mut f64, stride: i64, v: Self::V) {
        use core::arch::aarch64::*;
        if stride == 1 {
            vst1q_f64(base, v);
        } else {
            *base = Self::lane(v, 0);
            *base.offset(stride as isize) = Self::lane(v, 1);
        }
    }

    #[inline(always)]
    fn add(a: Self::V, b: Self::V) -> Self::V {
        unsafe { core::arch::aarch64::vaddq_f64(a, b) }
    }

    #[inline(always)]
    fn sub(a: Self::V, b: Self::V) -> Self::V {
        unsafe { core::arch::aarch64::vsubq_f64(a, b) }
    }

    #[inline(always)]
    fn mul(a: Self::V, b: Self::V) -> Self::V {
        unsafe { core::arch::aarch64::vmulq_f64(a, b) }
    }

    #[inline(always)]
    fn div(a: Self::V, b: Self::V) -> Self::V {
        unsafe { core::arch::aarch64::vdivq_f64(a, b) }
    }

    #[inline(always)]
    fn neg(a: Self::V) -> Self::V {
        unsafe { core::arch::aarch64::vnegq_f64(a) }
    }

    #[inline(always)]
    fn lane(v: Self::V, l: usize) -> f64 {
        use core::arch::aarch64::*;
        unsafe {
            match l {
                0 => vgetq_lane_f64::<0>(v),
                _ => vgetq_lane_f64::<1>(v),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_matches_backend() {
        let _g = override_lock();
        match active() {
            Backend::Scalar => assert_eq!(width(), 0),
            #[cfg(target_arch = "x86_64")]
            Backend::Sse2 => assert_eq!(width(), 2),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx => assert_eq!(width(), 4),
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => assert_eq!(width(), 2),
        }
        assert!(width() <= MAX_VEC_WIDTH);
    }

    #[test]
    fn force_scalar_round_trips() {
        let _g = override_lock();
        let before = force_scalar();
        set_force_scalar(true);
        assert_eq!(active(), Backend::Scalar);
        assert_eq!(width(), 0);
        set_force_scalar(before);
    }

    #[test]
    fn max_width_caps_the_backend() {
        let _g = override_lock();
        set_max_width(Some(1));
        assert_eq!(active(), Backend::Scalar);
        set_max_width(Some(2));
        assert!(width() <= 2);
        set_max_width(None);
        let full = width();
        assert!(full == 0 || full >= 2);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse2_lane_ops_are_exact() {
        let a = [1.5f64, -2.25];
        let b = [0.25f64, 4.0];
        let va = unsafe { Sse2::load(a.as_ptr(), 1) };
        let vb = unsafe { Sse2::load(b.as_ptr(), 1) };
        let sum = Sse2::add(va, vb);
        for l in 0..2 {
            assert_eq!(Sse2::lane(sum, l).to_bits(), (a[l] + b[l]).to_bits());
        }
        // neg is a sign flip, exact on signed zero.
        let z = Sse2::neg(Sse2::splat(0.0));
        assert_eq!(Sse2::lane(z, 0).to_bits(), (-0.0f64).to_bits());
        // Strided store scatters to the right cells.
        let mut out = [0.0f64; 4];
        unsafe { Sse2::store(out.as_mut_ptr(), 2, sum) };
        assert_eq!(out[0], a[0] + b[0]);
        assert_eq!(out[2], a[1] + b[1]);
        assert_eq!(out[1], 0.0);
    }
}
