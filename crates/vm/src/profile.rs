//! Profiled-execution reports for the resolved engine.
//!
//! [`crate::VmProgram::run_profiled`] executes a resolved program
//! through a separate instrumented interpreter (the unprofiled hot
//! path is untouched) and returns a [`VmProfile`]: dynamic per-op-class
//! counts, flop counts, fused-macro-op utilization, per-loop-block
//! iteration and wall-time figures, and — when the program carries
//! formula-node provenance — per-node self time, ops, and flops.
//!
//! Node attribution uses *telescoping* timestamps: the clock is read
//! only when execution crosses from one formula node to another, and
//! each interval is credited in full to exactly one node. Self times
//! therefore sum exactly to [`VmProfile::total_ns`] by construction.

use spl_icode::ProvNode;
use spl_telemetry::json::Json;
use spl_telemetry::Telemetry;

/// Number of dynamic op classes the profiler distinguishes.
pub const N_OP_CLASSES: usize = 24;

/// First slot of the vector (lane-wide) op classes; `v<name>` at
/// `VEC_CLASS_BASE + k` is the lane-wide counterpart of the scalar
/// class at slot `k`.
pub const VEC_CLASS_BASE: usize = 14;

/// Op-class slot names, indexing [`VmProfile::op_counts`].
pub const OP_CLASS_NAMES: [&str; N_OP_CLASSES] = [
    "add",
    "sub",
    "mul",
    "div",
    "copy",
    "neg",
    "muladd",
    "mulsub",
    "negmuladd",
    "butterfly",
    "r_to_cell",
    "loop_to_cell",
    "int_bin",
    "int_un",
    "vadd",
    "vsub",
    "vmul",
    "vdiv",
    "vcopy",
    "vneg",
    "vmuladd",
    "vmulsub",
    "vnegmuladd",
    "vbutterfly",
];

/// Floating-point operations contributed by one counted execution of
/// each op class (a fused multiply–add counts 2, a butterfly 2, a
/// copy 0). Vector classes are counted *per lane* — one count per
/// iteration covered — so their per-count flop weights equal the
/// scalar ones and run totals match scalar execution exactly.
pub const OP_CLASS_FLOPS: [u64; N_OP_CLASSES] = [
    1, 1, 1, 1, 0, 1, 2, 2, 2, 2, 0, 0, 0, 0, // scalar
    1, 1, 1, 1, 0, 1, 2, 2, 2, 2, // vector (per lane)
];

/// Slots of the fused macro-op classes (muladd family + butterfly).
const FUSED_CLASSES: std::ops::Range<usize> = 6..10;
/// Slots of all float-arithmetic classes (scalar + fused).
const FLOAT_CLASSES: std::ops::Range<usize> = 0..10;
/// Slots of the lane-wide op classes.
const VEC_CLASSES: std::ops::Range<usize> = VEC_CLASS_BASE..N_OP_CLASSES;
/// Slots of the lane-wide fused classes (vmuladd family +
/// vbutterfly).
const VEC_FUSED_CLASSES: std::ops::Range<usize> = VEC_CLASS_BASE + 6..VEC_CLASS_BASE + 10;

/// Cost attributed to one formula node (self figures only; see
/// [`VmProfile::inclusive_ns`] for subtree rollups).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeCost {
    /// The formula fragment this node was expanded from.
    pub label: String,
    /// Parent node id (`None` at the formula root).
    pub parent: Option<u32>,
    /// Wall time spent in ops attributed to this node, excluding
    /// descendants.
    pub self_ns: u128,
    /// Floating-point operations executed under this node.
    pub flops: u64,
    /// Resolved ops executed under this node.
    pub ops: u64,
}

/// Dynamic figures for one loop block of the resolved program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopBlock {
    /// Resolved-node index of the loop header.
    pub node: u32,
    /// Nesting depth (0 = outermost).
    pub depth: u32,
    /// Times the header was reached.
    pub entries: u64,
    /// Total body executions across all entries.
    pub iterations: u64,
    /// Inclusive wall time across all entries (contains inner loops).
    pub wall_ns: u128,
}

/// A profiled-execution report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmProfile {
    /// Total instrumented wall time: the telescoped interval from the
    /// first op to the last (node self times sum to exactly this).
    pub total_ns: u128,
    /// Time not attributable to any formula node (programs without
    /// provenance put everything here).
    pub unattributed_ns: u128,
    /// Dynamic execution count per op class, indexed like
    /// [`OP_CLASS_NAMES`].
    pub op_counts: [u64; N_OP_CLASSES],
    /// Per-formula-node costs, indexed by provenance id.
    pub nodes: Vec<NodeCost>,
    /// Per-loop-block figures, outermost first in program order.
    pub loops: Vec<LoopBlock>,
}

impl VmProfile {
    /// Total floating-point operations executed.
    pub fn flops(&self) -> u64 {
        self.op_counts
            .iter()
            .zip(OP_CLASS_FLOPS)
            .map(|(&c, w)| c * w)
            .sum()
    }

    /// Dynamic float-arithmetic macro-ops executed (fused ops count
    /// once each; vector classes count one per lane, i.e. per covered
    /// iteration, so this total is width-independent).
    pub fn float_ops(&self) -> u64 {
        self.op_counts[FLOAT_CLASSES].iter().sum::<u64>()
            + self.op_counts[VEC_CLASSES].iter().sum::<u64>()
    }

    /// Dynamic fused macro-ops executed (multiply–add family and
    /// butterflies, scalar and lane-wide).
    pub fn fused_ops(&self) -> u64 {
        self.op_counts[FUSED_CLASSES].iter().sum::<u64>()
            + self.op_counts[VEC_FUSED_CLASSES].iter().sum::<u64>()
    }

    /// Dynamic lane-ops executed through vector plans (one per
    /// iteration each lane-wide macro-op covered).
    pub fn vector_lane_ops(&self) -> u64 {
        self.op_counts[VEC_CLASSES].iter().sum()
    }

    /// Fraction of executed float macro-ops that ran lane-wide, in
    /// `0.0..=1.0` (0 when no float ops ran).
    pub fn vector_utilization(&self) -> f64 {
        let total = self.float_ops();
        if total == 0 {
            0.0
        } else {
            self.vector_lane_ops() as f64 / total as f64
        }
    }

    /// Fraction of executed float macro-ops that are fused, in
    /// `0.0..=1.0` (0 when no float ops ran).
    pub fn fused_utilization(&self) -> f64 {
        let total = self.float_ops();
        if total == 0 {
            0.0
        } else {
            self.fused_ops() as f64 / total as f64
        }
    }

    /// Wall time attributed to formula nodes (total minus
    /// unattributed).
    pub fn attributed_ns(&self) -> u128 {
        self.total_ns - self.unattributed_ns
    }

    /// Inclusive per-node wall time: each node's self time plus all
    /// its descendants', indexed by provenance id. Children always
    /// have larger ids than their parents (expansion order), so one
    /// reverse sweep suffices.
    pub fn inclusive_ns(&self) -> Vec<u128> {
        let mut incl: Vec<u128> = self.nodes.iter().map(|n| n.self_ns).collect();
        for id in (0..self.nodes.len()).rev() {
            if let Some(p) = self.nodes[id].parent {
                incl[p as usize] += incl[id];
            }
        }
        incl
    }

    /// Records summary figures into a telemetry sink under `prof.*`.
    pub fn record(&self, tel: &mut Telemetry) {
        tel.add("prof.ops", self.op_counts.iter().sum::<u64>());
        tel.add("prof.float_ops", self.float_ops());
        tel.add("prof.fused_ops", self.fused_ops());
        tel.add("prof.vec_lane_ops", self.vector_lane_ops());
        tel.add("prof.flops", self.flops());
        tel.add(
            "prof.wall_ns",
            u64::try_from(self.total_ns).unwrap_or(u64::MAX),
        );
        tel.add(
            "prof.unattributed_ns",
            u64::try_from(self.unattributed_ns).unwrap_or(u64::MAX),
        );
        tel.add("prof.nodes", self.nodes.len() as u64);
        tel.add("prof.loops", self.loops.len() as u64);
        tel.set_metric("prof.fused_utilization", self.fused_utilization());
        tel.set_metric("prof.vec_utilization", self.vector_utilization());
    }

    /// The full report as JSON.
    pub fn to_json(&self) -> Json {
        let incl = self.inclusive_ns();
        let op_counts = Json::Obj(
            OP_CLASS_NAMES
                .iter()
                .zip(self.op_counts)
                .filter(|&(_, c)| c > 0)
                .map(|(&n, c)| (n.to_string(), Json::Num(c as f64)))
                .collect(),
        );
        let nodes = Json::Arr(
            self.nodes
                .iter()
                .enumerate()
                .map(|(id, n)| {
                    Json::obj(vec![
                        ("id", Json::Num(id as f64)),
                        ("label", Json::Str(n.label.clone())),
                        (
                            "parent",
                            n.parent.map_or(Json::Null, |p| Json::Num(p as f64)),
                        ),
                        ("self_ns", Json::Num(n.self_ns as f64)),
                        ("incl_ns", Json::Num(incl[id] as f64)),
                        ("flops", Json::Num(n.flops as f64)),
                        ("ops", Json::Num(n.ops as f64)),
                    ])
                })
                .collect(),
        );
        let loops = Json::Arr(
            self.loops
                .iter()
                .map(|l| {
                    Json::obj(vec![
                        ("node", Json::Num(l.node as f64)),
                        ("depth", Json::Num(l.depth as f64)),
                        ("entries", Json::Num(l.entries as f64)),
                        ("iterations", Json::Num(l.iterations as f64)),
                        ("wall_ns", Json::Num(l.wall_ns as f64)),
                    ])
                })
                .collect(),
        );
        Json::obj(vec![
            ("total_ns", Json::Num(self.total_ns as f64)),
            ("unattributed_ns", Json::Num(self.unattributed_ns as f64)),
            ("flops", Json::Num(self.flops() as f64)),
            ("float_ops", Json::Num(self.float_ops() as f64)),
            ("fused_ops", Json::Num(self.fused_ops() as f64)),
            ("fused_utilization", Json::Num(self.fused_utilization())),
            ("vec_lane_ops", Json::Num(self.vector_lane_ops() as f64)),
            ("vec_utilization", Json::Num(self.vector_utilization())),
            ("op_counts", op_counts),
            ("nodes", nodes),
            ("loops", loops),
        ])
    }
}

/// Builds the node-cost table from raw per-id accumulators and the
/// provenance node table (crate-internal; called by the profiled
/// interpreter).
pub(crate) fn build_nodes(
    prov_nodes: &[ProvNode],
    self_ns: &[u128],
    flops: &[u64],
    ops: &[u64],
) -> Vec<NodeCost> {
    prov_nodes
        .iter()
        .enumerate()
        .map(|(id, pn)| NodeCost {
            label: pn.label.clone(),
            parent: (pn.parent != ProvNode::ROOT).then_some(pn.parent),
            self_ns: self_ns.get(id).copied().unwrap_or(0),
            flops: flops.get(id).copied().unwrap_or(0),
            ops: ops.get(id).copied().unwrap_or(0),
        })
        .collect()
}
