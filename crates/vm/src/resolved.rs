//! The resolved execution engine: peephole fusion + loop strength
//! reduction over the flat VM program.
//!
//! [`resolve`] lowers a [`VmProgram`]'s op list one stage further than
//! [`crate::lower`]:
//!
//! 1. **Fusion** (peephole, in source order): negate folding
//!    (`t = -s; d = x ± t` becomes a single add/sub), multiply–add
//!    fusion (`t = a·b; d = t ± c` or `d = c − t` becomes one
//!    macro-op), and butterfly pairing (`d1 = a + b; d2 = a − b`
//!    becomes one macro-op that reads each operand once). Every
//!    rewrite preserves the exact sequence of f64 roundings, so fused
//!    execution is bit-identical to the reference executor (see
//!    [`ResolvedProgram::set_fma`] for the one documented exception).
//! 2. **Loop strength reduction**: every operand becomes a *cursor* —
//!    an index into one unified `f64` arena holding the `$f`
//!    registers, constant tables, immediates, input, output, and
//!    temporaries. Cursors are initialized once per run (with all
//!    loop-invariant address components folded in) and advanced by
//!    precomputed per-loop strides at each loop latch, so the hot
//!    path never evaluates an affine subscript and never dispatches
//!    on operand kind.
//! 3. **Block-structured loops**: counted loops run as native `for`
//!    loops over their body range — trip handling lives outside the
//!    op dispatch entirely.
//!
//! Programs the resolver cannot prove safe (subscripts referencing
//! out-of-scope loop variables, address ranges that leave their
//! region, arithmetic overflow in stride precomputation) stay
//! unresolved; [`VmProgram::run`] then falls back to the checked
//! reference executor, preserving the old observable behavior.
//!
//! 4. **Vector plans**: for loops the compiler's `vectorize` pass
//!    marked lane-safe, the resolver independently re-verifies safety
//!    at the cursor level and attaches a [`VecPlan`] — the loop body
//!    as lane-wide macro-ops. Execution then runs `width()` iterations
//!    per chunk through [`crate::simd`], falling back to the scalar
//!    body for the remainder (and entirely, when the fallback is
//!    forced or FMA mode is on). Vector execution performs the exact
//!    same IEEE-754 operations as scalar execution, so it stays
//!    bit-identical to the reference executor. Hints that fail
//!    re-verification are silently demoted (counted in
//!    `vm.vec.demoted`) — the mark is advisory, never trusted.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use spl_icode::{BinOp, ProvNode};
use spl_telemetry::Telemetry;

use crate::profile::{build_nodes, LoopBlock, VmProfile, N_OP_CLASSES, VEC_CLASS_BASE};
use crate::program::{Addr, Dst, ISrc, Op, Src, VmProgram, VmState};
use crate::simd::{self, Lanes, MAX_VEC_WIDTH};

/// Counters from fusion and loop strength reduction, reported through
/// `spl-telemetry` as `vm.fuse.*` / `vm.lsr.*`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolveStats {
    /// `mul`+`add`/`sub` pairs fused into multiply–add macro-ops.
    pub fused_muladd: u64,
    /// Negations folded into a following add/sub.
    pub fused_negfold: u64,
    /// `(a+b, a−b)` pairs fused into butterfly macro-ops.
    pub fused_butterfly: u64,
    /// Address cursors materialized (one per distinct operand per
    /// loop context).
    pub cursors: u64,
    /// Per-loop stride increments registered on loop latches.
    pub strength_reduced_steps: u64,
    /// Affine subscript terms hoisted out of per-access evaluation.
    pub hoisted_terms: u64,
    /// Compiler-hinted loops the resolver verified and planned for
    /// lane-wide execution.
    pub vec_loops: u64,
    /// Compiler hints demoted to scalar execution because resolver-side
    /// re-verification could not prove lane safety.
    pub vec_demoted: u64,
    /// Lane-wide macro-ops across all vector plans (static count).
    pub vec_ops: u64,
}

impl ResolveStats {
    /// Records the counters into a telemetry sink.
    pub fn record(&self, tel: &mut Telemetry) {
        tel.add("vm.fuse.muladd", self.fused_muladd);
        tel.add("vm.fuse.negfold", self.fused_negfold);
        tel.add("vm.fuse.butterfly", self.fused_butterfly);
        tel.add("vm.lsr.cursors", self.cursors);
        tel.add("vm.lsr.steps", self.strength_reduced_steps);
        tel.add("vm.lsr.hoisted_terms", self.hoisted_terms);
        tel.add("vm.vec.loops", self.vec_loops);
        tel.add("vm.vec.demoted", self.vec_demoted);
        tel.add("vm.vec.ops", self.vec_ops);
    }
}

/// Why a program stayed on the reference executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unsupported(pub(crate) &'static str);

/// An integer operand of a rare-path resolved op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RI {
    Const(i64),
    R(u32),
    Loop(u32),
}

/// A resolved operation. All `u32` float operands are *cursor*
/// indices; the cursor holds the current arena cell of the operand.
#[derive(Debug, Clone, PartialEq)]
enum ROp {
    Add {
        d: u32,
        a: u32,
        b: u32,
    },
    Sub {
        d: u32,
        a: u32,
        b: u32,
    },
    Mul {
        d: u32,
        a: u32,
        b: u32,
    },
    Div {
        d: u32,
        a: u32,
        b: u32,
    },
    Copy {
        d: u32,
        a: u32,
    },
    Neg {
        d: u32,
        a: u32,
    },
    /// `d = a·b + c`.
    MulAdd {
        d: u32,
        a: u32,
        b: u32,
        c: u32,
    },
    /// `d = a·b − c`.
    MulSub {
        d: u32,
        a: u32,
        b: u32,
        c: u32,
    },
    /// `d = c − a·b`.
    NegMulAdd {
        d: u32,
        a: u32,
        b: u32,
        c: u32,
    },
    /// `d1 = a + b; d2 = a − b` with one read of each operand.
    Butterfly {
        d1: u32,
        d2: u32,
        a: u32,
        b: u32,
    },
    /// Spills `r[r_idx] as f64` into the scratch cell behind cursor
    /// `d` (rare, unoptimized code only).
    RToCell {
        d: u32,
        r_idx: u32,
    },
    /// Spills `loop[slot] as f64` into the scratch cell behind `d`.
    LoopToCell {
        d: u32,
        slot: u32,
    },
    IntBin {
        op: BinOp,
        dst: u32,
        a: RI,
        b: RI,
    },
    IntUn {
        neg: bool,
        dst: u32,
        a: RI,
    },
}

/// A node of the block-structured program.
#[derive(Debug, Clone, PartialEq)]
enum RNode {
    Op(ROp),
    /// A counted loop; its body is `nodes[self+1 .. end]`.
    Loop {
        /// Trip count (0 for a zero-trip loop: body skipped).
        trips: u64,
        /// Loop-variable slot (maintained only when the program reads
        /// loop variables as values).
        var: u32,
        /// Initial loop-variable value.
        lo: i64,
        /// Index one past the last body node.
        end: u32,
        /// Range into [`ResolvedProgram::steps`]: the cursor strides
        /// applied at this loop's latch.
        steps: (u32, u32),
        /// Index into [`ResolvedProgram::vec_plans`] when the resolver
        /// verified this loop for lane-wide execution.
        vec: Option<u32>,
    },
}

/// Upper bound on `$f` registers promoted to lane registers per
/// vector plan (past it the hint is demoted). The fully unrolled
/// 64-point leaf body holds ~1400 live registers, so the cap sits
/// well above that; plans at or below [`SMALL_LANE_CELLS`] run from
/// a stack buffer, larger ones (entered a handful of times per run)
/// from a per-entry heap buffer.
const MAX_LANE_CELLS: usize = 2048;

/// Lane-register count up to which the chunk executors use a fixed
/// stack buffer instead of allocating.
const SMALL_LANE_CELLS: usize = 64;

/// Where a lane-wide operand's lanes come from.
#[derive(Debug, Clone, Copy, PartialEq)]
enum VSrc {
    /// Lane `l` reads `arena[cur[c] + l·s]`; `s == 0` broadcasts a
    /// loop-invariant cell (constant, read-only `$f` register, or
    /// invariant subscript).
    Mem { c: u32, s: i64 },
    /// An iteration-private `$f` register promoted to a lane register.
    Lane(u16),
}

/// Where a lane-wide result goes (same encoding as [`VSrc`]; memory
/// destinations always have `s ≥ 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
enum VDst {
    /// Lane `l` writes `arena[cur[c] + l·s]`.
    Mem { c: u32, s: i64 },
    /// An iteration-private `$f` register promoted to a lane register.
    Lane(u16),
}

/// A lane-wide macro-op: the vector counterpart of the float [`ROp`]s,
/// executing one scalar op across `W` consecutive iterations at once.
#[derive(Debug, Clone, PartialEq)]
enum VecOp {
    Add {
        d: VDst,
        a: VSrc,
        b: VSrc,
    },
    Sub {
        d: VDst,
        a: VSrc,
        b: VSrc,
    },
    Mul {
        d: VDst,
        a: VSrc,
        b: VSrc,
    },
    Div {
        d: VDst,
        a: VSrc,
        b: VSrc,
    },
    Copy {
        d: VDst,
        a: VSrc,
    },
    Neg {
        d: VDst,
        a: VSrc,
    },
    /// `d = a·b + c` (two roundings, like the scalar non-FMA path).
    MulAdd {
        d: VDst,
        a: VSrc,
        b: VSrc,
        c: VSrc,
    },
    /// `d = a·b − c`.
    MulSub {
        d: VDst,
        a: VSrc,
        b: VSrc,
        c: VSrc,
    },
    /// `d = c − a·b`.
    NegMulAdd {
        d: VDst,
        a: VSrc,
        b: VSrc,
        c: VSrc,
    },
    /// `d1 = a + b; d2 = a − b`.
    Butterfly {
        d1: VDst,
        d2: VDst,
        a: VSrc,
        b: VSrc,
    },
}

/// A verified lane-wide execution plan for one counted loop: the body
/// re-expressed as [`VecOp`]s, executed op-major over chunks of `W`
/// consecutive iterations. Additive — the scalar body nodes stay in
/// place for remainder iterations and the forced-scalar fallback.
#[derive(Debug, Clone, PartialEq, Default)]
struct VecPlan {
    ops: Vec<VecOp>,
    /// Formula-node provenance per vector op (parallel to `ops`, or
    /// empty when the program carries none).
    prov: Vec<u32>,
    /// Cursors of the `$f` cells promoted to lane registers, indexed
    /// by lane-register id; lane `W−1` is written back to the arena
    /// after the chunks so trailing scalar code observes the value the
    /// last iteration left.
    lane_cells: Vec<u32>,
}

/// A fully resolved, fused, block-structured program.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ResolvedProgram {
    nodes: Vec<RNode>,
    /// Formula-node provenance per resolved node (parallel to `nodes`,
    /// or empty when the program carries none). Read only by the
    /// profiled interpreter.
    node_prov: Vec<u32>,
    /// Flat `(cursor, delta)` stride table, sliced per loop.
    steps: Vec<(u32, i64)>,
    /// Per-cursor initial arena index (memcpy'd into the state at the
    /// start of every run).
    init_cursors: Vec<i64>,
    /// `(cell, value)` pairs preset in a fresh arena: constant tables
    /// and immediates.
    arena_init: Vec<(u32, f64)>,
    arena_len: usize,
    in_off: usize,
    n_in: usize,
    out_off: usize,
    n_out: usize,
    /// Whether loop-variable values are observable (via `LoopF` /
    /// integer ops); if not, latches skip maintaining them.
    track_loops: bool,
    /// Use hardware fused multiply–add for the MulAdd family. Off by
    /// default: single-rounding FMA is *not* bit-identical to the
    /// reference executor.
    fma: bool,
    /// Minimum `$r` / loop-variable state sizes this program touches;
    /// checked once per [`ResolvedProgram::run`] so the unchecked hot
    /// loop cannot be handed an undersized state.
    need_r: usize,
    need_loop: usize,
    /// Verified lane-wide plans, indexed by `RNode::Loop::vec`.
    vec_plans: Vec<VecPlan>,
    stats: ResolveStats,
}

impl ResolvedProgram {
    pub(crate) fn stats(&self) -> &ResolveStats {
        &self.stats
    }

    pub(crate) fn set_fma(&mut self, on: bool) {
        self.fma = on;
    }

    /// Builds a fresh arena with tables and immediates preset.
    pub(crate) fn fresh_arena(&self) -> Vec<f64> {
        let mut arena = vec![0.0; self.arena_len];
        for &(cell, v) in &self.arena_init {
            arena[cell as usize] = v;
        }
        arena
    }

    pub(crate) fn init_cursors(&self) -> &[i64] {
        &self.init_cursors
    }

    /// Executes the resolved program. State contract matches the
    /// reference executor: temporaries and `$f` registers persist
    /// across calls (inside the arena), input and output are copied
    /// through the arena windows each call.
    pub(crate) fn run(&self, x: &[f64], y: &mut [f64], st: &mut VmState) {
        // These checks are what makes the unchecked indexing in
        // `exec_op` sound: the cursor table must be exactly ours (the
        // `copy_from_slice` enforces equal length), the arena at least
        // as large as every validated cursor range, and the integer
        // state big enough for every register this program names.
        assert!(st.arena.len() >= self.arena_len, "arena state mismatch");
        assert!(st.r.len() >= self.need_r, "register state mismatch");
        assert!(st.loops.len() >= self.need_loop, "loop state mismatch");
        st.cur.copy_from_slice(&self.init_cursors);
        st.arena[self.in_off..self.in_off + self.n_in].copy_from_slice(x);
        // The reference executor lets accumulations read back the
        // caller's output buffer, so copy it in as well.
        st.arena[self.out_off..self.out_off + self.n_out].copy_from_slice(y);
        {
            let VmState {
                arena,
                cur,
                r,
                loops,
                ..
            } = st;
            self.exec(0, self.nodes.len(), arena, cur, r, loops);
        }
        y.copy_from_slice(&st.arena[self.out_off..self.out_off + self.n_out]);
    }

    fn exec(
        &self,
        lo: usize,
        hi: usize,
        arena: &mut [f64],
        cur: &mut [i64],
        r: &mut [i64],
        loops: &mut [i64],
    ) {
        let mut i = lo;
        while i < hi {
            match &self.nodes[i] {
                RNode::Op(op) => {
                    self.exec_op(op, arena, cur, r, loops);
                    i += 1;
                }
                RNode::Loop {
                    trips,
                    var,
                    lo: l0,
                    end,
                    steps,
                    vec,
                } => {
                    let end = *end as usize;
                    let stp = &self.steps[steps.0 as usize..steps.1 as usize];
                    // Lane-wide chunks first. FMA mode stays scalar:
                    // the vector path reproduces the two-rounding
                    // scalar sequence, not the fused one.
                    let done = match vec {
                        Some(p) if !self.fma => {
                            run_chunks(&self.vec_plans[*p as usize], *trips, stp, arena, cur)
                        }
                        _ => 0,
                    };
                    if self.track_loops {
                        // Mirror the reference executor exactly: the
                        // variable is set only when the body runs and
                        // is left at `hi` (not `hi+1`) afterwards.
                        for t in done..*trips {
                            loops[*var as usize] = l0 + t as i64;
                            self.exec(i + 1, end, arena, cur, r, loops);
                            for &(k, d) in stp {
                                cur[k as usize] += d;
                            }
                        }
                        if done == *trips && *trips > 0 {
                            // No scalar remainder ran; leave the
                            // variable where the scalar loop would.
                            // (Plan verification guarantees the body
                            // itself never reads it.)
                            loops[*var as usize] = l0 + (*trips - 1) as i64;
                        }
                    } else {
                        for _ in done..*trips {
                            self.exec(i + 1, end, arena, cur, r, loops);
                            for &(k, d) in stp {
                                cur[k as usize] += d;
                            }
                        }
                    }
                    i = end;
                }
            }
        }
    }

    /// Executes one resolved op.
    ///
    /// Float operands use unchecked indexing — this is the engine's
    /// whole point, and it is sound by resolve-time validation:
    /// every cursor index is `< init_cursors.len()` by construction
    /// (`run` pins `cur` to exactly that length), and every cursor
    /// *value* at a dereference point lies inside its region because
    /// `Builder::mem` rejects any address whose reachable box (the
    /// interval over all enclosing loop ranges — exact, since counted
    /// loops execute every bound combination) leaves the region, and
    /// fixed/const/scratch cells are in-range by construction. `run`
    /// asserts the arena is at least `arena_len`. Integer state (`r`,
    /// `loops`) stays bounds-checked: it is cold and its indices come
    /// from the lowered program rather than the resolver.
    #[inline(always)]
    fn exec_op(&self, op: &ROp, arena: &mut [f64], cur: &mut [i64], r: &mut [i64], loops: &[i64]) {
        macro_rules! get {
            ($k:expr) => {
                // SAFETY: see the method comment.
                unsafe { *arena.get_unchecked(*cur.get_unchecked(*$k as usize) as usize) }
            };
        }
        macro_rules! put {
            ($k:expr, $v:expr) => {{
                let v = $v;
                // SAFETY: see the method comment.
                unsafe { *arena.get_unchecked_mut(*cur.get_unchecked(*$k as usize) as usize) = v }
            }};
        }
        macro_rules! ri {
            ($s:expr) => {
                match $s {
                    RI::Const(c) => *c,
                    RI::R(k) => r[*k as usize],
                    RI::Loop(k) => loops[*k as usize],
                }
            };
        }
        match op {
            ROp::Add { d, a, b } => put!(d, get!(a) + get!(b)),
            ROp::Sub { d, a, b } => put!(d, get!(a) - get!(b)),
            ROp::Mul { d, a, b } => put!(d, get!(a) * get!(b)),
            ROp::Div { d, a, b } => put!(d, get!(a) / get!(b)),
            ROp::Copy { d, a } => put!(d, get!(a)),
            ROp::Neg { d, a } => put!(d, -get!(a)),
            ROp::MulAdd { d, a, b, c } => {
                let v = if self.fma {
                    get!(a).mul_add(get!(b), get!(c))
                } else {
                    get!(a) * get!(b) + get!(c)
                };
                put!(d, v);
            }
            ROp::MulSub { d, a, b, c } => {
                let v = if self.fma {
                    get!(a).mul_add(get!(b), -get!(c))
                } else {
                    get!(a) * get!(b) - get!(c)
                };
                put!(d, v);
            }
            ROp::NegMulAdd { d, a, b, c } => {
                let v = if self.fma {
                    (-get!(a)).mul_add(get!(b), get!(c))
                } else {
                    get!(c) - get!(a) * get!(b)
                };
                put!(d, v);
            }
            ROp::Butterfly { d1, d2, a, b } => {
                let av = get!(a);
                let bv = get!(b);
                put!(d1, av + bv);
                put!(d2, av - bv);
            }
            ROp::RToCell { d, r_idx } => put!(d, r[*r_idx as usize] as f64),
            ROp::LoopToCell { d, slot } => put!(d, loops[*slot as usize] as f64),
            ROp::IntBin { op, dst, a, b } => {
                let av = ri!(a);
                let bv = ri!(b);
                r[*dst as usize] = match op {
                    BinOp::Add => av + bv,
                    BinOp::Sub => av - bv,
                    BinOp::Mul => av * bv,
                    BinOp::Div => av / bv,
                };
            }
            ROp::IntUn { neg, dst, a } => {
                let av = ri!(a);
                r[*dst as usize] = if *neg { -av } else { av };
            }
        }
    }

    /// Executes the program through a separate instrumented
    /// interpreter and returns the collected [`VmProfile`]; see
    /// [`crate::VmProgram::run_profiled`]. State contract and results
    /// are identical to [`ResolvedProgram::run`] — the same resolved
    /// ops execute in the same order.
    pub(crate) fn run_profiled(
        &self,
        x: &[f64],
        y: &mut [f64],
        st: &mut VmState,
        prov_nodes: &[ProvNode],
    ) -> VmProfile {
        assert!(st.arena.len() >= self.arena_len, "arena state mismatch");
        assert!(st.r.len() >= self.need_r, "register state mismatch");
        assert!(st.loops.len() >= self.need_loop, "loop state mismatch");
        st.cur.copy_from_slice(&self.init_cursors);
        st.arena[self.in_off..self.in_off + self.n_in].copy_from_slice(x);
        st.arena[self.out_off..self.out_off + self.n_out].copy_from_slice(y);
        let n_ids = if self.node_prov.is_empty() {
            0
        } else {
            prov_nodes.len()
        };
        let mut pb = ProfBuf::new(n_ids);
        {
            let VmState {
                arena,
                cur,
                r,
                loops,
                ..
            } = st;
            self.exec_profiled(0, self.nodes.len(), arena, cur, r, loops, &mut pb);
        }
        y.copy_from_slice(&st.arena[self.out_off..self.out_off + self.n_out]);
        pb.finish(prov_nodes)
    }

    /// The instrumented mirror of [`ResolvedProgram::exec`]: same
    /// control flow and op dispatch, plus telescoping formula-node
    /// attribution, op-class counting, and per-loop figures.
    #[allow(clippy::too_many_arguments)]
    fn exec_profiled(
        &self,
        lo: usize,
        hi: usize,
        arena: &mut [f64],
        cur: &mut [i64],
        r: &mut [i64],
        loops: &mut [i64],
        pb: &mut ProfBuf,
    ) {
        let mut i = lo;
        while i < hi {
            let p = self.node_prov.get(i).copied().unwrap_or(u32::MAX);
            match &self.nodes[i] {
                RNode::Op(op) => {
                    pb.attribute(p);
                    pb.count(op);
                    self.exec_op(op, arena, cur, r, loops);
                    i += 1;
                }
                RNode::Loop {
                    trips,
                    var,
                    lo: l0,
                    end,
                    steps,
                    vec,
                } => {
                    pb.attribute(p);
                    let end = *end as usize;
                    let stp = &self.steps[steps.0 as usize..steps.1 as usize];
                    let t0 = Instant::now();
                    pb.depth += 1;
                    // Mirror the plain engine's chunking (at the same
                    // active width) so vector-op counts and
                    // attribution reflect real vector execution. The
                    // software lanes below are bit-identical to both
                    // the SIMD and the scalar path.
                    let w = simd::width();
                    let done = match vec {
                        Some(pl) if !self.fma && w >= 2 => profiled_chunks(
                            &self.vec_plans[*pl as usize],
                            *trips,
                            w,
                            stp,
                            arena,
                            cur,
                            pb,
                        ),
                        _ => 0,
                    };
                    for t in done..*trips {
                        if self.track_loops {
                            loops[*var as usize] = l0 + t as i64;
                        }
                        self.exec_profiled(i + 1, end, arena, cur, r, loops, pb);
                        for &(k, d) in stp {
                            cur[k as usize] += d;
                        }
                    }
                    if self.track_loops && done == *trips && *trips > 0 {
                        loops[*var as usize] = l0 + (*trips - 1) as i64;
                    }
                    pb.depth -= 1;
                    pb.loop_done(i, pb.depth, *trips, t0.elapsed().as_nanos());
                    i = end;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Lane-wide (vector) plan execution.
// ---------------------------------------------------------------------------

/// Runs as many full `W`-iteration chunks of a planned loop as the
/// active SIMD backend allows and returns how many iterations were
/// covered (0 when no backend is active or the fallback is forced —
/// the caller then runs everything through the scalar body).
fn run_chunks(
    plan: &VecPlan,
    trips: u64,
    stp: &[(u32, i64)],
    arena: &mut [f64],
    cur: &mut [i64],
) -> u64 {
    match simd::active() {
        simd::Backend::Scalar => 0,
        #[cfg(target_arch = "x86_64")]
        simd::Backend::Sse2 => chunks_generic::<simd::Sse2>(plan, trips, stp, arena, cur),
        #[cfg(target_arch = "x86_64")]
        simd::Backend::Avx => {
            // SAFETY: `Backend::Avx` is only reported when runtime
            // detection confirmed AVX support.
            unsafe { chunks_avx(plan, trips, stp, arena, cur) }
        }
        #[cfg(target_arch = "aarch64")]
        simd::Backend::Neon => chunks_generic::<simd::Neon>(plan, trips, stp, arena, cur),
    }
}

/// AVX entry point: the `target_feature` frame into which the generic
/// chunk executor (and the AVX intrinsics inside it) inlines.
///
/// # Safety
///
/// The CPU must support AVX.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn chunks_avx(
    plan: &VecPlan,
    trips: u64,
    stp: &[(u32, i64)],
    arena: &mut [f64],
    cur: &mut [i64],
) -> u64 {
    chunks_generic::<simd::Avx>(plan, trips, stp, arena, cur)
}

/// Executes `trips / W` full chunks op-major: each [`VecOp`] runs `W`
/// consecutive iterations at once, then the latch strides advance by
/// `W` steps. Plan verification guarantees op-major order is
/// observably identical to iteration order (no loop-carried values,
/// no memory conflicts at lane distance), and every lane performs the
/// exact scalar IEEE-754 op — so the result is bit-identical to
/// scalar execution.
#[inline(always)]
fn chunks_generic<L: Lanes>(
    plan: &VecPlan,
    trips: u64,
    stp: &[(u32, i64)],
    arena: &mut [f64],
    cur: &mut [i64],
) -> u64 {
    let w = L::W as u64;
    let chunks = trips / w;
    if chunks == 0 {
        return 0;
    }
    let n_cells = plan.lane_cells.len();
    let mut small = [L::splat(0.0); SMALL_LANE_CELLS];
    let mut big = Vec::new();
    let lanes: &mut [L::V] = if n_cells <= SMALL_LANE_CELLS {
        &mut small
    } else {
        big.resize(n_cells, L::splat(0.0));
        &mut big
    };
    for _ in 0..chunks {
        for op in &plan.ops {
            // SAFETY: lane `l` of a `Mem` operand dereferences exactly
            // the address the scalar iteration `t + l` of this chunk
            // dereferences through the same cursor (the lane stride is
            // the cursor's per-iteration latch stride), and chunks only
            // run with `W` full iterations remaining — so every lane
            // address is one resolve-time bounds validation already
            // covered (see `exec_op`).
            unsafe { exec_vec_op::<L>(op, lanes, arena, cur) };
        }
        for &(k, d) in stp {
            cur[k as usize] += d * w as i64;
        }
    }
    // Lane registers are iteration-private (written before read every
    // iteration), so only the last iteration's value — lane W−1 of the
    // last chunk — is observable after the loop; write it back for
    // trailing scalar code. Remainder iterations, if any, overwrite it.
    for (k, &cell) in plan.lane_cells.iter().enumerate() {
        arena[cur[cell as usize] as usize] = L::lane(lanes[k], L::W - 1);
    }
    chunks * w
}

/// Executes one lane-wide macro-op.
///
/// # Safety
///
/// Every `Mem` lane address must be in bounds (see the call-site
/// comment in [`chunks_generic`]); lane-register ids index `lanes`
/// by plan construction.
#[inline(always)]
unsafe fn exec_vec_op<L: Lanes>(op: &VecOp, lanes: &mut [L::V], arena: &mut [f64], cur: &[i64]) {
    macro_rules! ld {
        ($s:expr) => {
            match $s {
                VSrc::Mem { c, s } => L::load(
                    arena
                        .as_ptr()
                        .offset(*cur.get_unchecked(*c as usize) as isize),
                    *s,
                ),
                VSrc::Lane(k) => *lanes.get_unchecked(*k as usize),
            }
        };
    }
    macro_rules! st {
        ($d:expr, $v:expr) => {{
            let v = $v;
            match $d {
                VDst::Mem { c, s } => L::store(
                    arena
                        .as_mut_ptr()
                        .offset(*cur.get_unchecked(*c as usize) as isize),
                    *s,
                    v,
                ),
                VDst::Lane(k) => *lanes.get_unchecked_mut(*k as usize) = v,
            }
        }};
    }
    match op {
        VecOp::Add { d, a, b } => st!(d, L::add(ld!(a), ld!(b))),
        VecOp::Sub { d, a, b } => st!(d, L::sub(ld!(a), ld!(b))),
        VecOp::Mul { d, a, b } => st!(d, L::mul(ld!(a), ld!(b))),
        VecOp::Div { d, a, b } => st!(d, L::div(ld!(a), ld!(b))),
        VecOp::Copy { d, a } => st!(d, ld!(a)),
        VecOp::Neg { d, a } => st!(d, L::neg(ld!(a))),
        VecOp::MulAdd { d, a, b, c } => st!(d, L::add(L::mul(ld!(a), ld!(b)), ld!(c))),
        VecOp::MulSub { d, a, b, c } => st!(d, L::sub(L::mul(ld!(a), ld!(b)), ld!(c))),
        VecOp::NegMulAdd { d, a, b, c } => st!(d, L::sub(ld!(c), L::mul(ld!(a), ld!(b)))),
        VecOp::Butterfly { d1, d2, a, b } => {
            let av = ld!(a);
            let bv = ld!(b);
            st!(d1, L::add(av, bv));
            st!(d2, L::sub(av, bv));
        }
    }
}

/// The profiled mirror of [`chunks_generic`]: same chunking at the
/// caller-supplied width, but through checked software lanes, with
/// per-op provenance attribution and vector op-class counting. Lane
/// arithmetic is plain f64, which is bit-identical to the SIMD
/// backends by their contract.
#[allow(clippy::too_many_arguments)]
fn profiled_chunks(
    plan: &VecPlan,
    trips: u64,
    w: usize,
    stp: &[(u32, i64)],
    arena: &mut [f64],
    cur: &mut [i64],
    pb: &mut ProfBuf,
) -> u64 {
    let chunks = trips / w as u64;
    if chunks == 0 {
        return 0;
    }
    let has_prov = !plan.prov.is_empty();
    let mut lanes = vec![[0.0f64; MAX_VEC_WIDTH]; plan.lane_cells.len()];
    for _ in 0..chunks {
        for (j, op) in plan.ops.iter().enumerate() {
            pb.attribute(if has_prov { plan.prov[j] } else { u32::MAX });
            pb.count_vec(op, w);
            soft_vec_op(op, w, &mut lanes, arena, cur);
        }
        for &(k, d) in stp {
            cur[k as usize] += d * w as i64;
        }
    }
    for (k, &cell) in plan.lane_cells.iter().enumerate() {
        arena[cur[cell as usize] as usize] = lanes[k][w - 1];
    }
    chunks * w as u64
}

fn soft_ld(s: &VSrc, l: usize, lanes: &[[f64; MAX_VEC_WIDTH]], arena: &[f64], cur: &[i64]) -> f64 {
    match s {
        VSrc::Mem { c, s } => arena[(cur[*c as usize] + l as i64 * s) as usize],
        VSrc::Lane(k) => lanes[*k as usize][l],
    }
}

fn soft_st(
    d: &VDst,
    l: usize,
    v: f64,
    lanes: &mut [[f64; MAX_VEC_WIDTH]],
    arena: &mut [f64],
    cur: &[i64],
) {
    match d {
        VDst::Mem { c, s } => arena[(cur[*c as usize] + l as i64 * s) as usize] = v,
        VDst::Lane(k) => lanes[*k as usize][l] = v,
    }
}

/// One lane-wide macro-op over software lanes, lane by lane (safe:
/// plan verification rejects any cross-lane conflict within an op).
fn soft_vec_op(
    op: &VecOp,
    w: usize,
    lanes: &mut [[f64; MAX_VEC_WIDTH]],
    arena: &mut [f64],
    cur: &[i64],
) {
    for l in 0..w {
        match op {
            VecOp::Add { d, a, b } => {
                let v = soft_ld(a, l, lanes, arena, cur) + soft_ld(b, l, lanes, arena, cur);
                soft_st(d, l, v, lanes, arena, cur);
            }
            VecOp::Sub { d, a, b } => {
                let v = soft_ld(a, l, lanes, arena, cur) - soft_ld(b, l, lanes, arena, cur);
                soft_st(d, l, v, lanes, arena, cur);
            }
            VecOp::Mul { d, a, b } => {
                let v = soft_ld(a, l, lanes, arena, cur) * soft_ld(b, l, lanes, arena, cur);
                soft_st(d, l, v, lanes, arena, cur);
            }
            VecOp::Div { d, a, b } => {
                let v = soft_ld(a, l, lanes, arena, cur) / soft_ld(b, l, lanes, arena, cur);
                soft_st(d, l, v, lanes, arena, cur);
            }
            VecOp::Copy { d, a } => {
                let v = soft_ld(a, l, lanes, arena, cur);
                soft_st(d, l, v, lanes, arena, cur);
            }
            VecOp::Neg { d, a } => {
                let v = -soft_ld(a, l, lanes, arena, cur);
                soft_st(d, l, v, lanes, arena, cur);
            }
            VecOp::MulAdd { d, a, b, c } => {
                let v = soft_ld(a, l, lanes, arena, cur) * soft_ld(b, l, lanes, arena, cur)
                    + soft_ld(c, l, lanes, arena, cur);
                soft_st(d, l, v, lanes, arena, cur);
            }
            VecOp::MulSub { d, a, b, c } => {
                let v = soft_ld(a, l, lanes, arena, cur) * soft_ld(b, l, lanes, arena, cur)
                    - soft_ld(c, l, lanes, arena, cur);
                soft_st(d, l, v, lanes, arena, cur);
            }
            VecOp::NegMulAdd { d, a, b, c } => {
                let v = soft_ld(c, l, lanes, arena, cur)
                    - soft_ld(a, l, lanes, arena, cur) * soft_ld(b, l, lanes, arena, cur);
                soft_st(d, l, v, lanes, arena, cur);
            }
            VecOp::Butterfly { d1, d2, a, b } => {
                let av = soft_ld(a, l, lanes, arena, cur);
                let bv = soft_ld(b, l, lanes, arena, cur);
                soft_st(d1, l, av + bv, lanes, arena, cur);
                soft_st(d2, l, av - bv, lanes, arena, cur);
            }
        }
    }
}

/// Accumulators of the profiled interpreter.
struct ProfBuf {
    op_counts: [u64; N_OP_CLASSES],
    /// Per-provenance-id self time / flops / op counts (empty when
    /// the program carries no provenance).
    node_ns: Vec<u128>,
    node_flops: Vec<u64>,
    node_ops: Vec<u64>,
    unattributed_ns: u128,
    /// Provenance id currently on the clock (`u32::MAX` = none).
    cur_attr: u32,
    /// Timestamp of the last attribution transition.
    last: Instant,
    start: Instant,
    /// Current loop-nesting depth.
    depth: u32,
    /// Loop-header node index → (depth, entries, iterations, wall_ns).
    loops: HashMap<usize, (u32, u64, u64, u128)>,
}

impl ProfBuf {
    fn new(n_ids: usize) -> ProfBuf {
        let now = Instant::now();
        ProfBuf {
            op_counts: [0; N_OP_CLASSES],
            node_ns: vec![0; n_ids],
            node_flops: vec![0; n_ids],
            node_ops: vec![0; n_ids],
            unattributed_ns: 0,
            cur_attr: u32::MAX,
            last: now,
            start: now,
            depth: 0,
            loops: HashMap::new(),
        }
    }

    /// Telescoping attribution: the clock is read only when execution
    /// crosses from one formula node to another, and the interval
    /// since the previous read is credited in full to the node just
    /// left — so self times sum exactly to the total by construction.
    fn attribute(&mut self, p: u32) {
        if p != self.cur_attr {
            let now = Instant::now();
            let dt = (now - self.last).as_nanos();
            match self.node_ns.get_mut(self.cur_attr as usize) {
                Some(slot) => *slot += dt,
                None => self.unattributed_ns += dt,
            }
            self.last = now;
            self.cur_attr = p;
        }
    }

    /// Credits the open interval to the current node and stops the
    /// clock.
    fn flush(&mut self) {
        let now = Instant::now();
        let dt = (now - self.last).as_nanos();
        match self.node_ns.get_mut(self.cur_attr as usize) {
            Some(slot) => *slot += dt,
            None => self.unattributed_ns += dt,
        }
        self.last = now;
    }

    fn count(&mut self, op: &ROp) {
        let class = match op {
            ROp::Add { .. } => 0,
            ROp::Sub { .. } => 1,
            ROp::Mul { .. } => 2,
            ROp::Div { .. } => 3,
            ROp::Copy { .. } => 4,
            ROp::Neg { .. } => 5,
            ROp::MulAdd { .. } => 6,
            ROp::MulSub { .. } => 7,
            ROp::NegMulAdd { .. } => 8,
            ROp::Butterfly { .. } => 9,
            ROp::RToCell { .. } => 10,
            ROp::LoopToCell { .. } => 11,
            ROp::IntBin { .. } => 12,
            ROp::IntUn { .. } => 13,
        };
        self.op_counts[class] += 1;
        let id = self.cur_attr as usize;
        if id < self.node_ops.len() {
            self.node_ops[id] += 1;
            self.node_flops[id] += crate::profile::OP_CLASS_FLOPS[class];
        }
    }

    /// Counts one lane-wide op executed at width `w`. Vector classes
    /// count *lanes* (one per covered iteration), so totals across a
    /// run equal the scalar run's op and flop totals — only the class
    /// binning moves.
    fn count_vec(&mut self, op: &VecOp, w: usize) {
        let class = VEC_CLASS_BASE
            + match op {
                VecOp::Add { .. } => 0,
                VecOp::Sub { .. } => 1,
                VecOp::Mul { .. } => 2,
                VecOp::Div { .. } => 3,
                VecOp::Copy { .. } => 4,
                VecOp::Neg { .. } => 5,
                VecOp::MulAdd { .. } => 6,
                VecOp::MulSub { .. } => 7,
                VecOp::NegMulAdd { .. } => 8,
                VecOp::Butterfly { .. } => 9,
            };
        self.op_counts[class] += w as u64;
        let id = self.cur_attr as usize;
        if id < self.node_ops.len() {
            self.node_ops[id] += w as u64;
            self.node_flops[id] += w as u64 * crate::profile::OP_CLASS_FLOPS[class];
        }
    }

    fn loop_done(&mut self, node: usize, depth: u32, trips: u64, wall_ns: u128) {
        let e = self.loops.entry(node).or_insert((depth, 0, 0, 0));
        e.1 += 1;
        e.2 += trips;
        e.3 += wall_ns;
    }

    fn finish(mut self, prov_nodes: &[ProvNode]) -> VmProfile {
        self.flush();
        let total_ns = (self.last - self.start).as_nanos();
        let nodes = if self.node_ns.is_empty() {
            Vec::new()
        } else {
            build_nodes(prov_nodes, &self.node_ns, &self.node_flops, &self.node_ops)
        };
        let mut loop_list: Vec<LoopBlock> = self
            .loops
            .iter()
            .map(
                |(&node, &(depth, entries, iterations, wall_ns))| LoopBlock {
                    node: node as u32,
                    depth,
                    entries,
                    iterations,
                    wall_ns,
                },
            )
            .collect();
        loop_list.sort_by_key(|l| l.node);
        VmProfile {
            total_ns,
            unattributed_ns: self.unattributed_ns,
            op_counts: self.op_counts,
            nodes,
            loops: loop_list,
        }
    }
}

// ---------------------------------------------------------------------------
// Fusion: flat Op stream → fused op stream.
// ---------------------------------------------------------------------------

/// An op after peephole fusion, still at the symbolic operand level.
#[derive(Debug, Clone)]
enum FOp {
    Plain(Op),
    MulAdd { dst: Dst, a: Src, b: Src, c: Src },
    MulSub { dst: Dst, a: Src, b: Src, c: Src },
    NegMulAdd { dst: Dst, a: Src, b: Src, c: Src },
    Butterfly { d1: Dst, d2: Dst, a: Src, b: Src },
}

/// Counts reads of each `$f` register across the whole program.
fn count_f_reads(code: &[Op]) -> HashMap<u32, usize> {
    let mut reads: HashMap<u32, usize> = HashMap::new();
    let mut see = |s: &Src| {
        if let Src::F(k) = s {
            *reads.entry(*k).or_insert(0) += 1;
        }
    };
    for op in code {
        match op {
            Op::Bin { a, b, .. } => {
                see(a);
                see(b);
            }
            Op::Un { a, .. } => see(a),
            _ => {}
        }
    }
    reads
}

/// Two addresses in the same region that provably never collide: same
/// affine terms, different constant base.
fn disjoint(x: &Addr, y: &Addr) -> bool {
    x.terms == y.terms && x.base != y.base
}

/// `true` when a write through `d` can never change the value read
/// through `s` (conservative: same-region addresses must be provably
/// disjoint).
fn alias_free(d: &Dst, s: &Src) -> bool {
    match (d, s) {
        (Dst::F(k), Src::F(j)) => k != j,
        (Dst::Out(da), Src::Out(sa)) => disjoint(da, sa),
        (Dst::Temp(da), Src::Temp(sa)) => disjoint(da, sa),
        _ => true,
    }
}

/// Destinations that may refer to the same storage (conservative).
fn dsts_alias(x: &Dst, y: &Dst) -> bool {
    match (x, y) {
        (Dst::F(a), Dst::F(b)) => a == b,
        (Dst::Out(a), Dst::Out(b)) => !disjoint(a, b),
        (Dst::Temp(a), Dst::Temp(b)) => !disjoint(a, b),
        _ => false,
    }
}

fn writes_of(f: &FOp) -> Vec<&Dst> {
    match f {
        FOp::Plain(Op::Bin { dst, .. }) | FOp::Plain(Op::Un { dst, .. }) => vec![dst],
        FOp::MulAdd { dst, .. } | FOp::MulSub { dst, .. } | FOp::NegMulAdd { dst, .. } => {
            vec![dst]
        }
        FOp::Butterfly { d1, d2, .. } => vec![d1, d2],
        FOp::Plain(_) => vec![],
    }
}

fn reads_of(f: &FOp) -> Vec<&Src> {
    match f {
        FOp::Plain(Op::Bin { a, b, .. }) => vec![a, b],
        FOp::Plain(Op::Un { a, .. }) => vec![a],
        FOp::MulAdd { a, b, c, .. }
        | FOp::MulSub { a, b, c, .. }
        | FOp::NegMulAdd { a, b, c, .. } => vec![a, b, c],
        FOp::Butterfly { a, b, .. } => vec![a, b],
        FOp::Plain(_) => vec![],
    }
}

/// Ops fusion never crosses: loop structure and integer bookkeeping
/// (whose register/loop-variable effects the float alias model does
/// not track).
fn is_barrier(f: &FOp) -> bool {
    matches!(
        f,
        FOp::Plain(Op::LoopStart { .. })
            | FOp::Plain(Op::LoopEnd { .. })
            | FOp::Plain(Op::IntBin { .. })
            | FOp::Plain(Op::IntUn { .. })
    )
}

/// `true` when the op at `p` can be moved to the end of `out` (fused
/// into the op about to be emitted): its writes must commute with
/// every read and write after it, and its reads with every write.
/// Register-as-float reads are safe to move because `$r` and loop
/// variables only change at barrier ops, which bound the window.
fn can_pull(out: &[FOp], p: usize) -> bool {
    let pw = writes_of(&out[p]);
    let pr = reads_of(&out[p]);
    out[p + 1..].iter().all(|m| {
        let mw = writes_of(m);
        let mr = reads_of(m);
        pw.iter()
            .all(|w| mr.iter().all(|s| alias_free(w, s)) && mw.iter().all(|x| !dsts_alias(w, x)))
            && pr.iter().all(|r| mw.iter().all(|w| alias_free(w, r)))
    })
}

/// How far back (in already-emitted ops) fusion looks for a producer.
/// Generated complex arithmetic interleaves the real and imaginary
/// halves, so a multiply and its consuming add sit up to four ops
/// apart; eight gives headroom for unrolled leaves.
const FUSE_WINDOW: usize = 8;

/// Candidate producer positions in `out`, nearest first, bounded by
/// the window and never crossing a barrier.
fn window_positions(out: &[FOp]) -> Vec<usize> {
    let mut v = Vec::new();
    for q in (0..out.len()).rev().take(FUSE_WINDOW) {
        if is_barrier(&out[q]) {
            break;
        }
        v.push(q);
    }
    v
}

/// The peephole fusion pass: one forward sweep that, at each emitted
/// add/sub, tries to pull a matching producer out of the recent
/// window — a negation to fold, an add to pair into a butterfly, or a
/// multiply to fuse into a multiply–add. Every rewrite preserves the
/// exact f64 rounding sequence of the unfused program.
///
/// `prov` is per-input-op formula-node provenance (empty or parallel
/// to `code`); the returned second vector carries it over per fused
/// op, a fused macro-op inheriting its *consumer's* node.
fn fuse(code: &[Op], prov: &[u32], stats: &mut ResolveStats) -> (Vec<FOp>, Vec<u32>) {
    let reads = count_f_reads(code);
    let single = |k: &u32| reads.get(k).copied().unwrap_or(0) == 1;
    let has_prov = prov.len() == code.len();
    let mut out: Vec<FOp> = Vec::with_capacity(code.len());
    let mut provs: Vec<u32> = Vec::with_capacity(if has_prov { code.len() } else { 0 });

    for (pc, op) in code.iter().enumerate() {
        let cur_prov = if has_prov { prov[pc] } else { 0 };
        let mut cur = op.clone();

        // Negate folding: t = −s; …; d = x ± t → d = x ∓ s (the
        // remaining case (−s) − y has no single-op equivalent). The
        // rewrite feeds the butterfly/muladd attempts below.
        if let Op::Bin {
            op: bop @ (BinOp::Add | BinOp::Sub),
            dst,
            a,
            b,
        } = &cur
        {
            let mut folded = None;
            for q in window_positions(&out) {
                let FOp::Plain(Op::Un {
                    neg: true,
                    dst: Dst::F(k),
                    a: s,
                }) = &out[q]
                else {
                    continue;
                };
                if !single(k) || !can_pull(&out, q) {
                    continue;
                }
                let repl = match (bop, a, b) {
                    // x + (−s) = x − s
                    (BinOp::Add, x, Src::F(j)) if j == k => Some((BinOp::Sub, x.clone())),
                    // (−s) + y = y − s
                    (BinOp::Add, Src::F(j), y) if j == k => Some((BinOp::Sub, y.clone())),
                    // x − (−s) = x + s
                    (BinOp::Sub, x, Src::F(j)) if j == k => Some((BinOp::Add, x.clone())),
                    _ => None,
                };
                if let Some((op2, other)) = repl {
                    folded = Some((
                        q,
                        Op::Bin {
                            op: op2,
                            dst: dst.clone(),
                            a: other,
                            b: s.clone(),
                        },
                    ));
                    break;
                }
            }
            if let Some((q, repl)) = folded {
                out.remove(q);
                provs.remove(q);
                stats.fused_negfold += 1;
                cur = repl;
            }
        }

        // Butterfly: d1 = a + b; …; d2 = a − b over structurally
        // identical operands. The pulled add must not have clobbered
        // an operand the sub re-reads.
        if let Op::Bin {
            op: BinOp::Sub,
            dst: d2,
            a,
            b,
        } = &cur
        {
            let mut hit = None;
            for q in window_positions(&out) {
                if let FOp::Plain(Op::Bin {
                    op: BinOp::Add,
                    dst: d1,
                    a: a2,
                    b: b2,
                }) = &out[q]
                {
                    if a2 == a
                        && b2 == b
                        && alias_free(d1, a)
                        && alias_free(d1, b)
                        && can_pull(&out, q)
                    {
                        hit = Some(q);
                        break;
                    }
                }
            }
            if let Some(q) = hit {
                let FOp::Plain(Op::Bin { dst: d1, .. }) = out.remove(q) else {
                    unreachable!("window candidate was a plain add");
                };
                provs.remove(q);
                out.push(FOp::Butterfly {
                    d1,
                    d2: d2.clone(),
                    a: a.clone(),
                    b: b.clone(),
                });
                provs.push(cur_prov);
                stats.fused_butterfly += 1;
                continue;
            }
        }

        // Multiply–add: t = a·b; …; d = t ± c or d = c − t, where t
        // is an `$f` register with exactly one reader.
        if let Op::Bin {
            op: bop @ (BinOp::Add | BinOp::Sub),
            dst,
            a,
            b,
        } = &cur
        {
            let mut hit = None;
            for q in window_positions(&out) {
                if let FOp::Plain(Op::Bin {
                    op: BinOp::Mul,
                    dst: Dst::F(k),
                    ..
                }) = &out[q]
                {
                    if !single(k) || !can_pull(&out, q) {
                        continue;
                    }
                    if matches!(a, Src::F(j) if j == k) {
                        hit = Some((q, true));
                        break;
                    }
                    if matches!(b, Src::F(j) if j == k) {
                        hit = Some((q, false));
                        break;
                    }
                }
            }
            if let Some((q, t_is_left)) = hit {
                let FOp::Plain(Op::Bin { a: ma, b: mb, .. }) = out.remove(q) else {
                    unreachable!("window candidate was a plain mul");
                };
                provs.remove(q);
                let c = if t_is_left { b.clone() } else { a.clone() };
                let dst = dst.clone();
                out.push(match (bop, t_is_left) {
                    // t + c and c + t
                    (BinOp::Add, _) => FOp::MulAdd {
                        dst,
                        a: ma,
                        b: mb,
                        c,
                    },
                    // t − c
                    (BinOp::Sub, true) => FOp::MulSub {
                        dst,
                        a: ma,
                        b: mb,
                        c,
                    },
                    // c − t
                    (BinOp::Sub, false) => FOp::NegMulAdd {
                        dst,
                        a: ma,
                        b: mb,
                        c,
                    },
                    _ => unreachable!("bop is add or sub"),
                });
                provs.push(cur_prov);
                stats.fused_muladd += 1;
                continue;
            }
        }

        out.push(FOp::Plain(cur));
        provs.push(cur_prov);
    }
    debug_assert_eq!(out.len(), provs.len());
    (out, if has_prov { provs } else { Vec::new() })
}

// ---------------------------------------------------------------------------
// Resolution: fused ops → cursors, strides, and block structure.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Region {
    In,
    Out,
    Temp,
    Table,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum CursorKey {
    /// A cursor over a fixed arena cell (register, immediate, scratch).
    Fixed(usize),
    /// A strided memory operand: region, base, affine terms, and the
    /// innermost enclosing loop (node index; `usize::MAX` at top
    /// level). Identical operands in the same loop context share one
    /// cursor and one set of strides.
    Mem(Region, i64, Vec<(i64, u32)>, usize),
}

/// What a cursor points at — kept parallel to the cursor table for
/// vector-plan verification.
#[derive(Debug, Clone, PartialEq)]
enum CursorMeta {
    /// A fixed cell: `$f` register, immediate, or scratch spill.
    /// Fixed cells never alias the strided regions (disjoint arena
    /// layout).
    Fixed,
    /// A strided operand: its region and region-relative affine terms
    /// (`(coefficient, loop-variable slot)`).
    Mem {
        region: Region,
        terms: Vec<(i64, u32)>,
    },
}

struct Frame {
    node_idx: usize,
    var: u32,
    lo: i64,
    hi: i64,
    trips: u64,
    steps: Vec<(u32, i64)>,
    /// Advisory lane-safety mark carried from the compiler pass.
    vec_hint: bool,
}

struct Builder {
    nodes: Vec<RNode>,
    /// Formula-node provenance per resolved node, parallel to `nodes`
    /// (unused and left empty when the program carries none).
    node_prov: Vec<u32>,
    /// Provenance id of the fused op currently being resolved (spill
    /// nodes emitted for its operands inherit it).
    cur_prov: u32,
    has_prov: bool,
    steps: Vec<(u32, i64)>,
    init: Vec<i64>,
    arena_len: usize,
    arena_init: Vec<(u32, f64)>,
    cursor_map: HashMap<CursorKey, u32>,
    const_map: HashMap<u64, usize>,
    /// Per-cursor classification, parallel to `init`.
    cursor_meta: Vec<CursorMeta>,
    vec_plans: Vec<VecPlan>,
    frames: Vec<Frame>,
    track_loops: bool,
    // Region offsets and lengths.
    f_off: usize,
    table_off: usize,
    in_off: usize,
    out_off: usize,
    temp_off: usize,
    n_in: usize,
    n_out: usize,
    temp_len: usize,
    n_tab: usize,
    stats: ResolveStats,
}

impl Builder {
    fn new(prog: &VmProgram, stats: ResolveStats) -> Builder {
        let f_off = 0;
        let table_off = f_off + prog.n_f;
        let in_off = table_off + prog.tables.len();
        let out_off = in_off + prog.n_in;
        let temp_off = out_off + prog.n_out;
        let arena_len = temp_off + prog.temp_len;
        let arena_init = prog
            .tables
            .iter()
            .enumerate()
            .map(|(i, &v)| ((table_off + i) as u32, v))
            .collect();
        Builder {
            nodes: Vec::new(),
            node_prov: Vec::new(),
            cur_prov: 0,
            has_prov: false,
            steps: Vec::new(),
            init: Vec::new(),
            arena_len,
            arena_init,
            cursor_map: HashMap::new(),
            const_map: HashMap::new(),
            cursor_meta: Vec::new(),
            vec_plans: Vec::new(),
            frames: Vec::new(),
            track_loops: false,
            f_off,
            table_off,
            in_off,
            out_off,
            temp_off,
            n_in: prog.n_in,
            n_out: prog.n_out,
            temp_len: prog.temp_len,
            n_tab: prog.tables.len(),
            stats,
        }
    }

    /// Appends a node, mirroring the current op's provenance into the
    /// parallel `node_prov` table.
    fn push_node(&mut self, n: RNode) {
        self.nodes.push(n);
        if self.has_prov {
            self.node_prov.push(self.cur_prov);
        }
    }

    fn new_cursor(&mut self, init: i64, meta: CursorMeta) -> Result<u32, Unsupported> {
        let id = u32::try_from(self.init.len()).map_err(|_| Unsupported("cursor overflow"))?;
        self.init.push(init);
        self.cursor_meta.push(meta);
        Ok(id)
    }

    /// A cursor permanently pointing at one arena cell.
    fn fixed(&mut self, cell: usize) -> Result<u32, Unsupported> {
        if let Some(&c) = self.cursor_map.get(&CursorKey::Fixed(cell)) {
            return Ok(c);
        }
        let c = self.new_cursor(cell as i64, CursorMeta::Fixed)?;
        self.cursor_map.insert(CursorKey::Fixed(cell), c);
        Ok(c)
    }

    /// A fresh tail cell (immediates, scratch spills).
    fn alloc_cell(&mut self) -> usize {
        let cell = self.arena_len;
        self.arena_len += 1;
        cell
    }

    fn const_cell(&mut self, v: f64) -> Result<u32, Unsupported> {
        let cell = match self.const_map.get(&v.to_bits()) {
            Some(&c) => c,
            None => {
                let c = self.alloc_cell();
                self.const_map.insert(v.to_bits(), c);
                self.arena_init.push((
                    u32::try_from(c).map_err(|_| Unsupported("arena overflow"))?,
                    v,
                ));
                c
            }
        };
        self.fixed(cell)
    }

    /// Resolves a strided memory operand: dedups per loop context,
    /// folds loop-invariant components into the cursor's initial
    /// value, bounds-checks the reachable address box against the
    /// region, and registers latch strides on the enclosing loops.
    fn mem(&mut self, region: Region, addr: &Addr) -> Result<u32, Unsupported> {
        let ctx = self.frames.last().map(|f| f.node_idx).unwrap_or(usize::MAX);
        let key = CursorKey::Mem(region, addr.base, addr.terms.clone(), ctx);
        if let Some(&c) = self.cursor_map.get(&key) {
            return Ok(c);
        }
        let (region_off, region_len) = match region {
            Region::In => (self.in_off, self.n_in),
            Region::Out => (self.out_off, self.n_out),
            Region::Temp => (self.temp_off, self.temp_len),
            Region::Table => (self.table_off, self.n_tab),
        };
        // Per-frame coefficient (0 when the frame's variable does not
        // appear); every term must be bound by an enclosing frame.
        let mut coeffs = vec![0i64; self.frames.len()];
        for &(c, slot) in &addr.terms {
            // Innermost binding wins, matching the executor's view of
            // the current variable value.
            let j = self
                .frames
                .iter()
                .rposition(|f| f.var == slot)
                .ok_or(Unsupported(
                    "subscript references an out-of-scope loop variable",
                ))?;
            coeffs[j] = coeffs[j]
                .checked_add(c)
                .ok_or(Unsupported("address overflow"))?;
        }
        // Initial value: base + region offset + Σ coeff·lo.
        let mut init = (region_off as i64)
            .checked_add(addr.base)
            .ok_or(Unsupported("address overflow"))?;
        for (j, &c) in coeffs.iter().enumerate() {
            let t = c
                .checked_mul(self.frames[j].lo)
                .ok_or(Unsupported("address overflow"))?;
            init = init.checked_add(t).ok_or(Unsupported("address overflow"))?;
        }
        // Reachable-box bounds check, skipped when an enclosing loop
        // is zero-trip (the op can never execute).
        if self.frames.iter().all(|f| f.trips > 0) {
            let mut min = addr.base as i128;
            let mut max = addr.base as i128;
            for (j, &c) in coeffs.iter().enumerate() {
                let a = c as i128 * self.frames[j].lo as i128;
                let b = c as i128 * self.frames[j].hi as i128;
                min += a.min(b);
                max += a.max(b);
            }
            if min < 0 || max >= region_len as i128 {
                return Err(Unsupported("address range leaves its region"));
            }
        }
        let cursor = self.new_cursor(
            init,
            CursorMeta::Mem {
                region,
                terms: addr.terms.clone(),
            },
        )?;
        // Latch strides: S_j = coeff_j − coeff_{j+1}·trips_{j+1}
        // (frames are outer→inner; the innermost stride is its raw
        // coefficient).
        for j in 0..self.frames.len() {
            let inner = if j + 1 < self.frames.len() {
                let t = i64::try_from(self.frames[j + 1].trips)
                    .map_err(|_| Unsupported("trip-count overflow"))?;
                coeffs[j + 1]
                    .checked_mul(t)
                    .ok_or(Unsupported("address overflow"))?
            } else {
                0
            };
            let s = coeffs[j]
                .checked_sub(inner)
                .ok_or(Unsupported("address overflow"))?;
            if s != 0 {
                self.frames[j].steps.push((cursor, s));
                self.stats.strength_reduced_steps += 1;
            }
        }
        self.stats.hoisted_terms += addr.terms.len() as u64;
        self.cursor_map.insert(key, cursor);
        Ok(cursor)
    }

    /// Resolves a source operand, emitting spill ops for the rare
    /// register-as-float reads.
    fn src(&mut self, s: &Src) -> Result<u32, Unsupported> {
        match s {
            Src::In(a) => self.mem(Region::In, a),
            Src::Out(a) => self.mem(Region::Out, a),
            Src::Temp(a) => self.mem(Region::Temp, a),
            Src::Table(a) => self.mem(Region::Table, a),
            Src::F(k) => self.fixed(self.f_off + *k as usize),
            Src::Const(v) => self.const_cell(*v),
            Src::RF(k) => {
                let cell = self.alloc_cell();
                let c = self.fixed(cell)?;
                self.push_node(RNode::Op(ROp::RToCell { d: c, r_idx: *k }));
                Ok(c)
            }
            Src::LoopF(k) => {
                self.track_loops = true;
                let cell = self.alloc_cell();
                let c = self.fixed(cell)?;
                self.push_node(RNode::Op(ROp::LoopToCell { d: c, slot: *k }));
                Ok(c)
            }
        }
    }

    fn dst(&mut self, d: &Dst) -> Result<u32, Unsupported> {
        match d {
            Dst::Out(a) => self.mem(Region::Out, a),
            Dst::Temp(a) => self.mem(Region::Temp, a),
            Dst::F(k) => self.fixed(self.f_off + *k as usize),
        }
    }

    fn ri(&mut self, s: &ISrc) -> RI {
        match s {
            ISrc::Const(c) => RI::Const(*c),
            ISrc::R(k) => RI::R(*k),
            ISrc::Loop(k) => {
                self.track_loops = true;
                RI::Loop(*k)
            }
        }
    }

    /// Attempts to build a lane-wide plan for a compiler-hinted loop
    /// whose body is `self.nodes[frame.node_idx + 1..]`. Returns
    /// `None` — demoting the hint to scalar execution — unless lane
    /// safety is provable from the resolved cursors alone:
    ///
    /// * every body node is a float macro-op (no integer ops, spills,
    ///   or nested loops — so the body reads neither `$r` nor loop
    ///   variables);
    /// * every written `$f` cell is iteration-private (written before
    ///   any read in op order) and every read-only `$f`/immediate cell
    ///   is a loop-invariant broadcast;
    /// * every strided write advances (stride ≥ 1), and no two
    ///   same-region accesses can touch the same address at an
    ///   iteration distance a chunk could cover (`1 ‥ MAX_VEC_WIDTH−1`;
    ///   distance-0 conflicts keep op order per lane, and distances
    ///   ≥ the chunk width always cross a chunk boundary).
    fn vec_plan(&self, frame: &Frame) -> Option<VecPlan> {
        let trips = frame.trips;
        if trips < 2 {
            return None;
        }
        let body = &self.nodes[frame.node_idx + 1..];
        let stride = |terms: &[(i64, u32)]| -> i64 {
            terms
                .iter()
                .filter(|&&(_, slot)| slot == frame.var)
                .map(|&(c, _)| c)
                .sum()
        };
        let outer = |terms: &[(i64, u32)]| -> Vec<(i64, u32)> {
            terms
                .iter()
                .copied()
                .filter(|&(_, slot)| slot != frame.var)
                .collect()
        };
        struct MemUse {
            cursor: u32,
            region: Region,
            s: i64,
            outer: Vec<(i64, u32)>,
            write: bool,
        }
        // Pass 1: classify operand roles and collect strided accesses.
        let mut lane_of: HashMap<u32, u16> = HashMap::new();
        let mut lane_cells: Vec<u32> = Vec::new();
        let mut broadcast: HashSet<u32> = HashSet::new();
        let mut mems: Vec<MemUse> = Vec::new();
        for node in body {
            let RNode::Op(op) = node else {
                return None; // nested loop
            };
            let (reads, writes): (Vec<u32>, Vec<u32>) = match op {
                ROp::Add { d, a, b }
                | ROp::Sub { d, a, b }
                | ROp::Mul { d, a, b }
                | ROp::Div { d, a, b } => (vec![*a, *b], vec![*d]),
                ROp::Copy { d, a } | ROp::Neg { d, a } => (vec![*a], vec![*d]),
                ROp::MulAdd { d, a, b, c }
                | ROp::MulSub { d, a, b, c }
                | ROp::NegMulAdd { d, a, b, c } => (vec![*a, *b, *c], vec![*d]),
                ROp::Butterfly { d1, d2, a, b } => (vec![*a, *b], vec![*d1, *d2]),
                ROp::RToCell { .. }
                | ROp::LoopToCell { .. }
                | ROp::IntBin { .. }
                | ROp::IntUn { .. } => return None,
            };
            for c in reads {
                match &self.cursor_meta[c as usize] {
                    CursorMeta::Fixed => {
                        if !lane_of.contains_key(&c) {
                            broadcast.insert(c);
                        }
                    }
                    CursorMeta::Mem { region, terms } => mems.push(MemUse {
                        cursor: c,
                        region: *region,
                        s: stride(terms),
                        outer: outer(terms),
                        write: false,
                    }),
                }
            }
            for c in writes {
                match &self.cursor_meta[c as usize] {
                    CursorMeta::Fixed => {
                        if broadcast.contains(&c) {
                            // Read before first write: loop-carried.
                            return None;
                        }
                        if let std::collections::hash_map::Entry::Vacant(e) = lane_of.entry(c) {
                            if lane_cells.len() >= MAX_LANE_CELLS {
                                return None;
                            }
                            e.insert(lane_cells.len() as u16);
                            lane_cells.push(c);
                        }
                    }
                    CursorMeta::Mem { region, terms } => {
                        let s = stride(terms);
                        if s < 1 {
                            return None; // stationary or backward write
                        }
                        mems.push(MemUse {
                            cursor: c,
                            region: *region,
                            s,
                            outer: outer(terms),
                            write: true,
                        });
                    }
                }
            }
        }
        // The full address interval an access can take across the open
        // loop nest: cursor init values already include every var's
        // `lo` term, so each outer var adds `coeff·(var − lo)` over
        // `0 ‥ hi − lo` and the hinted var adds `s·t` over
        // `0 ‥ trips − 1`. `None` when an outer term's loop is not on
        // the frame stack (not provably boundable).
        let range_of = |m: &MemUse| -> Option<(i128, i128)> {
            let base = self.init[m.cursor as usize] as i128;
            let inner = m.s as i128 * (trips as i128 - 1);
            let (mut lo, mut hi) = (base + inner.min(0), base + inner.max(0));
            for &(c, slot) in &m.outer {
                let f = self.frames.iter().find(|f| f.var == slot)?;
                let span = c as i128 * (f.hi as i128 - f.lo as i128);
                lo += span.min(0);
                hi += span.max(0);
            }
            Some((lo, hi))
        };
        // Alias verification: each strided write against every other
        // same-region access. When both subscripts share their outer
        // terms and stride, the address delta is invariant under the
        // outer loops and an exact iteration-distance test applies;
        // otherwise fall back to whole-range disjointness — regions
        // pack several temp buffers into one arena, and accesses to
        // different buffers have overlapping-looking strides but
        // disjoint intervals.
        for w in mems.iter().filter(|m| m.write) {
            for x in &mems {
                if x.cursor == w.cursor || x.region != w.region {
                    continue;
                }
                if x.outer != w.outer || (x.s != w.s && x.s != 0) {
                    let (Some((wl, wh)), Some((xl, xh))) = (range_of(w), range_of(x)) else {
                        return None;
                    };
                    if wh < xl || xh < wl {
                        continue; // provably disjoint buffers
                    }
                    return None;
                }
                let db = self.init[x.cursor as usize] - self.init[w.cursor as usize];
                if x.s == w.s {
                    if db % w.s == 0 {
                        let delta = (db / w.s).unsigned_abs();
                        if delta >= 1 && delta <= (MAX_VEC_WIDTH as u64 - 1).min(trips - 1) {
                            return None;
                        }
                    }
                } else {
                    // x.s == 0: strided write vs loop-invariant read —
                    // any collision in the trip range breaks broadcast.
                    if db % w.s == 0 {
                        let t = db / w.s;
                        if t >= 0 && (t as u64) < trips {
                            return None;
                        }
                    }
                }
            }
        }
        // Pass 2: re-express the body as lane-wide macro-ops.
        let to_src = |c: u32| -> VSrc {
            match &self.cursor_meta[c as usize] {
                CursorMeta::Fixed => match lane_of.get(&c) {
                    Some(&k) => VSrc::Lane(k),
                    None => VSrc::Mem { c, s: 0 },
                },
                CursorMeta::Mem { terms, .. } => VSrc::Mem {
                    c,
                    s: stride(terms),
                },
            }
        };
        let to_dst = |c: u32| -> VDst {
            match &self.cursor_meta[c as usize] {
                CursorMeta::Fixed => VDst::Lane(lane_of[&c]),
                CursorMeta::Mem { terms, .. } => VDst::Mem {
                    c,
                    s: stride(terms),
                },
            }
        };
        let mut ops = Vec::with_capacity(body.len());
        let mut prov = Vec::with_capacity(if self.has_prov { body.len() } else { 0 });
        for (j, node) in body.iter().enumerate() {
            let RNode::Op(op) = node else { unreachable!() };
            ops.push(match op {
                ROp::Add { d, a, b } => VecOp::Add {
                    d: to_dst(*d),
                    a: to_src(*a),
                    b: to_src(*b),
                },
                ROp::Sub { d, a, b } => VecOp::Sub {
                    d: to_dst(*d),
                    a: to_src(*a),
                    b: to_src(*b),
                },
                ROp::Mul { d, a, b } => VecOp::Mul {
                    d: to_dst(*d),
                    a: to_src(*a),
                    b: to_src(*b),
                },
                ROp::Div { d, a, b } => VecOp::Div {
                    d: to_dst(*d),
                    a: to_src(*a),
                    b: to_src(*b),
                },
                ROp::Copy { d, a } => VecOp::Copy {
                    d: to_dst(*d),
                    a: to_src(*a),
                },
                ROp::Neg { d, a } => VecOp::Neg {
                    d: to_dst(*d),
                    a: to_src(*a),
                },
                ROp::MulAdd { d, a, b, c } => VecOp::MulAdd {
                    d: to_dst(*d),
                    a: to_src(*a),
                    b: to_src(*b),
                    c: to_src(*c),
                },
                ROp::MulSub { d, a, b, c } => VecOp::MulSub {
                    d: to_dst(*d),
                    a: to_src(*a),
                    b: to_src(*b),
                    c: to_src(*c),
                },
                ROp::NegMulAdd { d, a, b, c } => VecOp::NegMulAdd {
                    d: to_dst(*d),
                    a: to_src(*a),
                    b: to_src(*b),
                    c: to_src(*c),
                },
                ROp::Butterfly { d1, d2, a, b } => VecOp::Butterfly {
                    d1: to_dst(*d1),
                    d2: to_dst(*d2),
                    a: to_src(*a),
                    b: to_src(*b),
                },
                _ => unreachable!("pass 1 rejected non-float ops"),
            });
            if self.has_prov {
                prov.push(self.node_prov[frame.node_idx + 1 + j]);
            }
        }
        Some(VecPlan {
            ops,
            prov,
            lane_cells,
        })
    }
}

/// Resolves a lowered program into the fused cursor-based engine, or
/// reports why it must stay on the reference executor.
pub(crate) fn resolve(prog: &VmProgram) -> Result<ResolvedProgram, Unsupported> {
    let mut stats = ResolveStats::default();
    let (fused, fprov) = fuse(prog.code(), prog.prov(), &mut stats);

    // Fusion shifts indices, so the original `end_pc` links are void;
    // re-match loop starts to their `hi` bound over the fused stream.
    let mut hi_at: HashMap<usize, i64> = HashMap::new();
    {
        let mut stack = Vec::new();
        for (idx, fop) in fused.iter().enumerate() {
            match fop {
                FOp::Plain(Op::LoopStart { .. }) => stack.push(idx),
                FOp::Plain(Op::LoopEnd { hi, .. }) => {
                    let start = stack.pop().ok_or(Unsupported("malformed loop structure"))?;
                    hi_at.insert(start, *hi);
                }
                _ => {}
            }
        }
        if !stack.is_empty() {
            return Err(Unsupported("malformed loop structure"));
        }
    }

    let mut b = Builder::new(prog, stats);
    b.has_prov = !fprov.is_empty();
    for (idx, fop) in fused.iter().enumerate() {
        if b.has_prov {
            b.cur_prov = fprov[idx];
        }
        match fop {
            FOp::Plain(Op::LoopStart { var, lo, vec, .. }) => {
                if b.frames.iter().any(|f| f.var == *var) {
                    // Shadowed loop variables would need scoped
                    // cursor contexts; fall back instead.
                    return Err(Unsupported("nested loops share a variable slot"));
                }
                let hi = *hi_at
                    .get(&idx)
                    .ok_or(Unsupported("malformed loop structure"))?;
                let trips = if *lo > hi {
                    0
                } else {
                    u64::try_from(hi as i128 - *lo as i128 + 1)
                        .map_err(|_| Unsupported("trip-count overflow"))?
                };
                b.frames.push(Frame {
                    node_idx: b.nodes.len(),
                    var: *var,
                    lo: *lo,
                    hi,
                    trips,
                    steps: Vec::new(),
                    vec_hint: *vec,
                });
                b.push_node(RNode::Loop {
                    trips,
                    var: *var,
                    lo: *lo,
                    end: 0,
                    steps: (0, 0),
                    vec: None,
                });
            }
            FOp::Plain(Op::LoopEnd { .. }) => {
                let frame = b
                    .frames
                    .pop()
                    .ok_or(Unsupported("malformed loop structure"))?;
                let s0 = u32::try_from(b.steps.len()).map_err(|_| Unsupported("step overflow"))?;
                b.steps.extend_from_slice(&frame.steps);
                let s1 = u32::try_from(b.steps.len()).map_err(|_| Unsupported("step overflow"))?;
                let end =
                    u32::try_from(b.nodes.len()).map_err(|_| Unsupported("program too large"))?;
                let vec_idx = if frame.vec_hint {
                    match b.vec_plan(&frame) {
                        Some(plan) => {
                            b.stats.vec_loops += 1;
                            b.stats.vec_ops += plan.ops.len() as u64;
                            let id = u32::try_from(b.vec_plans.len())
                                .map_err(|_| Unsupported("program too large"))?;
                            b.vec_plans.push(plan);
                            Some(id)
                        }
                        None => {
                            b.stats.vec_demoted += 1;
                            None
                        }
                    }
                } else {
                    None
                };
                if let RNode::Loop {
                    end: e, steps, vec, ..
                } = &mut b.nodes[frame.node_idx]
                {
                    *e = end;
                    *steps = (s0, s1);
                    *vec = vec_idx;
                }
            }
            FOp::Plain(Op::Bin { op, dst, a, b: rhs }) => {
                let ca = b.src(a)?;
                let cb = b.src(rhs)?;
                let cd = b.dst(dst)?;
                b.push_node(RNode::Op(match op {
                    BinOp::Add => ROp::Add {
                        d: cd,
                        a: ca,
                        b: cb,
                    },
                    BinOp::Sub => ROp::Sub {
                        d: cd,
                        a: ca,
                        b: cb,
                    },
                    BinOp::Mul => ROp::Mul {
                        d: cd,
                        a: ca,
                        b: cb,
                    },
                    BinOp::Div => ROp::Div {
                        d: cd,
                        a: ca,
                        b: cb,
                    },
                }));
            }
            FOp::Plain(Op::Un { neg, dst, a }) => {
                let ca = b.src(a)?;
                let cd = b.dst(dst)?;
                b.push_node(RNode::Op(if *neg {
                    ROp::Neg { d: cd, a: ca }
                } else {
                    ROp::Copy { d: cd, a: ca }
                }));
            }
            FOp::Plain(Op::IntBin { op, dst, a, b: rhs }) => {
                let a = b.ri(a);
                let rhs = b.ri(rhs);
                b.push_node(RNode::Op(ROp::IntBin {
                    op: *op,
                    dst: *dst,
                    a,
                    b: rhs,
                }));
            }
            FOp::Plain(Op::IntUn { neg, dst, a }) => {
                let a = b.ri(a);
                b.push_node(RNode::Op(ROp::IntUn {
                    neg: *neg,
                    dst: *dst,
                    a,
                }));
            }
            FOp::MulAdd { dst, a, b: m, c } => {
                let ca = b.src(a)?;
                let cb = b.src(m)?;
                let cc = b.src(c)?;
                let cd = b.dst(dst)?;
                b.push_node(RNode::Op(ROp::MulAdd {
                    d: cd,
                    a: ca,
                    b: cb,
                    c: cc,
                }));
            }
            FOp::MulSub { dst, a, b: m, c } => {
                let ca = b.src(a)?;
                let cb = b.src(m)?;
                let cc = b.src(c)?;
                let cd = b.dst(dst)?;
                b.push_node(RNode::Op(ROp::MulSub {
                    d: cd,
                    a: ca,
                    b: cb,
                    c: cc,
                }));
            }
            FOp::NegMulAdd { dst, a, b: m, c } => {
                let ca = b.src(a)?;
                let cb = b.src(m)?;
                let cc = b.src(c)?;
                let cd = b.dst(dst)?;
                b.push_node(RNode::Op(ROp::NegMulAdd {
                    d: cd,
                    a: ca,
                    b: cb,
                    c: cc,
                }));
            }
            FOp::Butterfly { d1, d2, a, b: rhs } => {
                let ca = b.src(a)?;
                let cb = b.src(rhs)?;
                let cd1 = b.dst(d1)?;
                let cd2 = b.dst(d2)?;
                b.push_node(RNode::Op(ROp::Butterfly {
                    d1: cd1,
                    d2: cd2,
                    a: ca,
                    b: cb,
                }));
            }
        }
    }
    if !b.frames.is_empty() {
        return Err(Unsupported("malformed loop structure"));
    }
    let mut stats = b.stats;
    stats.cursors = b.init.len() as u64;
    let (mut need_r, mut need_loop) = (0usize, 0usize);
    for node in &b.nodes {
        let (rs, ls): (&[u32], &[u32]) = match node {
            RNode::Loop { var, .. } => (&[], std::slice::from_ref(var)),
            RNode::Op(ROp::RToCell { r_idx, .. }) => (std::slice::from_ref(r_idx), &[]),
            RNode::Op(ROp::LoopToCell { slot, .. }) => (&[], std::slice::from_ref(slot)),
            RNode::Op(ROp::IntBin { dst, a, b, .. }) => {
                need_r = need_r.max(*dst as usize + 1);
                for s in [a, b] {
                    match s {
                        RI::R(k) => need_r = need_r.max(*k as usize + 1),
                        RI::Loop(k) => need_loop = need_loop.max(*k as usize + 1),
                        RI::Const(_) => {}
                    }
                }
                (&[], &[])
            }
            RNode::Op(ROp::IntUn { dst, a, .. }) => {
                need_r = need_r.max(*dst as usize + 1);
                match a {
                    RI::R(k) => need_r = need_r.max(*k as usize + 1),
                    RI::Loop(k) => need_loop = need_loop.max(*k as usize + 1),
                    RI::Const(_) => {}
                }
                (&[], &[])
            }
            RNode::Op(_) => (&[], &[]),
        };
        for &k in rs {
            need_r = need_r.max(k as usize + 1);
        }
        for &k in ls {
            need_loop = need_loop.max(k as usize + 1);
        }
    }
    Ok(ResolvedProgram {
        node_prov: if b.has_prov && b.node_prov.len() == b.nodes.len() {
            b.node_prov
        } else {
            Vec::new()
        },
        nodes: b.nodes,
        steps: b.steps,
        init_cursors: b.init,
        arena_init: b.arena_init,
        arena_len: b.arena_len,
        in_off: b.in_off,
        n_in: b.n_in,
        out_off: b.out_off,
        n_out: b.n_out,
        track_loops: b.track_loops,
        fma: false,
        need_r,
        need_loop,
        vec_plans: b.vec_plans,
        stats,
    })
}
