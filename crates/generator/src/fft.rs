//! FFT breakdown rules and factorization-tree enumeration.

use spl_formula::{formula_to_sexp, Formula};
use spl_frontend::sexp::Sexp;

/// Which identity splits a node (paper Equations 5, 7, 8, 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Eq. 5 (decimation in time):
    /// `F_rs = (F_r ⊗ I_s) T^{rs}_s (I_r ⊗ F_s) L^{rs}_r`.
    CooleyTukey,
    /// Eq. 7 (decimation in frequency):
    /// `F_rs = L^{rs}_s (I_r ⊗ F_s) T^{rs}_s (F_r ⊗ I_s)`.
    DecimationInFrequency,
    /// Eq. 8 (parallel form — every compute stage is `I ⊗ F`):
    /// `F_rs = L^{rs}_r (I_s ⊗ F_r) L^{rs}_s T^{rs}_s (I_r ⊗ F_s) L^{rs}_r`.
    Parallel,
    /// Eq. 9 (vector form — every compute stage is `F ⊗ I`):
    /// `F_rs = (F_r ⊗ I_s) T^{rs}_s L^{rs}_r (F_s ⊗ I_r)`.
    Vector,
}

/// All four rules, for sweeps.
pub const ALL_RULES: [Rule; 4] = [
    Rule::CooleyTukey,
    Rule::DecimationInFrequency,
    Rule::Parallel,
    Rule::Vector,
];

/// A binary factorization tree for `F_n`.
///
/// A [`FftTree::Leaf`] denotes `F_n` computed by definition (for `n = 2`,
/// the butterfly). A node splits `n = r·s` by one of the [`Rule`]s, with
/// subtrees for `F_r` and `F_s`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FftTree {
    /// `F_n` by definition.
    Leaf(usize),
    /// A split `n = left.size() * right.size()`.
    Node {
        /// The breakdown rule.
        rule: Rule,
        /// The `F_r` subtree.
        left: Box<FftTree>,
        /// The `F_s` subtree.
        right: Box<FftTree>,
    },
}

impl FftTree {
    /// A leaf of the given size.
    pub fn leaf(n: usize) -> FftTree {
        FftTree::Leaf(n)
    }

    /// A split node.
    pub fn node(rule: Rule, left: FftTree, right: FftTree) -> FftTree {
        FftTree::Node {
            rule,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// The transform size this tree computes.
    pub fn size(&self) -> usize {
        match self {
            FftTree::Leaf(n) => *n,
            FftTree::Node { left, right, .. } => left.size() * right.size(),
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        match self {
            FftTree::Leaf(_) => 1,
            FftTree::Node { left, right, .. } => left.leaf_count() + right.leaf_count(),
        }
    }

    /// Elaborates the tree into a typed formula.
    pub fn to_formula(&self) -> Formula {
        match self {
            FftTree::Leaf(n) => Formula::f(*n),
            FftTree::Node { rule, left, right } => {
                let r = left.size();
                let s = right.size();
                let n = r * s;
                let fr = left.to_formula();
                let fs = right.to_formula();
                let t_s = Formula::twiddle(n, s).expect("s divides n");
                let l = |stride: usize| Formula::stride(n, stride).expect("divides n");
                match rule {
                    Rule::CooleyTukey => Formula::compose(vec![
                        Formula::tensor(vec![fr, Formula::identity(s)]),
                        t_s,
                        Formula::tensor(vec![Formula::identity(r), fs]),
                        l(r),
                    ]),
                    Rule::DecimationInFrequency => Formula::compose(vec![
                        l(s),
                        Formula::tensor(vec![Formula::identity(r), fs]),
                        t_s,
                        Formula::tensor(vec![fr, Formula::identity(s)]),
                    ]),
                    Rule::Parallel => Formula::compose(vec![
                        l(r),
                        Formula::tensor(vec![Formula::identity(s), fr]),
                        l(s),
                        t_s,
                        Formula::tensor(vec![Formula::identity(r), fs]),
                        l(r),
                    ]),
                    Rule::Vector => Formula::compose(vec![
                        Formula::tensor(vec![fr, Formula::identity(s)]),
                        t_s,
                        l(r),
                        Formula::tensor(vec![fs, Formula::identity(r)]),
                    ]),
                }
            }
        }
    }

    /// Elaborates the tree into an S-expression for the compiler.
    pub fn to_sexp(&self) -> Sexp {
        formula_to_sexp(&self.to_formula())
    }

    /// A compact description of the tree shape, e.g. `((2x2)x2)`.
    pub fn describe(&self) -> String {
        match self {
            FftTree::Leaf(n) => n.to_string(),
            FftTree::Node { left, right, .. } => {
                format!("({}x{})", left.describe(), right.describe())
            }
        }
    }
}

/// The right-most factor-sequence instance of the general rule (Eq. 10):
/// `F_{n₁·…·n_t}` split as `n₁ × (n₂ × (…))` with the given rule at every
/// level. With all factors 2 this is the iterative radix-2 FFT; with two
/// factors it is plain Cooley–Tukey.
///
/// # Panics
///
/// Panics if `factors` is empty or contains a factor below 2.
pub fn ct_sequence(factors: &[usize], rule: Rule) -> FftTree {
    assert!(!factors.is_empty(), "ct_sequence: empty factor list");
    assert!(
        factors.iter().all(|&f| f >= 2),
        "ct_sequence: factors must be at least 2"
    );
    let mut it = factors.iter().rev();
    let mut tree = FftTree::leaf(*it.next().unwrap());
    for &f in it {
        tree = FftTree::node(rule, FftTree::leaf(f), tree);
    }
    tree
}

/// Enumerates *all* binary Cooley–Tukey factorization trees of `F_{2^k}`
/// over the given rule, with the naive-definition leaf admitted at every
/// size (the space the paper's Figure 2 draws its 45 formulas from).
///
/// The count follows `C(1) = 1`, `C(k) = 1 + Σ_{i=1}^{k-1} C(i)·C(k-i)`:
/// 1, 2, 5, 15, 51, ...
pub fn enumerate_trees(k: u32, rule: Rule) -> Vec<FftTree> {
    fn rec(k: u32, rule: Rule, memo: &mut Vec<Option<Vec<FftTree>>>) -> Vec<FftTree> {
        if let Some(v) = &memo[k as usize] {
            return v.clone();
        }
        let mut out = vec![FftTree::leaf(1 << k)];
        for i in 1..k {
            for l in rec(i, rule, memo) {
                for r in rec(k - i, rule, memo) {
                    out.push(FftTree::node(rule, l.clone(), r));
                }
            }
        }
        memo[k as usize] = Some(out.clone());
        out
    }
    assert!(k >= 1, "enumerate_trees: k must be at least 1");
    let mut memo = vec![None; k as usize + 1];
    rec(k, rule, &mut memo)
}

/// An error parsing a tree spec (see [`FftTree::from_spec`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad tree spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl FftTree {
    /// A compact textual spec that round-trips through
    /// [`FftTree::from_spec`] — the basis of the search's "wisdom" files
    /// (FFTW lets users save plans and reuse them in later sessions;
    /// paper Section 4.2).
    ///
    /// Grammar: a leaf is its size; a node is `(R left right)` with `R`
    /// one of `ct`, `dif`, `par`, `vec`.
    pub fn to_spec(&self) -> String {
        match self {
            FftTree::Leaf(n) => n.to_string(),
            FftTree::Node { rule, left, right } => {
                let r = match rule {
                    Rule::CooleyTukey => "ct",
                    Rule::DecimationInFrequency => "dif",
                    Rule::Parallel => "par",
                    Rule::Vector => "vec",
                };
                format!("({r} {} {})", left.to_spec(), right.to_spec())
            }
        }
    }

    /// Parses a spec produced by [`FftTree::to_spec`].
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] on malformed input.
    pub fn from_spec(s: &str) -> Result<FftTree, SpecError> {
        let tokens: Vec<String> = s
            .replace('(', " ( ")
            .replace(')', " ) ")
            .split_whitespace()
            .map(str::to_string)
            .collect();
        let mut pos = 0;
        let tree = parse_spec(&tokens, &mut pos)?;
        if pos != tokens.len() {
            return Err(SpecError(format!("trailing input in {s:?}")));
        }
        Ok(tree)
    }
}

fn parse_spec(tokens: &[String], pos: &mut usize) -> Result<FftTree, SpecError> {
    let tok = tokens
        .get(*pos)
        .ok_or_else(|| SpecError("unexpected end".into()))?;
    if tok == "(" {
        *pos += 1;
        let rule = match tokens.get(*pos).map(String::as_str) {
            Some("ct") => Rule::CooleyTukey,
            Some("dif") => Rule::DecimationInFrequency,
            Some("par") => Rule::Parallel,
            Some("vec") => Rule::Vector,
            other => return Err(SpecError(format!("unknown rule {other:?}"))),
        };
        *pos += 1;
        let left = parse_spec(tokens, pos)?;
        let right = parse_spec(tokens, pos)?;
        match tokens.get(*pos).map(String::as_str) {
            Some(")") => {
                *pos += 1;
                Ok(FftTree::node(rule, left, right))
            }
            other => Err(SpecError(format!("expected ')', got {other:?}"))),
        }
    } else {
        let n: usize = tok
            .parse()
            .map_err(|_| SpecError(format!("expected a size, got {tok:?}")))?;
        if n < 2 {
            return Err(SpecError(format!("leaf size {n} below 2")));
        }
        *pos += 1;
        Ok(FftTree::leaf(n))
    }
}

/// The 2-D DFT on an `rows × cols` grid (row-major data) as a single
/// formula: the row–column algorithm is exactly the tensor product
/// `DFT2D = F_rows ⊗ F_cols`, with each factor computed by its own
/// factorization tree — the tensor algebra gives the 2-D transform for
/// free, one of SPL's selling points.
pub fn fft_2d(rows: &FftTree, cols: &FftTree) -> Formula {
    Formula::tensor(vec![rows.to_formula(), cols.to_formula()])
}

/// The candidate `(r, s)` splits for a *right-most* factorization of
/// `F_n` (the restriction the paper applies for large sizes: when
/// `n = r·s`, only the second factor may be factored further), with the
/// left factor bounded by `max_leaf`.
pub fn rightmost_splits(n: usize, max_leaf: usize) -> Vec<(usize, usize)> {
    (2..=max_leaf.min(n / 2))
        .filter(|r| n.is_multiple_of(*r))
        .map(|r| (r, n / r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spl_formula::dense::to_dense;
    use spl_numeric::Complex;

    fn check_is_dft(tree: &FftTree) {
        let n = tree.size();
        let lhs = to_dense(&tree.to_formula()).unwrap();
        let rhs = to_dense(&Formula::f(n)).unwrap();
        assert!(
            lhs.max_diff(&rhs) < 1e-10,
            "{} (size {n}) is not the DFT",
            tree.describe()
        );
    }

    #[test]
    fn paper_f4_tree() {
        let t = FftTree::node(Rule::CooleyTukey, FftTree::leaf(2), FftTree::leaf(2));
        check_is_dft(&t);
    }

    #[test]
    fn all_rules_are_correct_factorizations() {
        for rule in ALL_RULES {
            for (r, s) in [(2usize, 2usize), (2, 4), (4, 2), (2, 8)] {
                let t = FftTree::node(rule, FftTree::leaf(r), FftTree::leaf(s));
                check_is_dft(&t);
            }
        }
    }

    #[test]
    fn nested_mixed_rules() {
        let f4 = FftTree::node(Rule::Vector, FftTree::leaf(2), FftTree::leaf(2));
        let f8 = FftTree::node(Rule::DecimationInFrequency, f4.clone(), FftTree::leaf(2));
        let f16 = FftTree::node(Rule::Parallel, FftTree::leaf(2), f8);
        check_is_dft(&f16);
        assert_eq!(f16.size(), 16);
        assert_eq!(f16.leaf_count(), 4);
    }

    #[test]
    fn ct_sequence_matches_dft() {
        for factors in [vec![2usize, 2, 2], vec![2, 4], vec![4, 2], vec![2, 2, 2, 2]] {
            let t = ct_sequence(&factors, Rule::CooleyTukey);
            assert_eq!(t.size(), factors.iter().product::<usize>());
            check_is_dft(&t);
        }
    }

    #[test]
    fn enumeration_counts() {
        assert_eq!(enumerate_trees(1, Rule::CooleyTukey).len(), 1);
        assert_eq!(enumerate_trees(2, Rule::CooleyTukey).len(), 2);
        assert_eq!(enumerate_trees(3, Rule::CooleyTukey).len(), 5);
        assert_eq!(enumerate_trees(4, Rule::CooleyTukey).len(), 15);
        assert_eq!(enumerate_trees(5, Rule::CooleyTukey).len(), 51);
    }

    #[test]
    fn enumerated_trees_are_distinct_and_correct() {
        let trees = enumerate_trees(4, Rule::CooleyTukey);
        for t in &trees {
            assert_eq!(t.size(), 16);
            check_is_dft(t);
        }
        let shapes: std::collections::HashSet<String> =
            trees.iter().map(FftTree::describe).collect();
        assert_eq!(shapes.len(), trees.len(), "trees must be distinct");
    }

    #[test]
    fn to_sexp_prints_paper_formula() {
        let t = FftTree::node(Rule::CooleyTukey, FftTree::leaf(2), FftTree::leaf(2));
        assert_eq!(
            t.to_sexp().to_string(),
            "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))"
        );
    }

    #[test]
    fn spec_round_trips() {
        let trees = [
            FftTree::leaf(8),
            ct_sequence(&[2, 4, 8], Rule::CooleyTukey),
            FftTree::node(
                Rule::Parallel,
                FftTree::node(Rule::Vector, FftTree::leaf(2), FftTree::leaf(4)),
                FftTree::node(
                    Rule::DecimationInFrequency,
                    FftTree::leaf(2),
                    FftTree::leaf(2),
                ),
            ),
        ];
        for t in trees {
            let spec = t.to_spec();
            let back = FftTree::from_spec(&spec).unwrap();
            assert_eq!(back, t, "{spec}");
        }
    }

    #[test]
    fn bad_specs_rejected() {
        for s in ["", "(ct 2", "(xx 2 2)", "(ct 2 2) 3", "1", "(ct 2 2 2)"] {
            assert!(FftTree::from_spec(s).is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn fft_2d_matches_row_column_reference() {
        use spl_numeric::reference;
        let rows = ct_sequence(&[2, 2], Rule::CooleyTukey);
        let cols = ct_sequence(&[2, 4], Rule::CooleyTukey);
        let f = fft_2d(&rows, &cols);
        assert_eq!((f.rows(), f.cols()), (32, 32));
        // Row-major 4x8 grid.
        let x: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.21).sin(), (i as f64 * 0.43).cos()))
            .collect();
        let got = spl_formula::dense::apply(&f, &x).unwrap();
        // Reference: DFT each row, then DFT each column.
        let (m, n) = (4usize, 8usize);
        let mut mid = vec![Complex::ZERO; 32];
        for r in 0..m {
            let row = reference::dft(&x[r * n..(r + 1) * n]);
            mid[r * n..(r + 1) * n].copy_from_slice(&row);
        }
        let mut want = vec![Complex::ZERO; 32];
        for c in 0..n {
            let col: Vec<Complex> = (0..m).map(|r| mid[r * n + c]).collect();
            let out = reference::dft(&col);
            for (r, v) in out.into_iter().enumerate() {
                want[r * n + c] = v;
            }
        }
        for (a, b) in got.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-11), "{a} vs {b}");
        }
    }

    #[test]
    fn rightmost_splits_cover_divisors() {
        assert_eq!(
            rightmost_splits(128, 64),
            vec![(2, 64), (4, 32), (8, 16), (16, 8), (32, 4), (64, 2)]
        );
        assert_eq!(rightmost_splits(4, 64), vec![(2, 2)]);
        assert_eq!(rightmost_splits(12, 3), vec![(2, 6), (3, 4)]);
    }

    #[test]
    fn apply_tree_gives_dft_result() {
        let t = ct_sequence(&[2, 2, 2, 2], Rule::CooleyTukey);
        let x: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64).sin(), (i as f64).cos()))
            .collect();
        let y = spl_formula::dense::apply(&t.to_formula(), &x).unwrap();
        let want = spl_numeric::reference::dft(&x);
        for (a, b) in y.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-11));
        }
    }

    #[test]
    #[should_panic(expected = "factors must be at least 2")]
    fn bad_factor_panics() {
        ct_sequence(&[2, 1], Rule::CooleyTukey);
    }
}
