//! Discrete cosine transform breakdown rules (paper Section 2.1):
//!
//! ```text
//! DCTII_2 = diag(1, 1/√2) · F_2
//! DCTII_n = P · (DCTII_{n/2} ⊕ DCTIV_{n/2}) · (F_2 ⊗ I_{n/2}) · Q
//! DCTIV_n = S · DCTII_n · D
//! ```
//!
//! with `P = L^n_{n/2}` (even/odd interleave), `Q = I_{n/2} ⊕ J_{n/2}`
//! (fold the reversed second half onto the first), and
//! `D = diag(2·cos((2k+1)π/4n))`. The paper leaves `S` abstract; the
//! correct factor is the inverse of the bidiagonal matrix `B`
//! (`B[0][0] = 2`, `B[k][k] = B[k][k-1] = 1`), which is applied in O(n)
//! by the running recurrence `z_0 = y_0/2, z_k = y_k − z_{k-1}`.
//! That operator is *not* one of SPL's built-ins — we define it as the
//! user template `(SIV n)` ([`TEMPLATE_SOURCE`]), exercising the
//! compiler's extension mechanism exactly as Section 3.2 advertises.

use spl_formula::{formula_to_sexp, Formula};
use spl_frontend::sexp::Sexp;
use spl_numeric::Complex;

/// SPL source for the `(SIV n)` template: the `S` factor of the DCT-IV
/// rule as an O(n) recurrence. Compile this (e.g. by prepending it to the
/// program handed to `Compiler::compile_source`, or by parsing and adding
/// it to the template table) before compiling any [`dct4`] formula.
pub const TEMPLATE_SOURCE: &str = "
; S factor of DCT-IV: z0 = y0/2, z_k = y_k - z_{k-1}  (B^{-1}, O(n)).
(template (SIV n_) [n_>=2]
  ( $f0 = 0.5 * $in(0)
    $out(0) = $f0
    do $i0 = 1,n_-1
         $f0 = $in($i0) - $f0
         $out($i0) = $f0
     end ))
";

/// The recursive DCT-II formula for `n = 2^k`, `n ≥ 2`, as an
/// S-expression (it contains `(SIV m)` sub-formulas, so it is compiled
/// with [`TEMPLATE_SOURCE`] registered).
///
/// # Panics
///
/// Panics unless `n` is a power of two and at least 2.
pub fn dct2(n: usize) -> Sexp {
    assert!(n.is_power_of_two() && n >= 2, "dct2: n must be 2^k >= 2");
    if n == 2 {
        // diag(1, 1/sqrt 2) · F2
        let d = Formula::diagonal(vec![Complex::ONE, Complex::real(1.0 / 2.0_f64.sqrt())]);
        return formula_to_sexp(&Formula::compose(vec![d, Formula::f(2)]));
    }
    let h = n / 2;
    let p = formula_to_sexp(&Formula::stride(n, h).expect("h divides n"));
    let butterfly = formula_to_sexp(&Formula::tensor(vec![Formula::f(2), Formula::identity(h)]));
    let q = formula_to_sexp(&Formula::direct_sum(vec![
        Formula::identity(h),
        Formula::reversal(h),
    ]));
    let middle = Sexp::List(vec![Sexp::sym("direct-sum"), dct2(h), dct4(h)]);
    Sexp::List(vec![Sexp::sym("compose"), p, middle, butterfly, q])
}

/// The DCT-IV formula `S · DCTII_n · D` for `n = 2^k`, `n ≥ 2`.
///
/// # Panics
///
/// Panics unless `n` is a power of two and at least 2.
pub fn dct4(n: usize) -> Sexp {
    assert!(n.is_power_of_two() && n >= 2, "dct4: n must be 2^k >= 2");
    let s = Sexp::List(vec![Sexp::sym("SIV"), Sexp::Int(n as i64)]);
    let d = Formula::diagonal(
        (0..n)
            .map(|k| {
                Complex::real(
                    2.0 * (std::f64::consts::PI * (2 * k + 1) as f64 / (4 * n) as f64).cos(),
                )
            })
            .collect(),
    );
    Sexp::List(vec![Sexp::sym("compose"), s, dct2(n), formula_to_sexp(&d)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use spl_compiler::Compiler;
    use spl_frontend::ast::{DataType, DirectiveState};
    use spl_icode::interp::run;
    use spl_numeric::reference;

    fn compile_and_apply(sexp: &Sexp, x: &[f64]) -> Vec<f64> {
        let mut c = Compiler::new();
        c.compile_source(TEMPLATE_SOURCE).unwrap();
        let directives = DirectiveState {
            datatype: DataType::Real,
            ..Default::default()
        };
        let unit = c.compile_sexp(sexp, &directives).unwrap();
        let xin: Vec<Complex> = x.iter().map(|&v| Complex::real(v)).collect();
        run(&unit.program, &xin)
            .unwrap()
            .into_iter()
            .map(|c| c.re)
            .collect()
    }

    fn workload(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 5 % 11) as f64) * 0.5 - 2.0).collect()
    }

    #[test]
    fn dct2_base_case() {
        let x = workload(2);
        let got = compile_and_apply(&dct2(2), &x);
        let want = reference::dct2(&x);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn dct2_recursion_matches_reference() {
        for n in [4usize, 8, 16, 32] {
            let x = workload(n);
            let got = compile_and_apply(&dct2(n), &x);
            let want = reference::dct2(&x);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn dct4_matches_reference() {
        for n in [2usize, 4, 8, 16] {
            let x = workload(n);
            let got = compile_and_apply(&dct4(n), &x);
            let want = reference::dct4(&x);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn non_power_of_two_rejected() {
        dct2(6);
    }
}
