//! Circular convolution via the convolution theorem.
//!
//! The paper cites Tolimieri's *Algorithms for discrete Fourier
//! transforms and convolution* as part of the algorithm space SPL covers;
//! convolution is the canonical "class of algorithms beyond the bare FFT"
//! that the language expresses naturally:
//!
//! ```text
//! h ⊛ x  =  IDFT · diag(DFT h) · DFT · x
//! ```
//!
//! All three factors are SPL formulas: `DFT` is any factorization tree,
//! `diag(DFT h)` is a `(diagonal …)` whose entries the generator computes
//! from the filter taps, and `IDFT = diag(1/n) · P_neg · DFT` where
//! `P_neg` is the index-negation permutation (`ω^{-pq}` row reversal).

use spl_formula::Formula;
use spl_numeric::{reference, Complex};

use crate::fft::FftTree;

/// The index-negation permutation `p ↦ (n − p) mod n` as a formula;
/// conjugating the DFT with it yields the inverse DFT (up to `1/n`).
pub fn negation_permutation(n: usize) -> Formula {
    let p: Vec<usize> = (0..n).map(|i| (n - i) % n).collect();
    Formula::permutation(p).expect("negation map is a permutation")
}

/// The inverse DFT as a formula: `IDFT_n = diag(1/n) · P_neg · F_n`,
/// with `F_n` computed by the given factorization tree.
///
/// # Panics
///
/// Panics if the tree's size is zero (trees are at least size 2 by
/// construction).
pub fn idft(tree: &FftTree) -> Formula {
    let n = tree.size();
    let scale = Formula::diagonal(vec![Complex::real(1.0 / n as f64); n]);
    Formula::compose(vec![scale, negation_permutation(n), tree.to_formula()])
}

/// The circular-convolution-by-`h` operator as a single SPL formula:
/// `conv_h = IDFT · diag(DFT h) · DFT`.
///
/// The forward and inverse transforms use the same factorization tree.
///
/// # Panics
///
/// Panics if `h.len()` differs from the tree size.
pub fn circular_convolution(h: &[Complex], tree: &FftTree) -> Formula {
    let n = tree.size();
    assert_eq!(h.len(), n, "filter length must match the transform size");
    let hf = reference::dft(h);
    Formula::compose(vec![idft(tree), Formula::diagonal(hf), tree.to_formula()])
}

/// A windowed-sinc low-pass filter kernel of length `n` with normalized
/// cutoff `fc` (0 < fc < 0.5), Hann-windowed over the first `taps`
/// positions and zero elsewhere — a realistic FIR design for the
/// examples.
///
/// # Panics
///
/// Panics unless `0 < taps <= n` and `0 < fc < 0.5`.
pub fn lowpass_kernel(n: usize, taps: usize, fc: f64) -> Vec<Complex> {
    assert!(taps > 0 && taps <= n, "taps must be within the length");
    assert!(
        fc > 0.0 && fc < 0.5,
        "cutoff must be a normalized frequency"
    );
    let mut h = vec![Complex::ZERO; n];
    let mid = (taps - 1) as f64 / 2.0;
    let mut sum = 0.0;
    for (k, slot) in h.iter_mut().take(taps).enumerate() {
        let t = k as f64 - mid;
        let sinc = if t.abs() < 1e-12 {
            2.0 * fc
        } else {
            (2.0 * std::f64::consts::PI * fc * t).sin() / (std::f64::consts::PI * t)
        };
        let window = 0.5 - 0.5 * (2.0 * std::f64::consts::PI * k as f64 / (taps - 1) as f64).cos();
        let v = sinc * window;
        *slot = Complex::real(v);
        sum += v;
    }
    // Normalize to unit DC gain.
    if sum != 0.0 {
        for slot in &mut h {
            *slot = *slot * (1.0 / sum);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::{ct_sequence, Rule};
    use spl_formula::dense::apply;

    fn workload(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64 * 0.43).sin(), (i as f64 * 0.19).cos()))
            .collect()
    }

    #[test]
    fn idft_formula_inverts_dft() {
        let tree = ct_sequence(&[2, 2, 2], Rule::CooleyTukey);
        let x = workload(8);
        let forward = apply(&tree.to_formula(), &x).unwrap();
        let back = apply(&idft(&tree), &forward).unwrap();
        for (a, b) in back.iter().zip(&x) {
            assert!(a.approx_eq(*b, 1e-12), "{a} vs {b}");
        }
    }

    #[test]
    fn convolution_formula_matches_reference() {
        let tree = ct_sequence(&[4, 4], Rule::CooleyTukey);
        let h = workload(16);
        let x: Vec<Complex> = workload(16).iter().map(|z| z.conj()).collect();
        let formula = circular_convolution(&h, &tree);
        let got = apply(&formula, &x).unwrap();
        let want = reference::circular_convolution(&h, &x);
        for (a, b) in got.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-11), "{a} vs {b}");
        }
    }

    #[test]
    fn convolution_compiles_and_runs() {
        use spl_compiler::Compiler;
        use spl_formula::formula_to_sexp;
        use spl_frontend::ast::{DataType, DirectiveState};
        let tree = ct_sequence(&[2, 4], Rule::CooleyTukey);
        let h = lowpass_kernel(8, 5, 0.25);
        let formula = circular_convolution(&h, &tree);
        let mut c = Compiler::new();
        let d = DirectiveState {
            datatype: DataType::Complex,
            codetype: DataType::Real,
            ..Default::default()
        };
        let unit = c.compile_sexp(&formula_to_sexp(&formula), &d).unwrap();
        let x = workload(8);
        let flat: Vec<Complex> = x
            .iter()
            .flat_map(|z| [Complex::real(z.re), Complex::real(z.im)])
            .collect();
        let y = spl_icode::interp::run(&unit.program, &flat).unwrap();
        let got: Vec<Complex> = y
            .chunks(2)
            .map(|p| Complex::new(p[0].re, p[1].re))
            .collect();
        let want = reference::circular_convolution(&h, &x);
        for (a, b) in got.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-11));
        }
    }

    #[test]
    fn lowpass_kernel_has_unit_dc_gain() {
        let h = lowpass_kernel(32, 15, 0.2);
        let sum: Complex = h.iter().fold(Complex::ZERO, |a, &b| a + b);
        assert!((sum.re - 1.0).abs() < 1e-12 && sum.im.abs() < 1e-15);
    }

    #[test]
    fn negation_permutation_is_involution() {
        let p = negation_permutation(8);
        let x = workload(8);
        let twice = apply(&p, &apply(&p, &x).unwrap()).unwrap();
        for (a, b) in twice.iter().zip(&x) {
            assert!(a.approx_eq(*b, 0.0));
        }
    }
}
