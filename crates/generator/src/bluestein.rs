//! Bluestein's chirp-z algorithm: the DFT of *arbitrary* size — prime
//! sizes included — in O(m log m) through a power-of-two circular
//! convolution.
//!
//! With `c_k = ω_{2n}^{k²}` the DFT rearranges as
//!
//! ```text
//! X_j = c_j · Σ_k (x_k c_k) · ω_{2n}^{-(j-k)²}
//! ```
//!
//! i.e. a chirp pre-multiply, a linear convolution with the conjugate
//! chirp, and a chirp post-multiply. The linear convolution embeds in a
//! circular convolution of any size `m ≥ 2n − 1`, which we take as a
//! power of two so the [`crate::conv`] machinery (around any
//! Cooley–Tukey tree) applies. The embed/extract steps are *rectangular*
//! operators defined by user templates — exercising the template
//! mechanism's support for non-square user operators end to end.

use spl_formula::{formula_to_sexp, Formula};
use spl_frontend::sexp::Sexp;
use spl_numeric::{twiddle::omega, Complex};

use crate::conv::circular_convolution;
use crate::fft::{ct_sequence, FftTree, Rule};

/// SPL templates for the rectangular embed/extract operators:
/// `(pad m n)` copies `n` inputs and zero-fills up to `m`;
/// `(extract n m)` keeps the first `n` of `m` inputs. Register these
/// (e.g. via `Compiler::compile_source`) before compiling a Bluestein
/// formula.
pub const TEMPLATE_SOURCE: &str = "
; (pad m n): R^n -> R^m, zero-extended.
(template (pad m_ n_) [m_>n_ && n_>=1]
  (do $i0 = 0,n_-1
        $out($i0) = $in($i0)
   end
   do $i0 = n_,m_-1
        $out($i0) = 0
   end))

; (extract n m): R^m -> R^n, first n coordinates. The compiler infers a
; template's input size from the largest input element it touches, so a
; dead read of $in(m-1) pins the true width (dead-code elimination
; removes it from the generated code).
(template (extract n_ m_) [m_>n_ && n_>=1]
  ( $f0 = $in(m_-1)
    do $i0 = 0,n_-1
        $out($i0) = $in($i0)
   end))
";

/// The chirp `c_k = ω_{2n}^{k²}` for `k = 0..n`.
fn chirp(n: usize) -> Vec<Complex> {
    (0..n).map(|k| omega(2 * n, (k * k) as i64)).collect()
}

/// The circular-convolution kernel: `b[k] = ω_{2n}^{-k²}` wrapped onto
/// `m` points (`b[m-k] = b[k]` for `0 < k < n`).
fn wrapped_kernel(n: usize, m: usize) -> Vec<Complex> {
    let mut b = vec![Complex::ZERO; m];
    for k in 0..n {
        let v = omega(2 * n, -((k * k) as i64));
        b[k] = v;
        if k > 0 {
            b[m - k] = v;
        }
    }
    b
}

/// The smallest power of two that can carry the length-`n` Bluestein
/// convolution (`≥ 2n − 1`).
pub fn convolution_size(n: usize) -> usize {
    (2 * n - 1).next_power_of_two()
}

/// The `F_n` formula for **any** `n ≥ 2` via Bluestein's algorithm, with
/// the inner power-of-two FFTs computed by the given tree (whose size
/// must be [`convolution_size`]`(n)`).
///
/// # Panics
///
/// Panics if `n < 2` or the tree size is not `convolution_size(n)`.
pub fn bluestein_with_tree(n: usize, tree: &FftTree) -> Sexp {
    assert!(n >= 2, "bluestein: n must be at least 2");
    let m = convolution_size(n);
    assert_eq!(tree.size(), m, "tree must compute the {m}-point FFT");
    let c = chirp(n);
    let pre = formula_to_sexp(&Formula::diagonal(c.clone()));
    let post = formula_to_sexp(&Formula::diagonal(c));
    let conv = formula_to_sexp(&circular_convolution(&wrapped_kernel(n, m), tree));
    let pad = Sexp::List(vec![
        Sexp::sym("pad"),
        Sexp::Int(m as i64),
        Sexp::Int(n as i64),
    ]);
    let extract = Sexp::List(vec![
        Sexp::sym("extract"),
        Sexp::Int(n as i64),
        Sexp::Int(m as i64),
    ]);
    Sexp::List(vec![Sexp::sym("compose"), post, extract, conv, pad, pre])
}

/// [`bluestein_with_tree`] with a default radix-2 tree for the inner
/// transforms.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn bluestein(n: usize) -> Sexp {
    assert!(n >= 2, "bluestein: n must be at least 2");
    let m = convolution_size(n);
    let k = m.trailing_zeros();
    let tree = ct_sequence(&vec![2usize; k as usize], Rule::CooleyTukey);
    bluestein_with_tree(n, &tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spl_compiler::Compiler;
    use spl_frontend::ast::{DataType, DirectiveState};
    use spl_numeric::{reference, relative_rms_error};

    fn run(sexp: &Sexp, x: &[Complex]) -> Vec<Complex> {
        let mut c = Compiler::new();
        c.compile_source(TEMPLATE_SOURCE).unwrap();
        let d = DirectiveState {
            datatype: DataType::Complex,
            codetype: DataType::Real,
            ..Default::default()
        };
        let unit = c.compile_sexp(sexp, &d).unwrap();
        let flat: Vec<Complex> = x
            .iter()
            .flat_map(|z| [Complex::real(z.re), Complex::real(z.im)])
            .collect();
        let y = spl_icode::interp::run(&unit.program, &flat).unwrap();
        y.chunks(2)
            .map(|p| Complex::new(p[0].re, p[1].re))
            .collect()
    }

    fn workload(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64 * 0.71).sin(), (i as f64 * 0.37).cos()))
            .collect()
    }

    #[test]
    fn convolution_sizes() {
        assert_eq!(convolution_size(2), 4);
        assert_eq!(convolution_size(5), 16);
        assert_eq!(convolution_size(7), 16);
        assert_eq!(convolution_size(17), 64);
    }

    #[test]
    fn prime_sizes_compute_the_dft() {
        for n in [3usize, 5, 7, 11, 13] {
            let x = workload(n);
            let got = run(&bluestein(n), &x);
            let want = reference::dft(&x);
            let err = relative_rms_error(&got, &want);
            assert!(err < 1e-10, "n={n}: err {err}");
        }
    }

    #[test]
    fn composite_and_power_of_two_sizes_also_work() {
        for n in [2usize, 6, 8, 12] {
            let x = workload(n);
            let got = run(&bluestein(n), &x);
            let want = reference::dft(&x);
            assert!(relative_rms_error(&got, &want) < 1e-10, "n={n}");
        }
    }

    #[test]
    fn shape_is_n_by_n() {
        use spl_frontend::parse_program;
        use spl_templates::{shape::shape_of, TemplateTable};
        let mut table = TemplateTable::builtin();
        for item in parse_program(TEMPLATE_SOURCE).unwrap().items {
            if let spl_frontend::Item::Template(t) = item {
                table.add(t);
            }
        }
        let f = bluestein(7);
        assert_eq!(shape_of(&f, &table).unwrap(), (7, 7));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn size_one_rejected() {
        bluestein(1);
    }
}
