#![warn(missing_docs)]

//! The formula generator (the SPIRAL component feeding the SPL compiler).
//!
//! Produces SPL formulas — algorithm variants — from breakdown rules:
//!
//! * **FFT** ([`fft`]): the Cooley–Tukey rule (paper Eq. 5), decimation in
//!   frequency (Eq. 7), the parallel form (Eq. 8), the vector form
//!   (Eq. 9), multi-factor sequences (Eq. 10), and exhaustive enumeration
//!   of factorization trees;
//! * **WHT** ([`wht`]): the Walsh–Hadamard split rule;
//! * **DCT** ([`dct`]): the recursive DCT-II / DCT-IV rules, including an
//!   O(n) user-defined operator exercising the template-extension
//!   mechanism;
//! * **convolution** ([`conv`]): circular convolution by the convolution
//!   theorem, as a single SPL formula around any FFT factorization;
//! * **Bluestein** ([`bluestein`]): arbitrary-size (prime included) DFTs
//!   through a power-of-two convolution, with rectangular pad/extract
//!   operators defined as user templates.
//!
//! Every generator returns S-expressions ready for the compiler; where the
//! formula uses only built-in operators it can also be converted to a
//! typed [`spl_formula::Formula`] for dense-matrix verification.
//!
//! # Examples
//!
//! ```
//! use spl_generator::fft::{FftTree, Rule};
//!
//! // The paper's F4 factorization.
//! let tree = FftTree::node(Rule::CooleyTukey, FftTree::leaf(2), FftTree::leaf(2));
//! assert_eq!(tree.size(), 4);
//! assert_eq!(
//!     tree.to_sexp().to_string(),
//!     "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))"
//! );
//! ```

pub mod bluestein;
pub mod conv;
pub mod dct;
pub mod fft;
pub mod wht;
