//! Walsh–Hadamard transform breakdown rule (paper Section 2.1):
//!
//! `WHT_2 = F_2`,
//! `WHT_{2^n} = Π_{i=1}^{t} (I_{2^{n_1+…+n_{i-1}}} ⊗ WHT_{2^{n_i}} ⊗ I_{2^{n_{i+1}+…+n_t}})`.

use spl_formula::{formula_to_sexp, Formula};
use spl_frontend::sexp::Sexp;

/// A factorization tree for `WHT_{2^k}`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum WhtTree {
    /// `WHT_{2^k}` computed directly as the k-fold tensor power of `F_2`.
    Leaf(u32),
    /// The split rule over exponent parts `k = k_1 + … + k_t`.
    Split(Vec<WhtTree>),
}

impl WhtTree {
    /// A direct leaf of `2^k` points.
    pub fn leaf(k: u32) -> WhtTree {
        WhtTree::Leaf(k)
    }

    /// A split node.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two children are given.
    pub fn split(children: Vec<WhtTree>) -> WhtTree {
        assert!(children.len() >= 2, "WHT split needs at least two parts");
        WhtTree::Split(children)
    }

    /// The exponent: this tree computes `WHT_{2^k}`.
    pub fn exponent(&self) -> u32 {
        match self {
            WhtTree::Leaf(k) => *k,
            WhtTree::Split(children) => children.iter().map(WhtTree::exponent).sum(),
        }
    }

    /// The transform size `2^k`.
    pub fn size(&self) -> usize {
        1usize << self.exponent()
    }

    /// Elaborates into a typed formula.
    pub fn to_formula(&self) -> Formula {
        match self {
            WhtTree::Leaf(k) => Formula::tensor((0..*k).map(|_| Formula::f(2)).collect()),
            WhtTree::Split(children) => {
                let total = self.exponent();
                let mut factors = Vec::with_capacity(children.len());
                let mut before = 0u32;
                for child in children {
                    let k = child.exponent();
                    let after = total - before - k;
                    let mut parts = Vec::new();
                    if before > 0 {
                        parts.push(Formula::identity(1 << before));
                    }
                    parts.push(child.to_formula());
                    if after > 0 {
                        parts.push(Formula::identity(1 << after));
                    }
                    factors.push(Formula::tensor(parts));
                    before += k;
                }
                Formula::compose(factors)
            }
        }
    }

    /// Elaborates into an S-expression for the compiler.
    pub fn to_sexp(&self) -> Sexp {
        formula_to_sexp(&self.to_formula())
    }
}

/// The balanced binary WHT tree for `2^k` points.
pub fn balanced(k: u32) -> WhtTree {
    if k <= 1 {
        return WhtTree::leaf(k);
    }
    let half = k / 2;
    WhtTree::split(vec![balanced(half), balanced(k - half)])
}

/// The fully split (all-`F_2`-stages) WHT, the iterative algorithm.
pub fn iterative(k: u32) -> WhtTree {
    if k <= 1 {
        return WhtTree::leaf(k);
    }
    WhtTree::split((0..k).map(|_| WhtTree::leaf(1)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spl_formula::dense::apply;
    use spl_numeric::{reference, Complex};

    fn check_is_wht(tree: &WhtTree) {
        let n = tree.size();
        let xr: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let x: Vec<Complex> = xr.iter().map(|&v| Complex::real(v)).collect();
        let y = apply(&tree.to_formula(), &x).unwrap();
        let want = reference::wht(&xr);
        for (a, b) in y.iter().zip(&want) {
            assert!(
                (a.re - b).abs() < 1e-10 && a.im.abs() < 1e-12,
                "size {n}: {} vs {}",
                a.re,
                b
            );
        }
    }

    #[test]
    fn leaves_are_wht() {
        for k in 1..=4 {
            check_is_wht(&WhtTree::leaf(k));
        }
    }

    #[test]
    fn split_rule_is_wht() {
        check_is_wht(&WhtTree::split(vec![WhtTree::leaf(1), WhtTree::leaf(2)]));
        check_is_wht(&WhtTree::split(vec![
            WhtTree::leaf(2),
            WhtTree::leaf(1),
            WhtTree::leaf(1),
        ]));
        check_is_wht(&balanced(5));
        check_is_wht(&iterative(4));
    }

    #[test]
    fn exponent_accounting() {
        let t = WhtTree::split(vec![WhtTree::leaf(2), balanced(3)]);
        assert_eq!(t.exponent(), 5);
        assert_eq!(t.size(), 32);
    }

    #[test]
    #[should_panic(expected = "at least two parts")]
    fn singleton_split_panics() {
        WhtTree::split(vec![WhtTree::leaf(2)]);
    }
}
