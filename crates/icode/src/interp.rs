//! A direct interpreter for i-code — the semantics oracle.
//!
//! Deliberately simple; every compiler phase is tested by checking that the
//! interpreted result is unchanged (and, at the pipeline level, that it
//! matches the dense-matrix interpretation of the source formula).

use std::error::Error;
use std::fmt;

use spl_numeric::twiddle::omega;
use spl_numeric::Complex;

use crate::instr::{BinOp, Instr, LoopVar, Place, UnOp, Value, VecKind, VecRef};
use crate::program::IProgram;

/// A runtime error during interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpError(pub String);

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i-code interpreter: {}", self.0)
    }
}

impl Error for InterpError {}

/// Runs a program on an input vector and returns the output vector.
///
/// The program is structurally validated first, so malformed programs
/// (unbalanced loops, out-of-range registers) are reported as errors
/// instead of panicking. Registers and temporaries start zeroed.
///
/// # Errors
///
/// Returns [`InterpError`] on structural invalidity, subscripts out of
/// bounds, non-integer operands in integer positions, unknown
/// intrinsics, integer division by zero, or input length mismatch.
pub fn run(prog: &IProgram, input: &[Complex]) -> Result<Vec<Complex>, InterpError> {
    prog.validate().map_err(|e| InterpError(e.to_string()))?;
    if input.len() != prog.n_in {
        return Err(InterpError(format!(
            "input length {} != {}",
            input.len(),
            prog.n_in
        )));
    }
    let mut st = State {
        f: vec![Complex::ZERO; prog.n_f as usize],
        r: vec![0; prog.n_r as usize],
        loops: vec![0; prog.n_loop as usize],
        out: vec![Complex::ZERO; prog.n_out],
        temps: prog.temps.iter().map(|&n| vec![Complex::ZERO; n]).collect(),
        input,
        prog,
    };
    st.exec_block(&prog.instrs)?;
    Ok(st.out)
}

struct State<'a> {
    f: Vec<Complex>,
    r: Vec<i64>,
    loops: Vec<i64>,
    out: Vec<Complex>,
    temps: Vec<Vec<Complex>>,
    input: &'a [Complex],
    prog: &'a IProgram,
}

impl State<'_> {
    fn exec_block(&mut self, instrs: &[Instr]) -> Result<(), InterpError> {
        let mut pc = 0;
        while pc < instrs.len() {
            match &instrs[pc] {
                Instr::DoStart { var, lo, hi, .. } => {
                    let body_start = pc + 1;
                    let body_end = matching_end(instrs, pc)?;
                    for v in *lo..=*hi {
                        self.loops[var.0 as usize] = v;
                        self.exec_block(&instrs[body_start..body_end])?;
                    }
                    pc = body_end + 1;
                }
                Instr::DoEnd => {
                    return Err(InterpError(format!("stray end at {pc}")));
                }
                Instr::Bin { op, dst, a, b } => {
                    if matches!(dst, Place::R(_)) {
                        let av = self.int_value(a)?;
                        let bv = self.int_value(b)?;
                        let r = match op {
                            BinOp::Add => av.checked_add(bv),
                            BinOp::Sub => av.checked_sub(bv),
                            BinOp::Mul => av.checked_mul(bv),
                            BinOp::Div => av.checked_div(bv),
                        }
                        .ok_or_else(|| {
                            InterpError(format!(
                                "integer {op:?} overflow or division by zero ({av}, {bv})"
                            ))
                        })?;
                        self.write_int(dst, r)?;
                    } else {
                        let av = self.num_value(a)?;
                        let bv = self.num_value(b)?;
                        let r = match op {
                            BinOp::Add => av + bv,
                            BinOp::Sub => av - bv,
                            BinOp::Mul => av * bv,
                            BinOp::Div => av / bv,
                        };
                        self.write_num(dst, r)?;
                    }
                    pc += 1;
                }
                Instr::Un { op, dst, a } => {
                    if matches!(dst, Place::R(_)) {
                        let av = self.int_value(a)?;
                        let r = match op {
                            UnOp::Copy => av,
                            UnOp::Neg => -av,
                        };
                        self.write_int(dst, r)?;
                    } else {
                        let av = self.num_value(a)?;
                        let r = match op {
                            UnOp::Copy => av,
                            UnOp::Neg => -av,
                        };
                        self.write_num(dst, r)?;
                    }
                    pc += 1;
                }
            }
        }
        Ok(())
    }

    fn vec_index(&self, v: &VecRef) -> Result<(usize, usize), InterpError> {
        let idx = v.idx.eval(&|lv: LoopVar| self.loops[lv.0 as usize]);
        let len = match v.kind {
            VecKind::In => self.input.len(),
            VecKind::Out => self.out.len(),
            VecKind::Temp(t) => self.temps[t as usize].len(),
            VecKind::Table(t) => self.prog.tables[t as usize].len(),
        };
        if idx < 0 || idx as usize >= len {
            return Err(InterpError(format!(
                "subscript {idx} out of bounds (length {len}) for {:?}",
                v.kind
            )));
        }
        Ok((idx as usize, len))
    }

    fn num_value(&self, v: &Value) -> Result<Complex, InterpError> {
        Ok(match v {
            Value::Const(c) => *c,
            Value::Int(i) => Complex::real(*i as f64),
            Value::LoopIdx(lv) => Complex::real(self.loops[lv.0 as usize] as f64),
            Value::Place(Place::F(k)) => self.f[*k as usize],
            Value::Place(Place::R(k)) => Complex::real(self.r[*k as usize] as f64),
            Value::Place(Place::Vec(vr)) => {
                let (idx, _) = self.vec_index(vr)?;
                match vr.kind {
                    VecKind::In => self.input[idx],
                    VecKind::Out => self.out[idx],
                    VecKind::Temp(t) => self.temps[t as usize][idx],
                    VecKind::Table(t) => self.prog.tables[t as usize][idx],
                }
            }
            Value::Intrinsic(name, args) => match name.as_str() {
                "W" | "w" => {
                    if args.len() != 2 {
                        return Err(InterpError("W expects 2 arguments".into()));
                    }
                    let n = self.int_value(&args[0])?;
                    let k = self.int_value(&args[1])?;
                    if n <= 0 {
                        return Err(InterpError("W: n must be positive".into()));
                    }
                    omega(n as usize, k)
                }
                other => return Err(InterpError(format!("unknown intrinsic {other}"))),
            },
        })
    }

    fn int_value(&self, v: &Value) -> Result<i64, InterpError> {
        Ok(match v {
            Value::Int(i) => *i,
            Value::LoopIdx(lv) => self.loops[lv.0 as usize],
            Value::Place(Place::R(k)) => self.r[*k as usize],
            Value::Const(c) if c.is_real() && c.re.fract() == 0.0 => c.re as i64,
            other => {
                return Err(InterpError(format!(
                    "expected an integer operand, got {other:?}"
                )))
            }
        })
    }

    fn write_num(&mut self, dst: &Place, v: Complex) -> Result<(), InterpError> {
        match dst {
            Place::F(k) => self.f[*k as usize] = v,
            Place::R(_) => unreachable!("write_num to integer register"),
            Place::Vec(vr) => {
                let (idx, _) = self.vec_index(vr)?;
                match vr.kind {
                    VecKind::Out => self.out[idx] = v,
                    VecKind::Temp(t) => self.temps[t as usize][idx] = v,
                    VecKind::In | VecKind::Table(_) => {
                        return Err(InterpError("write to read-only vector".into()))
                    }
                }
            }
        }
        Ok(())
    }

    fn write_int(&mut self, dst: &Place, v: i64) -> Result<(), InterpError> {
        match dst {
            Place::R(k) => {
                self.r[*k as usize] = v;
                Ok(())
            }
            _ => Err(InterpError("integer write to non-integer place".into())),
        }
    }
}

fn matching_end(instrs: &[Instr], start: usize) -> Result<usize, InterpError> {
    let mut depth = 0usize;
    for (k, ins) in instrs.iter().enumerate().skip(start) {
        match ins {
            Instr::DoStart { .. } => depth += 1,
            Instr::DoEnd => {
                depth -= 1;
                if depth == 0 {
                    return Ok(k);
                }
            }
            _ => {}
        }
    }
    Err(InterpError("unterminated loop".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Affine;

    fn out_at(idx: Affine) -> Place {
        Place::Vec(VecRef {
            kind: VecKind::Out,
            idx,
        })
    }

    fn in_at(idx: Affine) -> Value {
        Value::Place(Place::Vec(VecRef {
            kind: VecKind::In,
            idx,
        }))
    }

    #[test]
    fn copy_loop() {
        // do i = 0,3 { out[i] = in[i] } — the (I 4) template's code.
        let i = LoopVar(0);
        let prog = IProgram {
            instrs: vec![
                Instr::DoStart {
                    var: i,
                    lo: 0,
                    hi: 3,
                    unroll: false,
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: out_at(Affine::var(i)),
                    a: in_at(Affine::var(i)),
                },
                Instr::DoEnd,
            ],
            n_in: 4,
            n_out: 4,
            n_loop: 1,
            ..IProgram::empty()
        };
        let x: Vec<Complex> = (0..4).map(|v| Complex::real(v as f64)).collect();
        assert_eq!(run(&prog, &x).unwrap(), x);
    }

    #[test]
    fn strided_copy() {
        // out[2i+1] = in[i]: stride-2, offset-1 embedding.
        let i = LoopVar(0);
        let mut idx = Affine::constant(1);
        idx.add_term(2, i);
        let prog = IProgram {
            instrs: vec![
                Instr::DoStart {
                    var: i,
                    lo: 0,
                    hi: 1,
                    unroll: false,
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: out_at(idx),
                    a: in_at(Affine::var(i)),
                },
                Instr::DoEnd,
            ],
            n_in: 2,
            n_out: 4,
            n_loop: 1,
            ..IProgram::empty()
        };
        let y = run(&prog, &[Complex::real(7.0), Complex::real(9.0)]).unwrap();
        assert_eq!(
            y.iter().map(|c| c.re).collect::<Vec<_>>(),
            vec![0.0, 7.0, 0.0, 9.0]
        );
    }

    #[test]
    fn naive_dft_via_intrinsic() {
        // The paper's (F n) template, instantiated at n = 4:
        // do i0: out[i0] = 0; do i1: r0 = i0*i1; f0 = W(4,r0)*in[i1];
        //        out[i0] += f0
        let i0 = LoopVar(0);
        let i1 = LoopVar(1);
        let n = 4i64;
        let prog = IProgram {
            instrs: vec![
                Instr::DoStart {
                    var: i0,
                    lo: 0,
                    hi: n - 1,
                    unroll: false,
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: out_at(Affine::var(i0)),
                    a: Value::Int(0),
                },
                Instr::DoStart {
                    var: i1,
                    lo: 0,
                    hi: n - 1,
                    unroll: false,
                },
                Instr::Bin {
                    op: BinOp::Mul,
                    dst: Place::R(0),
                    a: Value::LoopIdx(i0),
                    b: Value::LoopIdx(i1),
                },
                Instr::Bin {
                    op: BinOp::Mul,
                    dst: Place::F(0),
                    a: Value::Intrinsic("W".into(), vec![Value::Int(n), Value::Place(Place::R(0))]),
                    b: in_at(Affine::var(i1)),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: out_at(Affine::var(i0)),
                    a: Value::Place(Place::Vec(VecRef {
                        kind: VecKind::Out,
                        idx: Affine::var(i0),
                    })),
                    b: Value::f(0),
                },
                Instr::DoEnd,
                Instr::DoEnd,
            ],
            n_in: 4,
            n_out: 4,
            n_f: 1,
            n_r: 1,
            n_loop: 2,
            ..IProgram::empty()
        };
        prog.validate().unwrap();
        let x: Vec<Complex> = (1..=4).map(|v| Complex::real(v as f64)).collect();
        let y = run(&prog, &x).unwrap();
        let want = spl_numeric::reference::dft(&x);
        for (a, b) in y.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn table_reads() {
        let i = LoopVar(0);
        let prog = IProgram {
            instrs: vec![
                Instr::DoStart {
                    var: i,
                    lo: 0,
                    hi: 2,
                    unroll: false,
                },
                Instr::Bin {
                    op: BinOp::Mul,
                    dst: out_at(Affine::var(i)),
                    a: in_at(Affine::var(i)),
                    b: Value::Place(Place::Vec(VecRef {
                        kind: VecKind::Table(0),
                        idx: Affine::var(i),
                    })),
                },
                Instr::DoEnd,
            ],
            n_in: 3,
            n_out: 3,
            n_loop: 1,
            tables: vec![vec![
                Complex::real(1.0),
                Complex::real(2.0),
                Complex::real(3.0),
            ]],
            ..IProgram::empty()
        };
        let x = vec![Complex::real(10.0); 3];
        let y = run(&prog, &x).unwrap();
        assert_eq!(
            y.iter().map(|c| c.re).collect::<Vec<_>>(),
            vec![10.0, 20.0, 30.0]
        );
    }

    #[test]
    fn out_of_bounds_is_error() {
        let prog = IProgram {
            instrs: vec![Instr::Un {
                op: UnOp::Copy,
                dst: out_at(Affine::constant(9)),
                a: Value::Int(0),
            }],
            n_in: 1,
            n_out: 2,
            ..IProgram::empty()
        };
        assert!(run(&prog, &[Complex::ZERO]).is_err());
    }

    #[test]
    fn wrong_input_length_is_error() {
        let prog = IProgram {
            n_in: 4,
            n_out: 4,
            ..IProgram::empty()
        };
        assert!(run(&prog, &[Complex::ZERO]).is_err());
    }

    #[test]
    fn integer_division() {
        let prog = IProgram {
            instrs: vec![
                Instr::Bin {
                    op: BinOp::Div,
                    dst: Place::R(0),
                    a: Value::Int(7),
                    b: Value::Int(2),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: out_at(Affine::constant(0)),
                    a: Value::Place(Place::R(0)),
                    b: Value::Int(0),
                },
            ],
            n_in: 1,
            n_out: 1,
            n_r: 1,
            ..IProgram::empty()
        };
        let y = run(&prog, &[Complex::ZERO]).unwrap();
        assert_eq!(y[0].re, 3.0);
    }
}
