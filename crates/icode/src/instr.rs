//! Instruction and operand definitions.

use spl_numeric::Complex;

/// A loop variable (`$i<k>`), identified by a program-unique number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopVar(pub u32);

/// An affine integer expression over loop variables:
/// `c + Σ coeff·var`, the only subscript form the paper admits ("the
/// subscripts of vector variables are always linear combinations of loop
/// indices with integer coefficients").
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Affine {
    /// The constant term.
    pub c: i64,
    /// `(coefficient, variable)` terms, sorted by variable, coefficients
    /// non-zero.
    pub terms: Vec<(i64, LoopVar)>,
}

impl Affine {
    /// The constant affine expression `c`.
    pub fn constant(c: i64) -> Affine {
        Affine { c, terms: vec![] }
    }

    /// The affine expression `v` (coefficient 1).
    pub fn var(v: LoopVar) -> Affine {
        Affine {
            c: 0,
            terms: vec![(1, v)],
        }
    }

    /// Returns `Some(c)` if the expression is the constant `c`.
    pub fn as_const(&self) -> Option<i64> {
        if self.terms.is_empty() {
            Some(self.c)
        } else {
            None
        }
    }

    /// Adds another affine expression.
    pub fn add(&self, other: &Affine) -> Affine {
        let mut r = self.clone();
        r.c += other.c;
        for &(k, v) in &other.terms {
            r.add_term(k, v);
        }
        r
    }

    /// Adds `coeff·var`.
    pub fn add_term(&mut self, coeff: i64, var: LoopVar) {
        if coeff == 0 {
            return;
        }
        match self.terms.binary_search_by_key(&var, |&(_, v)| v) {
            Ok(i) => {
                self.terms[i].0 += coeff;
                if self.terms[i].0 == 0 {
                    self.terms.remove(i);
                }
            }
            Err(i) => self.terms.insert(i, (coeff, var)),
        }
    }

    /// Multiplies by an integer constant.
    pub fn scale(&self, k: i64) -> Affine {
        if k == 0 {
            return Affine::constant(0);
        }
        Affine {
            c: self.c * k,
            terms: self.terms.iter().map(|&(c, v)| (c * k, v)).collect(),
        }
    }

    /// Substitutes a constant value for a loop variable (used by the
    /// unroller).
    pub fn substitute(&self, var: LoopVar, value: i64) -> Affine {
        let mut r = Affine::constant(self.c);
        for &(k, v) in &self.terms {
            if v == var {
                r.c += k * value;
            } else {
                r.add_term(k, v);
            }
        }
        r
    }

    /// Evaluates under an environment mapping each variable id to a value.
    ///
    /// # Panics
    ///
    /// Panics if a variable is missing from `env`.
    pub fn eval(&self, env: &dyn Fn(LoopVar) -> i64) -> i64 {
        self.c + self.terms.iter().map(|&(k, v)| k * env(v)).sum::<i64>()
    }

    /// The loop variables referenced by the expression.
    pub fn vars(&self) -> impl Iterator<Item = LoopVar> + '_ {
        self.terms.iter().map(|&(_, v)| v)
    }
}

/// Which vector a [`VecRef`] addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VecKind {
    /// The subroutine input vector `$in` (read-only).
    In,
    /// The subroutine output vector `$out`.
    Out,
    /// A temporary vector `$t<k>`.
    Temp(u32),
    /// A read-only constant table created by intrinsic evaluation
    /// (Section 3.3.2).
    Table(u32),
}

/// A vector element access: vector plus affine subscript.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VecRef {
    /// The vector.
    pub kind: VecKind,
    /// The subscript.
    pub idx: Affine,
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Place {
    /// A floating/complex scalar register `$f<k>`.
    F(u32),
    /// An integer scalar register `$r<k>`.
    R(u32),
    /// A vector element.
    Vec(VecRef),
}

/// An operand value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Read a place.
    Place(Place),
    /// A numeric constant (complex in complex programs, `im = 0` in real
    /// ones).
    Const(Complex),
    /// An integer constant (integer-register arithmetic, intrinsic args).
    Int(i64),
    /// Read a loop variable as an integer value.
    LoopIdx(LoopVar),
    /// An intrinsic invocation, e.g. `W(n, k)`; removed by intrinsic
    /// evaluation.
    Intrinsic(String, Vec<Value>),
}

impl Value {
    /// Convenience: a vector-element read with a constant subscript.
    pub fn vec(kind: VecKind, idx: i64) -> Value {
        Value::Place(Place::Vec(VecRef {
            kind,
            idx: Affine::constant(idx),
        }))
    }

    /// Convenience: an `$f` register read.
    pub fn f(k: u32) -> Value {
        Value::Place(Place::F(k))
    }

    /// Returns `Some` if this is a numeric constant.
    pub fn as_const(&self) -> Option<Complex> {
        match self {
            Value::Const(c) => Some(*c),
            Value::Int(v) => Some(Complex::real(*v as f64)),
            _ => None,
        }
    }
}

/// Binary operators of the four-tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// Unary operators of the three-tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Plain copy / assignment.
    Copy,
    /// Arithmetic negation.
    Neg,
}

/// One i-code instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// A `do var = lo, hi` loop header (inclusive bounds, constant after
    /// template expansion). `unroll` marks loops the restructurer must
    /// fully unroll (`#unroll on` regions and `-B` threshold hits).
    DoStart {
        /// The loop variable (program-unique).
        var: LoopVar,
        /// Lower bound.
        lo: i64,
        /// Upper bound, inclusive.
        hi: i64,
        /// Whether the unrolling phase must fully unroll this loop.
        unroll: bool,
    },
    /// Closes the innermost open loop.
    DoEnd,
    /// `dst = a op b`.
    Bin {
        /// Operator.
        op: BinOp,
        /// Destination.
        dst: Place,
        /// First operand.
        a: Value,
        /// Second operand.
        b: Value,
    },
    /// `dst = op a` (copy or negation).
    Un {
        /// Operator.
        op: UnOp,
        /// Destination.
        dst: Place,
        /// Operand.
        a: Value,
    },
}

impl Instr {
    /// Returns the destination place of an arithmetic instruction.
    pub fn dst(&self) -> Option<&Place> {
        match self {
            Instr::Bin { dst, .. } | Instr::Un { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// Visits every operand value of an arithmetic instruction.
    pub fn for_each_value(&self, f: &mut dyn FnMut(&Value)) {
        match self {
            Instr::Bin { a, b, .. } => {
                f(a);
                f(b);
            }
            Instr::Un { a, .. } => f(a),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_arithmetic() {
        let i = LoopVar(0);
        let j = LoopVar(1);
        let mut a = Affine::constant(3);
        a.add_term(2, i);
        a.add_term(1, j);
        let b = a.scale(2); // 6 + 4i + 2j
        assert_eq!(b.c, 6);
        assert_eq!(b.terms, vec![(4, i), (2, j)]);
        let s = b.add(&Affine::var(i)); // 6 + 5i + 2j
        assert_eq!(s.terms, vec![(5, i), (2, j)]);
    }

    #[test]
    fn affine_cancellation() {
        let i = LoopVar(0);
        let mut a = Affine::var(i);
        a.add_term(-1, i);
        assert_eq!(a, Affine::constant(0));
        assert_eq!(a.as_const(), Some(0));
    }

    #[test]
    fn affine_substitute() {
        let i = LoopVar(0);
        let j = LoopVar(1);
        let mut a = Affine::constant(1);
        a.add_term(4, i);
        a.add_term(1, j);
        let b = a.substitute(i, 3); // 13 + j
        assert_eq!(b.c, 13);
        assert_eq!(b.terms, vec![(1, j)]);
    }

    #[test]
    fn affine_eval() {
        let i = LoopVar(0);
        let j = LoopVar(1);
        let mut a = Affine::constant(2);
        a.add_term(3, i);
        a.add_term(-1, j);
        let v = a.eval(&|v| if v == i { 5 } else { 4 });
        assert_eq!(v, 2 + 15 - 4);
    }

    #[test]
    fn value_helpers() {
        assert_eq!(Value::Int(4).as_const(), Some(Complex::real(4.0)));
        assert_eq!(
            Value::Const(Complex::i()).as_const(),
            Some(Complex::new(0.0, 1.0))
        );
        assert_eq!(Value::f(0).as_const(), None);
    }

    #[test]
    fn scale_by_zero_is_constant_zero() {
        let mut a = Affine::var(LoopVar(3));
        a.add_term(7, LoopVar(5));
        assert_eq!(a.scale(0), Affine::constant(0));
    }
}
