#![warn(missing_docs)]

//! The SPL compiler's intermediate code (i-code).
//!
//! I-code is the paper's four-tuple IR (Section 3.2): a flat instruction
//! list of arithmetic tuples `dst = a op b` plus Fortran-style `do`/`end`
//! loop markers. Operands are scalar registers (`$f`, `$r`), loop indices
//! (`$i`), vector elements of the input/output/temporary vectors with
//! *affine* subscripts in the loop indices, numeric constants, and
//! intrinsic invocations (`W(n, k)`) that a later phase evaluates away.
//!
//! The [`interp`] module executes i-code directly and is the semantics
//! oracle for every transformation downstream (restructuring, value
//! numbering, code generation, the VM).
//!
//! # Examples
//!
//! ```
//! use spl_icode::{Instr, IProgram, Place, Value, BinOp, VecKind, VecRef, Affine};
//! use spl_numeric::Complex;
//!
//! // out[0] = in[0] + in[1]; out[1] = in[0] - in[1]   (the F2 butterfly)
//! let at = |kind, i| Place::Vec(VecRef { kind, idx: Affine::constant(i) });
//! let prog = IProgram {
//!     instrs: vec![
//!         Instr::Bin { op: BinOp::Add, dst: at(VecKind::Out, 0),
//!                      a: Value::vec(VecKind::In, 0), b: Value::vec(VecKind::In, 1) },
//!         Instr::Bin { op: BinOp::Sub, dst: at(VecKind::Out, 1),
//!                      a: Value::vec(VecKind::In, 0), b: Value::vec(VecKind::In, 1) },
//!     ],
//!     n_in: 2, n_out: 2, ..IProgram::empty()
//! };
//! let y = spl_icode::interp::run(&prog, &[Complex::real(3.0), Complex::real(5.0)]).unwrap();
//! assert_eq!(y[0].re, 8.0);
//! assert_eq!(y[1].re, -2.0);
//! ```

pub mod display;
pub mod instr;
pub mod interp;
pub mod program;

pub use instr::{Affine, BinOp, Instr, LoopVar, Place, UnOp, Value, VecKind, VecRef};
pub use program::{IProgram, ProvNode};
