//! The i-code program container and structural validation.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use spl_numeric::Complex;

use crate::instr::{Instr, LoopVar, Place, Value, VecKind, VecRef};

/// One node of the formula tree that produced a program, for
/// performance attribution: each emitted instruction carries the id of
/// the node it implements (see [`IProgram::prov`]), so profilers can
/// roll time and flops up per formula subtree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvNode {
    /// Short rendering of the sub-formula (e.g. `(tensor (F 8) (I 32))`).
    pub label: String,
    /// Id of the enclosing node, or [`ProvNode::ROOT`] at the top.
    pub parent: u32,
}

impl ProvNode {
    /// Sentinel parent id of the root node.
    pub const ROOT: u32 = u32::MAX;
}

/// A complete i-code program: a flat instruction list plus the sizes of
/// every vector it touches.
#[derive(Debug, Clone, PartialEq)]
pub struct IProgram {
    /// The instructions, loops delimited by `DoStart`/`DoEnd`.
    pub instrs: Vec<Instr>,
    /// Input vector length.
    pub n_in: usize,
    /// Output vector length.
    pub n_out: usize,
    /// Length of each temporary vector, indexed by `VecKind::Temp` id.
    pub temps: Vec<usize>,
    /// Constant tables created by intrinsic evaluation, indexed by
    /// `VecKind::Table` id.
    pub tables: Vec<Vec<Complex>>,
    /// Number of `$f` registers used.
    pub n_f: u32,
    /// Number of `$r` registers used.
    pub n_r: u32,
    /// Number of loop variables used (ids are `0..n_loop`).
    pub n_loop: u32,
    /// Whether values are complex (before type transformation) or real.
    pub complex: bool,
    /// Formula-node provenance: `prov[k]` is the [`ProvNode`] id that
    /// instruction `k` implements. Either empty (no provenance was
    /// recorded) or exactly `instrs.len()` long; every compiler pass
    /// preserves the alignment.
    pub prov: Vec<u32>,
    /// The provenance node table `prov` indexes into.
    pub prov_nodes: Vec<ProvNode>,
    /// Loop variables (by slot id) whose loops the vectorize pass judged
    /// lane-safe: every iteration's writes are disjoint from every other
    /// iteration's reads and writes, so the VM may execute iterations in
    /// lane-wide chunks. Purely advisory — the VM's resolver re-verifies
    /// at its own representation level and silently demotes marks it
    /// cannot prove, so a stale or wrong mark can cost performance but
    /// never correctness. Valid because `validate()` rejects loop-var
    /// reuse, making the slot id a unique loop key.
    pub vec_loops: Vec<u32>,
}

/// A structural validity error in an [`IProgram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcodeError(pub String);

impl fmt::Display for IcodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid i-code: {}", self.0)
    }
}

impl Error for IcodeError {}

impl IProgram {
    /// An empty program (useful with struct-update syntax).
    pub fn empty() -> IProgram {
        IProgram {
            instrs: vec![],
            n_in: 0,
            n_out: 0,
            temps: vec![],
            tables: vec![],
            n_f: 0,
            n_r: 0,
            n_loop: 0,
            complex: true,
            prov: vec![],
            prov_nodes: vec![],
            vec_loops: vec![],
        }
    }

    /// The provenance ids when they align with `instrs` (exactly one id
    /// per instruction), an empty slice otherwise.
    ///
    /// Compiler passes read provenance through this, so a program whose
    /// instruction list was edited without maintaining `prov` degrades
    /// to "no provenance" instead of misattributing instructions.
    pub fn prov_slice(&self) -> &[u32] {
        if !self.prov.is_empty() && self.prov.len() == self.instrs.len() {
            &self.prov
        } else {
            &[]
        }
    }

    /// Counts arithmetic instructions (excluding loop markers), with loop
    /// bodies multiplied by their trip counts — the static operation count
    /// of one execution.
    pub fn dynamic_op_count(&self) -> u64 {
        let mut mult: u64 = 1;
        let mut stack = Vec::new();
        let mut count: u64 = 0;
        for ins in &self.instrs {
            match ins {
                Instr::DoStart { lo, hi, .. } => {
                    let trips = (hi - lo + 1).max(0) as u64;
                    stack.push(mult);
                    mult = mult.saturating_mul(trips);
                }
                Instr::DoEnd => {
                    mult = stack.pop().unwrap_or(1);
                }
                _ => count += mult,
            }
        }
        count
    }

    /// The number of instructions excluding loop markers (static code
    /// size, used by the code-size experiment).
    pub fn static_instr_count(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| !matches!(i, Instr::DoStart { .. } | Instr::DoEnd))
            .count()
    }

    /// Bytes of constant-table data (used by the memory experiment).
    pub fn table_bytes(&self) -> usize {
        let word = if self.complex { 16 } else { 8 };
        self.tables.iter().map(|t| t.len() * word).sum()
    }

    /// Bytes of temporary-vector data.
    pub fn temp_bytes(&self) -> usize {
        let word = if self.complex { 16 } else { 8 };
        self.temps.iter().sum::<usize>() * word
    }

    /// Validates loop structure, register/vector bounds where they are
    /// statically known, and subscript discipline.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), IcodeError> {
        if !self.prov.is_empty() {
            if self.prov.len() != self.instrs.len() {
                return Err(IcodeError(format!(
                    "provenance length {} != instruction count {}",
                    self.prov.len(),
                    self.instrs.len()
                )));
            }
            if let Some(&bad) = self
                .prov
                .iter()
                .find(|&&id| id as usize >= self.prov_nodes.len())
            {
                return Err(IcodeError(format!(
                    "provenance id {bad} out of range {}",
                    self.prov_nodes.len()
                )));
            }
        }
        let mut open: Vec<LoopVar> = Vec::new();
        let mut seen_vars: HashSet<LoopVar> = HashSet::new();
        for (k, ins) in self.instrs.iter().enumerate() {
            match ins {
                Instr::DoStart { var, lo, hi, .. } => {
                    if var.0 >= self.n_loop {
                        return Err(IcodeError(format!(
                            "instr {k}: loop var {} out of range {}",
                            var.0, self.n_loop
                        )));
                    }
                    if !seen_vars.insert(*var) {
                        return Err(IcodeError(format!("instr {k}: loop var {} reused", var.0)));
                    }
                    if hi < lo {
                        return Err(IcodeError(format!("instr {k}: empty loop {lo}..{hi}")));
                    }
                    open.push(*var);
                }
                Instr::DoEnd => {
                    if open.pop().is_none() {
                        return Err(IcodeError(format!("instr {k}: unmatched end")));
                    }
                }
                Instr::Bin { dst, a, b, .. } => {
                    self.check_place(k, dst, &open)?;
                    self.check_value(k, a, &open)?;
                    self.check_value(k, b, &open)?;
                    if matches!(
                        dst,
                        Place::Vec(VecRef {
                            kind: VecKind::In,
                            ..
                        })
                    ) {
                        return Err(IcodeError(format!("instr {k}: write to input vector")));
                    }
                }
                Instr::Un { dst, a, .. } => {
                    self.check_place(k, dst, &open)?;
                    self.check_value(k, a, &open)?;
                    if matches!(
                        dst,
                        Place::Vec(VecRef {
                            kind: VecKind::In,
                            ..
                        })
                    ) {
                        return Err(IcodeError(format!("instr {k}: write to input vector")));
                    }
                }
            }
        }
        if !open.is_empty() {
            return Err(IcodeError("unclosed loop at end of program".into()));
        }
        Ok(())
    }

    fn check_place(&self, k: usize, p: &Place, open: &[LoopVar]) -> Result<(), IcodeError> {
        match p {
            Place::F(r) if *r >= self.n_f => {
                Err(IcodeError(format!("instr {k}: $f{r} out of range")))
            }
            Place::R(r) if *r >= self.n_r => {
                Err(IcodeError(format!("instr {k}: $r{r} out of range")))
            }
            Place::Vec(v) => self.check_vec(k, v, open),
            _ => Ok(()),
        }
    }

    fn check_vec(&self, k: usize, v: &VecRef, open: &[LoopVar]) -> Result<(), IcodeError> {
        for var in v.idx.vars() {
            if !open.contains(&var) {
                return Err(IcodeError(format!(
                    "instr {k}: subscript uses loop var {} outside its loop",
                    var.0
                )));
            }
        }
        let len = match v.kind {
            VecKind::In => self.n_in,
            VecKind::Out => self.n_out,
            VecKind::Temp(t) => *self
                .temps
                .get(t as usize)
                .ok_or_else(|| IcodeError(format!("instr {k}: temp {t} undeclared")))?,
            VecKind::Table(t) => self
                .tables
                .get(t as usize)
                .map(Vec::len)
                .ok_or_else(|| IcodeError(format!("instr {k}: table {t} undeclared")))?,
        };
        if let Some(c) = v.idx.as_const() {
            if c < 0 || c as usize >= len {
                return Err(IcodeError(format!(
                    "instr {k}: constant subscript {c} out of bounds for length {len}"
                )));
            }
        }
        Ok(())
    }

    fn check_value(&self, k: usize, v: &Value, open: &[LoopVar]) -> Result<(), IcodeError> {
        match v {
            Value::Place(p) => self.check_place(k, p, open),
            Value::LoopIdx(var) => {
                if open.contains(var) {
                    Ok(())
                } else {
                    Err(IcodeError(format!(
                        "instr {k}: loop var {} read outside its loop",
                        var.0
                    )))
                }
            }
            Value::Intrinsic(_, args) => args.iter().try_for_each(|a| self.check_value(k, a, open)),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Affine, BinOp};

    fn butterfly() -> IProgram {
        let at = |kind, i| {
            Place::Vec(VecRef {
                kind,
                idx: Affine::constant(i),
            })
        };
        IProgram {
            instrs: vec![
                Instr::Bin {
                    op: BinOp::Add,
                    dst: at(VecKind::Out, 0),
                    a: Value::vec(VecKind::In, 0),
                    b: Value::vec(VecKind::In, 1),
                },
                Instr::Bin {
                    op: BinOp::Sub,
                    dst: at(VecKind::Out, 1),
                    a: Value::vec(VecKind::In, 0),
                    b: Value::vec(VecKind::In, 1),
                },
            ],
            n_in: 2,
            n_out: 2,
            ..IProgram::empty()
        }
    }

    #[test]
    fn valid_program_passes() {
        assert!(butterfly().validate().is_ok());
    }

    #[test]
    fn unbalanced_loops_caught() {
        let mut p = butterfly();
        p.n_loop = 1;
        p.instrs.insert(
            0,
            Instr::DoStart {
                var: LoopVar(0),
                lo: 0,
                hi: 1,
                unroll: false,
            },
        );
        assert!(p.validate().is_err());
        p.instrs.push(Instr::DoEnd);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn out_of_bounds_subscript_caught() {
        let mut p = butterfly();
        p.instrs.push(Instr::Un {
            op: crate::instr::UnOp::Copy,
            dst: Place::Vec(VecRef {
                kind: VecKind::Out,
                idx: Affine::constant(5),
            }),
            a: Value::vec(VecKind::In, 0),
        });
        assert!(p.validate().is_err());
    }

    #[test]
    fn write_to_input_caught() {
        let mut p = butterfly();
        p.instrs.push(Instr::Un {
            op: crate::instr::UnOp::Copy,
            dst: Place::Vec(VecRef {
                kind: VecKind::In,
                idx: Affine::constant(0),
            }),
            a: Value::Int(0),
        });
        assert!(p.validate().is_err());
    }

    #[test]
    fn loop_var_outside_scope_caught() {
        let mut p = butterfly();
        p.n_loop = 1;
        p.instrs.push(Instr::Un {
            op: crate::instr::UnOp::Copy,
            dst: Place::Vec(VecRef {
                kind: VecKind::Out,
                idx: Affine::var(LoopVar(0)),
            }),
            a: Value::Int(0),
        });
        assert!(p.validate().is_err());
    }

    #[test]
    fn dynamic_op_count_multiplies_loops() {
        let mut p = butterfly();
        p.n_loop = 1;
        let mut instrs = vec![Instr::DoStart {
            var: LoopVar(0),
            lo: 0,
            hi: 3,
            unroll: false,
        }];
        instrs.push(Instr::Un {
            op: crate::instr::UnOp::Copy,
            dst: Place::F(0),
            a: Value::Int(1),
        });
        instrs.push(Instr::DoEnd);
        p.n_f = 1;
        p.instrs = instrs;
        assert_eq!(p.dynamic_op_count(), 4);
        assert_eq!(p.static_instr_count(), 1);
    }

    #[test]
    fn byte_accounting() {
        let mut p = butterfly();
        p.temps = vec![4, 4];
        p.tables = vec![vec![Complex::ZERO; 8]];
        assert_eq!(p.temp_bytes(), 8 * 16);
        assert_eq!(p.table_bytes(), 8 * 16);
        p.complex = false;
        assert_eq!(p.temp_bytes(), 8 * 8);
    }
}
