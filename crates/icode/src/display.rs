//! Human-readable printing of i-code, in the paper's notation.

use std::fmt;

use crate::instr::{Affine, BinOp, Instr, Place, UnOp, Value, VecKind, VecRef};
use crate::program::IProgram;

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for &(k, v) in &self.terms {
            if first {
                if k == 1 {
                    write!(f, "$i{}", v.0)?;
                } else if k == -1 {
                    write!(f, "-$i{}", v.0)?;
                } else {
                    write!(f, "{k}*$i{}", v.0)?;
                }
                first = false;
            } else if k < 0 {
                if k == -1 {
                    write!(f, "-$i{}", v.0)?;
                } else {
                    write!(f, "-{}*$i{}", -k, v.0)?;
                }
            } else if k == 1 {
                write!(f, "+$i{}", v.0)?;
            } else {
                write!(f, "+{k}*$i{}", v.0)?;
            }
        }
        if first {
            write!(f, "{}", self.c)?;
        } else if self.c > 0 {
            write!(f, "+{}", self.c)?;
        } else if self.c < 0 {
            write!(f, "{}", self.c)?;
        }
        Ok(())
    }
}

impl fmt::Display for VecRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name: String = match self.kind {
            VecKind::In => "$in".into(),
            VecKind::Out => "$out".into(),
            VecKind::Temp(t) => format!("$t{t}"),
            VecKind::Table(t) => format!("$tbl{t}"),
        };
        write!(f, "{name}({})", self.idx)
    }
}

impl fmt::Display for Place {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Place::F(k) => write!(f, "$f{k}"),
            Place::R(k) => write!(f, "$r{k}"),
            Place::Vec(v) => write!(f, "{v}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Place(p) => write!(f, "{p}"),
            Value::Const(c) => {
                if c.im == 0.0 {
                    write!(f, "{}", c.re)
                } else {
                    write!(f, "({},{})", c.re, c.im)
                }
            }
            Value::Int(v) => write!(f, "{v}"),
            Value::LoopIdx(v) => write!(f, "$i{}", v.0),
            Value::Intrinsic(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::DoStart { var, lo, hi, .. } => {
                write!(f, "do $i{} = {lo},{hi}", var.0)
            }
            Instr::DoEnd => write!(f, "end"),
            Instr::Bin { op, dst, a, b } => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                };
                write!(f, "{dst} = {a} {sym} {b}")
            }
            Instr::Un { op, dst, a } => match op {
                UnOp::Copy => write!(f, "{dst} = {a}"),
                UnOp::Neg => write!(f, "{dst} = -{a}"),
            },
        }
    }
}

impl fmt::Display for IProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut indent = 0usize;
        for ins in &self.instrs {
            if matches!(ins, Instr::DoEnd) {
                indent = indent.saturating_sub(1);
            }
            writeln!(f, "{:indent$}{ins}", "", indent = indent * 2)?;
            if matches!(ins, Instr::DoStart { .. }) {
                indent += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::LoopVar;

    #[test]
    fn affine_display() {
        let i = LoopVar(0);
        let mut a = Affine::constant(1);
        a.add_term(4, i);
        assert_eq!(a.to_string(), "4*$i0+1");
        assert_eq!(Affine::constant(-3).to_string(), "-3");
        assert_eq!(Affine::var(i).to_string(), "$i0");
        let mut b = Affine::constant(0);
        b.add_term(-1, i);
        assert_eq!(b.to_string(), "-$i0");
    }

    #[test]
    fn instr_display() {
        let ins = Instr::Bin {
            op: BinOp::Add,
            dst: Place::F(0),
            a: Value::vec(VecKind::In, 1),
            b: Value::Const(spl_numeric::Complex::new(0.0, -1.0)),
        };
        assert_eq!(ins.to_string(), "$f0 = $in(1) + (0,-1)");
    }

    #[test]
    fn program_display_indents_loops() {
        let prog = IProgram {
            instrs: vec![
                Instr::DoStart {
                    var: LoopVar(0),
                    lo: 0,
                    hi: 1,
                    unroll: false,
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: Place::F(0),
                    a: Value::Int(0),
                },
                Instr::DoEnd,
            ],
            n_f: 1,
            n_loop: 1,
            ..IProgram::empty()
        };
        let s = prog.to_string();
        assert!(s.contains("do $i0 = 0,1"));
        assert!(s.contains("  $f0 = 0"));
    }
}
