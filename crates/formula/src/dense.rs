//! Dense interpretation of formulas — the semantics oracle.
//!
//! Every formula denotes a matrix; [`to_dense`] elaborates that matrix and
//! [`apply`] computes the matrix–vector product `y = M x` structurally
//! (without materializing the full matrix for products, which keeps the
//! oracle usable up to a few thousand points).

use spl_numeric::perm::{reversal_perm, stride_perm};
use spl_numeric::twiddle::omega;
use spl_numeric::Complex;

use crate::formula::{Formula, FormulaError};

/// A dense row-major complex matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major data of length `rows * cols`.
    pub data: Vec<Complex>,
}

impl DenseMatrix {
    /// The element at row `r`, column `c`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn at(&self, r: usize, c: usize) -> Complex {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols`.
    pub fn mul_vec(&self, x: &[Complex]) -> Vec<Complex> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|r| {
                let mut acc = Complex::ZERO;
                for (c, &xc) in x.iter().enumerate() {
                    acc += self.at(r, c) * xc;
                }
                acc
            })
            .collect()
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions mismatch.
    pub fn mul_mat(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, rhs.rows);
        let mut data = vec![Complex::ZERO; self.rows * rhs.cols];
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.at(r, k);
                if a == Complex::ZERO {
                    continue;
                }
                for c in 0..rhs.cols {
                    data[r * rhs.cols + c] += a * rhs.at(k, c);
                }
            }
        }
        DenseMatrix {
            rows: self.rows,
            cols: rhs.cols,
            data,
        }
    }

    /// Maximum absolute componentwise difference against another matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).norm())
            .fold(0.0, f64::max)
    }
}

/// Elaborates a formula into its dense matrix.
///
/// # Errors
///
/// Returns an error for shape-inconsistent compositions, or
/// [`FormulaError::SizeOverflow`] when any (sub)matrix's element count
/// would exceed `usize::MAX`.
pub fn to_dense(f: &Formula) -> Result<DenseMatrix, FormulaError> {
    f.checked_dims()?;
    f.check_shapes()?;
    Ok(dense_unchecked(f))
}

fn dense_unchecked(f: &Formula) -> DenseMatrix {
    match f {
        Formula::Identity(n) => {
            let mut data = vec![Complex::ZERO; n * n];
            for i in 0..*n {
                data[i * n + i] = Complex::ONE;
            }
            DenseMatrix {
                rows: *n,
                cols: *n,
                data,
            }
        }
        Formula::F(n) => {
            let mut data = vec![Complex::ZERO; n * n];
            for p in 0..*n {
                for q in 0..*n {
                    data[p * n + q] = omega(*n, (p * q) as i64);
                }
            }
            DenseMatrix {
                rows: *n,
                cols: *n,
                data,
            }
        }
        Formula::Stride { n, s } => perm_matrix(&stride_perm(*n, *s)),
        Formula::Twiddle { n, s } => {
            let m = n / s;
            let mut d = Vec::with_capacity(*n);
            for i in 0..m {
                for j in 0..*s {
                    d.push(omega(*n, (i * j) as i64));
                }
            }
            diag_matrix(&d)
        }
        Formula::J(n) => perm_matrix(&reversal_perm(*n)),
        Formula::Diagonal(d) => diag_matrix(d),
        Formula::Permutation(p) => perm_matrix(p),
        Formula::Matrix { rows, cols, data } => DenseMatrix {
            rows: *rows,
            cols: *cols,
            data: data.clone(),
        },
        Formula::Compose(parts) => {
            let mut acc = dense_unchecked(&parts[0]);
            for p in &parts[1..] {
                acc = acc.mul_mat(&dense_unchecked(p));
            }
            acc
        }
        Formula::Tensor(parts) => {
            let mut acc = dense_unchecked(&parts[0]);
            for p in &parts[1..] {
                acc = kronecker(&acc, &dense_unchecked(p));
            }
            acc
        }
        Formula::DirectSum(parts) => {
            let rows: usize = parts.iter().map(Formula::rows).sum();
            let cols: usize = parts.iter().map(Formula::cols).sum();
            let mut data = vec![Complex::ZERO; rows * cols];
            let (mut r0, mut c0) = (0, 0);
            for p in parts {
                let m = dense_unchecked(p);
                for r in 0..m.rows {
                    for c in 0..m.cols {
                        data[(r0 + r) * cols + (c0 + c)] = m.at(r, c);
                    }
                }
                r0 += m.rows;
                c0 += m.cols;
            }
            DenseMatrix { rows, cols, data }
        }
    }
}

fn perm_matrix(p: &[usize]) -> DenseMatrix {
    let n = p.len();
    let mut data = vec![Complex::ZERO; n * n];
    for (i, &k) in p.iter().enumerate() {
        data[i * n + k] = Complex::ONE;
    }
    DenseMatrix {
        rows: n,
        cols: n,
        data,
    }
}

fn diag_matrix(d: &[Complex]) -> DenseMatrix {
    let n = d.len();
    let mut data = vec![Complex::ZERO; n * n];
    for (i, &v) in d.iter().enumerate() {
        data[i * n + i] = v;
    }
    DenseMatrix {
        rows: n,
        cols: n,
        data,
    }
}

fn kronecker(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let rows = a.rows * b.rows;
    let cols = a.cols * b.cols;
    let mut data = vec![Complex::ZERO; rows * cols];
    for ar in 0..a.rows {
        for ac in 0..a.cols {
            let v = a.at(ar, ac);
            if v == Complex::ZERO {
                continue;
            }
            for br in 0..b.rows {
                for bc in 0..b.cols {
                    data[(ar * b.rows + br) * cols + (ac * b.cols + bc)] = v * b.at(br, bc);
                }
            }
        }
    }
    DenseMatrix { rows, cols, data }
}

/// Applies a formula to a vector structurally: `y = M x`.
///
/// Products are applied factor by factor and tensor/direct-sum structure is
/// exploited, so the cost is far below densifying `M` for deep formulas.
///
/// # Errors
///
/// Returns an error if shapes are inconsistent, `x.len() != f.cols()`,
/// or the formula's dimensions overflow `usize`
/// ([`FormulaError::SizeOverflow`]).
pub fn apply(f: &Formula, x: &[Complex]) -> Result<Vec<Complex>, FormulaError> {
    f.checked_dims()?;
    f.check_shapes()?;
    if x.len() != f.cols() {
        return Err(FormulaError::ShapeMismatch(format!(
            "apply: input length {} for a {}x{} formula",
            x.len(),
            f.rows(),
            f.cols()
        )));
    }
    Ok(apply_unchecked(f, x))
}

fn apply_unchecked(f: &Formula, x: &[Complex]) -> Vec<Complex> {
    match f {
        Formula::Identity(_) => x.to_vec(),
        Formula::Stride { n, s } => stride_perm(*n, *s).iter().map(|&k| x[k]).collect(),
        Formula::J(n) => reversal_perm(*n).iter().map(|&k| x[k]).collect(),
        Formula::Permutation(p) => p.iter().map(|&k| x[k]).collect(),
        Formula::Diagonal(d) => d.iter().zip(x).map(|(&d, &v)| d * v).collect(),
        Formula::Twiddle { n, s } => {
            let m = n / s;
            let mut y = Vec::with_capacity(*n);
            for i in 0..m {
                for j in 0..*s {
                    y.push(omega(*n, (i * j) as i64) * x[i * s + j]);
                }
            }
            y
        }
        Formula::F(_) | Formula::Matrix { .. } => dense_unchecked(f).mul_vec(x),
        Formula::Compose(parts) => {
            let mut v = x.to_vec();
            for p in parts.iter().rev() {
                v = apply_unchecked(p, &v);
            }
            v
        }
        Formula::Tensor(parts) => {
            // A (x) B = (A (x) I)(I (x) B), applied recursively on the
            // binary split.
            if parts.len() == 1 {
                return apply_unchecked(&parts[0], x);
            }
            let a = &parts[0];
            let rest = Formula::tensor(parts[1..].to_vec());
            // First I_{a.cols} (x) rest on contiguous blocks...
            let bc = rest.cols();
            let br = rest.rows();
            let mut mid = Vec::with_capacity(a.cols() * br);
            for blk in 0..a.cols() {
                mid.extend(apply_unchecked(&rest, &x[blk * bc..(blk + 1) * bc]));
            }
            // ...then A (x) I_{br} on strided sub-vectors.
            let mut y = vec![Complex::ZERO; a.rows() * br];
            for j in 0..br {
                let sub: Vec<Complex> = (0..a.cols()).map(|i| mid[i * br + j]).collect();
                let out = apply_unchecked(a, &sub);
                for (i, v) in out.into_iter().enumerate() {
                    y[i * br + j] = v;
                }
            }
            y
        }
        Formula::DirectSum(parts) => {
            let mut y = Vec::with_capacity(f.rows());
            let mut c0 = 0;
            for p in parts {
                let c = p.cols();
                y.extend(apply_unchecked(p, &x[c0..c0 + c]));
                c0 += c;
            }
            y
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spl_numeric::reference;

    fn cvec(vals: &[f64]) -> Vec<Complex> {
        vals.iter().map(|&v| Complex::real(v)).collect()
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new(i as f64 + 1.0, (i as f64 * 0.5).sin()))
            .collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(x.approx_eq(*y, tol), "{x} vs {y}");
        }
    }

    /// The paper's F4 Cooley–Tukey factorization (Equation 3).
    fn f4_ct() -> Formula {
        Formula::compose(vec![
            Formula::tensor(vec![Formula::f(2), Formula::identity(2)]),
            Formula::twiddle(4, 2).unwrap(),
            Formula::tensor(vec![Formula::identity(2), Formula::f(2)]),
            Formula::stride(4, 2).unwrap(),
        ])
    }

    #[test]
    fn f_matches_reference_dft() {
        for n in [1, 2, 3, 4, 5, 8] {
            let x = ramp(n);
            let y = apply(&Formula::f(n), &x).unwrap();
            assert_close(&y, &reference::dft(&x), 1e-12);
        }
    }

    #[test]
    fn paper_f4_factorization_equals_f4() {
        let lhs = to_dense(&f4_ct()).unwrap();
        let rhs = to_dense(&Formula::f(4)).unwrap();
        assert!(lhs.max_diff(&rhs) < 1e-12);
    }

    #[test]
    fn eq5_general_cooley_tukey() {
        // F_rs = (F_r ⊗ I_s) T^{rs}_s (I_r ⊗ F_s) L^{rs}_r
        for (r, s) in [(2usize, 3usize), (3, 2), (4, 2), (2, 4), (3, 3), (4, 4)] {
            let n = r * s;
            let f = Formula::compose(vec![
                Formula::tensor(vec![Formula::f(r), Formula::identity(s)]),
                Formula::twiddle(n, s).unwrap(),
                Formula::tensor(vec![Formula::identity(r), Formula::f(s)]),
                Formula::stride(n, r).unwrap(),
            ]);
            let lhs = to_dense(&f).unwrap();
            let rhs = to_dense(&Formula::f(n)).unwrap();
            assert!(lhs.max_diff(&rhs) < 1e-12, "r={r} s={s}");
        }
    }

    #[test]
    fn eq7_decimation_in_frequency() {
        // F_rs = L^{rs}_s (I_r ⊗ F_s) T^{rs}_s (F_r ⊗ I_s)  (transpose of Eq. 5)
        for (r, s) in [(2usize, 3usize), (4, 2), (3, 3)] {
            let n = r * s;
            let f = Formula::compose(vec![
                Formula::stride(n, s).unwrap(),
                Formula::tensor(vec![Formula::identity(r), Formula::f(s)]),
                Formula::twiddle(n, s).unwrap(),
                Formula::tensor(vec![Formula::f(r), Formula::identity(s)]),
            ]);
            let lhs = to_dense(&f).unwrap();
            let rhs = to_dense(&Formula::f(n)).unwrap();
            assert!(lhs.max_diff(&rhs) < 1e-12, "r={r} s={s}");
        }
    }

    #[test]
    fn eq8_parallel_form() {
        // F_rs = L^{rs}_r (I_s ⊗ F_r) L^{rs}_s T^{rs}_s (I_r ⊗ F_s) L^{rs}_r
        for (r, s) in [(2usize, 3usize), (4, 2), (2, 4)] {
            let n = r * s;
            let f = Formula::compose(vec![
                Formula::stride(n, r).unwrap(),
                Formula::tensor(vec![Formula::identity(s), Formula::f(r)]),
                Formula::stride(n, s).unwrap(),
                Formula::twiddle(n, s).unwrap(),
                Formula::tensor(vec![Formula::identity(r), Formula::f(s)]),
                Formula::stride(n, r).unwrap(),
            ]);
            let lhs = to_dense(&f).unwrap();
            let rhs = to_dense(&Formula::f(n)).unwrap();
            assert!(lhs.max_diff(&rhs) < 1e-12, "r={r} s={s}");
        }
    }

    #[test]
    fn eq9_vector_form() {
        // F_rs = (F_r ⊗ I_s) T^{rs}_s L^{rs}_r (F_s ⊗ I_r)
        for (r, s) in [(2usize, 3usize), (4, 2), (3, 3)] {
            let n = r * s;
            let f = Formula::compose(vec![
                Formula::tensor(vec![Formula::f(r), Formula::identity(s)]),
                Formula::twiddle(n, s).unwrap(),
                Formula::stride(n, r).unwrap(),
                Formula::tensor(vec![Formula::f(s), Formula::identity(r)]),
            ]);
            let lhs = to_dense(&f).unwrap();
            let rhs = to_dense(&Formula::f(n)).unwrap();
            assert!(lhs.max_diff(&rhs) < 1e-12, "r={r} s={s}");
        }
    }

    #[test]
    fn eq6_commutation_identity() {
        // A ⊗ B = L^{mn}_m (B ⊗ A) L^{mn}_n  for A m×m, B n×n
        let a = Formula::matrix(2, 2, cvec(&[1.0, 2.0, 3.0, 4.0])).unwrap();
        let b =
            Formula::matrix(3, 3, cvec(&[1.0, 0.0, 2.0, 0.0, 1.0, 1.0, 3.0, 0.0, 1.0])).unwrap();
        let (m, n) = (2usize, 3usize);
        let lhs = to_dense(&Formula::tensor(vec![a.clone(), b.clone()])).unwrap();
        let rhs = to_dense(&Formula::compose(vec![
            Formula::stride(m * n, m).unwrap(),
            Formula::tensor(vec![b, a]),
            Formula::stride(m * n, n).unwrap(),
        ]))
        .unwrap();
        assert!(lhs.max_diff(&rhs) < 1e-12);
    }

    #[test]
    fn structured_apply_matches_dense_apply() {
        let f = Formula::compose(vec![
            Formula::tensor(vec![Formula::f(2), Formula::identity(4)]),
            Formula::twiddle(8, 4).unwrap(),
            Formula::tensor(vec![Formula::identity(2), f4_ct()]),
            Formula::stride(8, 2).unwrap(),
        ]);
        let x = ramp(8);
        let via_apply = apply(&f, &x).unwrap();
        let via_dense = to_dense(&f).unwrap().mul_vec(&x);
        assert_close(&via_apply, &via_dense, 1e-12);
        assert_close(&via_apply, &reference::dft(&x), 1e-12);
    }

    #[test]
    fn direct_sum_blocks() {
        let f = Formula::direct_sum(vec![Formula::f(2), Formula::identity(2)]);
        let y = apply(&f, &cvec(&[1.0, 2.0, 5.0, 7.0])).unwrap();
        assert_close(&y, &cvec(&[3.0, -1.0, 5.0, 7.0]), 1e-14);
    }

    #[test]
    fn rectangular_matrix_apply() {
        // 2x3 matrix times length-3 vector.
        let m = Formula::matrix(2, 3, cvec(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0])).unwrap();
        let y = apply(&m, &cvec(&[1.0, 1.0, 1.0])).unwrap();
        assert_close(&y, &cvec(&[6.0, 15.0]), 1e-14);
    }

    #[test]
    fn rectangular_tensor() {
        // (2x3) ⊗ (1x2) is 2x6.
        let a = Formula::matrix(2, 3, cvec(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0])).unwrap();
        let b = Formula::matrix(1, 2, cvec(&[1.0, -1.0])).unwrap();
        let t = Formula::tensor(vec![a, b]);
        assert_eq!((t.rows(), t.cols()), (2, 6));
        let d = to_dense(&t).unwrap();
        let x = ramp(6);
        assert_close(&apply(&t, &x).unwrap(), &d.mul_vec(&x), 1e-12);
    }

    #[test]
    fn wht_by_tensor_powers() {
        // WHT_8 = F2 ⊗ F2 ⊗ F2 matches the reference WHT.
        let w = Formula::tensor(vec![Formula::f(2), Formula::f(2), Formula::f(2)]);
        let xr: Vec<f64> = (0..8).map(|i| (i as f64) - 3.5).collect();
        let x = cvec(&xr);
        let y = apply(&w, &x).unwrap();
        let want = reference::wht(&xr);
        for (a, b) in y.iter().zip(&want) {
            assert!((a.re - b).abs() < 1e-12 && a.im.abs() < 1e-12);
        }
    }

    #[test]
    fn apply_rejects_wrong_length() {
        assert!(apply(&Formula::f(4), &cvec(&[1.0])).is_err());
    }

    #[test]
    fn oversized_tensor_is_a_typed_overflow_error() {
        // (I 2^40) ⊗ (I 2^40) has 2^80 rows: rows() would wrap, so the
        // oracle must refuse with SizeOverflow before any arithmetic.
        let huge = Formula::tensor(vec![Formula::identity(1 << 40), Formula::identity(1 << 40)]);
        assert!(matches!(
            to_dense(&huge),
            Err(FormulaError::SizeOverflow(_))
        ));
        assert!(matches!(
            apply(&huge, &[]),
            Err(FormulaError::SizeOverflow(_))
        ));
    }

    #[test]
    fn oversized_element_count_is_rejected() {
        // 2^33 x 2^33 identity: rows and cols each fit in usize but the
        // dense element count does not.
        let f = Formula::identity(1 << 33);
        assert!(matches!(to_dense(&f), Err(FormulaError::SizeOverflow(_))));
        // Composition intermediates are guarded too: a (2^33 x 1) times
        // (1 x 2^33) chain would materialize 2^66 elements.
        let tall = Formula::tensor(vec![Formula::matrix(2, 1, cvec(&[1.0, 1.0])).unwrap(); 33]);
        let wide = Formula::tensor(vec![Formula::matrix(1, 2, cvec(&[1.0, 1.0])).unwrap(); 33]);
        let outer = Formula::compose(vec![tall, wide]);
        assert!(matches!(
            to_dense(&outer),
            Err(FormulaError::SizeOverflow(_))
        ));
    }

    #[test]
    fn checked_dims_matches_unchecked_on_normal_formulas() {
        let f = f4_ct();
        assert_eq!(f.checked_dims().unwrap(), (f.rows(), f.cols()));
    }

    #[test]
    fn twiddle_t42_matches_paper() {
        let d = to_dense(&Formula::twiddle(4, 2).unwrap()).unwrap();
        // diag(1, 1, 1, -i)
        assert!(d.at(0, 0).approx_eq(Complex::ONE, 0.0));
        assert!(d.at(1, 1).approx_eq(Complex::ONE, 0.0));
        assert!(d.at(2, 2).approx_eq(Complex::ONE, 0.0));
        assert!(d.at(3, 3).approx_eq(Complex::new(0.0, -1.0), 0.0));
    }
}
