#![warn(missing_docs)]

//! The SPL formula algebra.
//!
//! A *formula* is a typed matrix expression: parameterized matrices
//! (`I`, `F`, `L`, `T`, `J`, diagonal, permutation, general matrix)
//! combined with composition, tensor product, and direct sum — exactly the
//! algebra of paper Section 2. This crate gives formulas their meaning:
//!
//! * **shape inference** — every formula has an output x input shape;
//! * **dense interpretation** — any formula can be elaborated into a dense
//!   complex matrix ([`dense::to_dense`]) or applied to a vector
//!   ([`dense::apply`]), which serves as the *semantics oracle* for the
//!   compiler, the VM, and the code generators;
//! * **conversion** to and from the front end's S-expressions.
//!
//! # Examples
//!
//! ```
//! use spl_formula::{Formula, dense};
//! use spl_numeric::{reference, Complex};
//!
//! // F4 = (F2 (x) I2) T4_2 (I2 (x) F2) L4_2   (Cooley-Tukey)
//! let f4 = Formula::compose(vec![
//!     Formula::tensor(vec![Formula::f(2), Formula::identity(2)]),
//!     Formula::twiddle(4, 2).unwrap(),
//!     Formula::tensor(vec![Formula::identity(2), Formula::f(2)]),
//!     Formula::stride(4, 2).unwrap(),
//! ]);
//! let x: Vec<Complex> = (1..=4).map(|v| Complex::real(v as f64)).collect();
//! let y = dense::apply(&f4, &x).unwrap();
//! let want = reference::dft(&x);
//! for (a, b) in y.iter().zip(&want) {
//!     assert!(a.approx_eq(*b, 1e-12));
//! }
//! ```

pub mod convert;
pub mod dense;
pub mod formula;
pub mod rewrite;

pub use convert::{formula_from_sexp, formula_to_sexp};
pub use formula::{Formula, FormulaError};
