//! Conversion between front-end S-expressions and typed formulas.

use std::collections::HashMap;

use spl_frontend::scalar::ScalarExpr;
use spl_frontend::sexp::Sexp;
use spl_numeric::Complex;

use crate::formula::{Formula, FormulaError};

/// Converts an S-expression into a typed formula.
///
/// `defines` maps `define`d names to already-converted formulas (SPL
/// resolves names lexically, so process `define`s in order and add each to
/// the map).
///
/// # Errors
///
/// Returns [`FormulaError`] for unknown operators, undefined symbols, bad
/// parameters, or shape mismatches.
///
/// # Examples
///
/// ```
/// use spl_frontend::parser::parse_formula;
/// use spl_formula::formula_from_sexp;
/// use std::collections::HashMap;
///
/// let s = parse_formula("(tensor (I 2) (F 2))").unwrap();
/// let f = formula_from_sexp(&s, &HashMap::new()).unwrap();
/// assert_eq!(f.rows(), 4);
/// ```
pub fn formula_from_sexp(
    sexp: &Sexp,
    defines: &HashMap<String, Formula>,
) -> Result<Formula, FormulaError> {
    let f = convert(sexp, defines)?;
    f.check_shapes()?;
    Ok(f)
}

fn convert(sexp: &Sexp, defines: &HashMap<String, Formula>) -> Result<Formula, FormulaError> {
    match sexp {
        Sexp::Symbol(name) => defines
            .get(name)
            .cloned()
            .ok_or_else(|| FormulaError::UndefinedSymbol(name.clone())),
        Sexp::Int(_) | Sexp::Scalar(_) => Err(FormulaError::BadSyntax(format!(
            "a bare scalar {sexp} is not a formula"
        ))),
        Sexp::List(items) => {
            let head = sexp
                .head()
                .ok_or_else(|| FormulaError::BadSyntax(format!("{sexp} has no operator")))?;
            let args = &items[1..];
            match head {
                "I" => Ok(Formula::identity(int_arg(sexp, args, 0)?)),
                "F" => Ok(Formula::f(int_arg(sexp, args, 0)?)),
                "J" => Ok(Formula::reversal(int_arg(sexp, args, 0)?)),
                "L" => Formula::stride(int_arg(sexp, args, 0)?, int_arg(sexp, args, 1)?),
                "T" => Formula::twiddle(int_arg(sexp, args, 0)?, int_arg(sexp, args, 1)?),
                "diagonal" => {
                    let row = args
                        .first()
                        .and_then(Sexp::as_list)
                        .ok_or_else(|| bad(sexp, "diagonal requires an element list"))?;
                    let entries = row
                        .iter()
                        .map(scalar_value)
                        .collect::<Result<Vec<_>, _>>()?;
                    if entries.is_empty() {
                        return Err(bad(sexp, "diagonal requires at least one element"));
                    }
                    Ok(Formula::diagonal(entries))
                }
                "permutation" => {
                    let row = args
                        .first()
                        .and_then(Sexp::as_list)
                        .ok_or_else(|| bad(sexp, "permutation requires an index list"))?;
                    let idx = row
                        .iter()
                        .map(|e| {
                            e.as_int()
                                .filter(|&v| v >= 1)
                                .map(|v| (v - 1) as usize)
                                .ok_or_else(|| bad(sexp, "permutation indices are 1-based"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    Formula::permutation(idx)
                }
                "matrix" => {
                    let mut data = Vec::new();
                    let mut cols = None;
                    for row in args {
                        let row = row
                            .as_list()
                            .ok_or_else(|| bad(sexp, "matrix rows must be lists"))?;
                        match cols {
                            None => cols = Some(row.len()),
                            Some(c) if c != row.len() => {
                                return Err(bad(sexp, "matrix rows have unequal lengths"))
                            }
                            _ => {}
                        }
                        for e in row {
                            data.push(scalar_value(e)?);
                        }
                    }
                    let cols = cols.ok_or_else(|| bad(sexp, "matrix requires rows"))?;
                    Formula::matrix(args.len(), cols, data)
                }
                "compose" | "tensor" | "direct-sum" => {
                    if args.is_empty() {
                        return Err(bad(sexp, "n-ary operation requires operands"));
                    }
                    let parts = args
                        .iter()
                        .map(|a| convert(a, defines))
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok(match head {
                        "compose" => Formula::compose(parts),
                        "tensor" => Formula::tensor(parts),
                        _ => Formula::direct_sum(parts),
                    })
                }
                other => Err(FormulaError::BadSyntax(format!(
                    "unknown operator {other:?} in {sexp}"
                ))),
            }
        }
    }
}

fn bad(sexp: &Sexp, msg: &str) -> FormulaError {
    FormulaError::BadSyntax(format!("{msg}: {sexp}"))
}

fn int_arg(sexp: &Sexp, args: &[Sexp], k: usize) -> Result<usize, FormulaError> {
    args.get(k)
        .and_then(Sexp::as_int)
        .filter(|&v| v > 0)
        .map(|v| v as usize)
        .ok_or_else(|| bad(sexp, "expected a positive integer parameter"))
}

fn scalar_value(e: &Sexp) -> Result<Complex, FormulaError> {
    match e {
        Sexp::Int(v) => Ok(Complex::real(*v as f64)),
        Sexp::Scalar(expr) => {
            let v = expr
                .eval()
                .map_err(|err| FormulaError::BadSyntax(err.to_string()))?;
            Ok(Complex::new(v.re, v.im))
        }
        other => Err(FormulaError::BadSyntax(format!(
            "{other} is not a scalar constant"
        ))),
    }
}

/// Converts a typed formula back into an S-expression (the inverse of
/// [`formula_from_sexp`] up to scalar-constant formatting).
///
/// The formula generator uses this to hand search results to the compiler,
/// whose template matcher operates on S-expressions.
pub fn formula_to_sexp(f: &Formula) -> Sexp {
    match f {
        Formula::Identity(n) => Sexp::list(vec![Sexp::sym("I"), Sexp::Int(*n as i64)]),
        Formula::F(n) => Sexp::list(vec![Sexp::sym("F"), Sexp::Int(*n as i64)]),
        Formula::J(n) => Sexp::list(vec![Sexp::sym("J"), Sexp::Int(*n as i64)]),
        Formula::Stride { n, s } => Sexp::list(vec![
            Sexp::sym("L"),
            Sexp::Int(*n as i64),
            Sexp::Int(*s as i64),
        ]),
        Formula::Twiddle { n, s } => Sexp::list(vec![
            Sexp::sym("T"),
            Sexp::Int(*n as i64),
            Sexp::Int(*s as i64),
        ]),
        Formula::Diagonal(d) => Sexp::list(vec![
            Sexp::sym("diagonal"),
            Sexp::List(d.iter().map(|v| scalar_sexp(*v)).collect()),
        ]),
        Formula::Permutation(p) => Sexp::list(vec![
            Sexp::sym("permutation"),
            Sexp::List(p.iter().map(|&k| Sexp::Int(k as i64 + 1)).collect()),
        ]),
        Formula::Matrix { rows, cols, data } => {
            let mut items = vec![Sexp::sym("matrix")];
            for r in 0..*rows {
                items.push(Sexp::List(
                    (0..*cols)
                        .map(|c| scalar_sexp(data[r * cols + c]))
                        .collect(),
                ));
            }
            Sexp::List(items)
        }
        Formula::Compose(parts) => nary("compose", parts),
        Formula::Tensor(parts) => nary("tensor", parts),
        Formula::DirectSum(parts) => nary("direct-sum", parts),
    }
}

fn nary(op: &str, parts: &[Formula]) -> Sexp {
    let mut items = vec![Sexp::sym(op)];
    items.extend(parts.iter().map(formula_to_sexp));
    Sexp::List(items)
}

fn scalar_sexp(v: Complex) -> Sexp {
    if v.im == 0.0 {
        if v.re.fract() == 0.0 && v.re.abs() < 1e15 {
            Sexp::Int(v.re as i64)
        } else {
            Sexp::Scalar(ScalarExpr::Float(v.re))
        }
    } else {
        Sexp::Scalar(ScalarExpr::Pair(
            Box::new(ScalarExpr::Float(v.re)),
            Box::new(ScalarExpr::Float(v.im)),
        ))
    }
}

/// Builds the define table for a parsed program, converting each `define`
/// in order, and returns it together with the remaining formula items.
///
/// # Errors
///
/// Fails if any `define` body is invalid.
pub fn collect_defines(
    items: &[spl_frontend::Item],
) -> Result<HashMap<String, Formula>, FormulaError> {
    let mut defines = HashMap::new();
    for item in items {
        if let spl_frontend::Item::Define { name, body } = item {
            let f = formula_from_sexp(body, &defines)?;
            defines.insert(name.clone(), f);
        }
    }
    Ok(defines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{apply, to_dense};
    use spl_frontend::parser::{parse_formula, parse_program};
    use spl_numeric::reference;

    fn conv(src: &str) -> Formula {
        formula_from_sexp(&parse_formula(src).unwrap(), &HashMap::new()).unwrap()
    }

    #[test]
    fn parameterized_matrices() {
        assert_eq!(conv("(I 4)"), Formula::Identity(4));
        assert_eq!(conv("(F 8)"), Formula::F(8));
        assert_eq!(conv("(L 16 4)"), Formula::Stride { n: 16, s: 4 });
        assert_eq!(conv("(T 16 4)"), Formula::Twiddle { n: 16, s: 4 });
        assert_eq!(conv("(J 5)"), Formula::J(5));
    }

    #[test]
    fn paper_identity_example_forms() {
        // (matrix (1 0) (0 1)), (diagonal (1 1)), (I 2) all denote I2.
        let a = to_dense(&conv("(matrix (1 0) (0 1))")).unwrap();
        let b = to_dense(&conv("(diagonal (1 1))")).unwrap();
        let c = to_dense(&conv("(I 2)")).unwrap();
        assert!(a.max_diff(&c) < 1e-15);
        assert!(b.max_diff(&c) < 1e-15);
    }

    #[test]
    fn permutation_is_one_based() {
        let f = conv("(permutation (2 1))");
        let x = [Complex::real(10.0), Complex::real(20.0)];
        let y = apply(&f, &x).unwrap();
        assert_eq!(y[0].re, 20.0);
        assert_eq!(y[1].re, 10.0);
    }

    #[test]
    fn complex_matrix_elements() {
        let f = conv("(diagonal ((0,-1) sqrt(2)))");
        match f {
            Formula::Diagonal(d) => {
                assert!(d[0].approx_eq(Complex::new(0.0, -1.0), 1e-15));
                assert!(d[1].approx_eq(Complex::real(2.0_f64.sqrt()), 1e-15));
            }
            other => panic!("expected diagonal, got {other:?}"),
        }
    }

    #[test]
    fn paper_fft16_program_is_correct() {
        let src = "\
(define F4 (compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2)))
(compose (tensor F4 (I 4)) (T 16 4) (tensor (I 4) F4) (L 16 4))
";
        let prog = parse_program(src).unwrap();
        let defines = collect_defines(&prog.items).unwrap();
        let formula_sexp = prog
            .items
            .iter()
            .find_map(|i| match i {
                spl_frontend::Item::Formula { sexp, .. } => Some(sexp.clone()),
                _ => None,
            })
            .unwrap();
        let f = formula_from_sexp(&formula_sexp, &defines).unwrap();
        assert_eq!((f.rows(), f.cols()), (16, 16));
        let x: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64).cos(), (i as f64).sin()))
            .collect();
        let y = apply(&f, &x).unwrap();
        let want = reference::dft(&x);
        for (a, b) in y.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-11));
        }
    }

    #[test]
    fn undefined_symbol_reported() {
        let s = parse_formula("(compose F4 (I 4))").unwrap();
        match formula_from_sexp(&s, &HashMap::new()) {
            Err(FormulaError::UndefinedSymbol(name)) => assert_eq!(name, "F4"),
            other => panic!("expected undefined symbol, got {other:?}"),
        }
    }

    #[test]
    fn unknown_operator_rejected() {
        let s = parse_formula("(frobnicate 2)").unwrap();
        assert!(formula_from_sexp(&s, &HashMap::new()).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let s = parse_formula("(compose (F 2) (F 3))").unwrap();
        assert!(matches!(
            formula_from_sexp(&s, &HashMap::new()),
            Err(FormulaError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn ragged_matrix_rejected() {
        let s = parse_formula("(matrix (1 0) (0))").unwrap();
        assert!(formula_from_sexp(&s, &HashMap::new()).is_err());
    }

    #[test]
    fn to_sexp_round_trips() {
        for src in [
            "(I 4)",
            "(F 8)",
            "(L 16 4)",
            "(T 16 4)",
            "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))",
            "(direct-sum (F 2) (I 3))",
            "(permutation (2 1 3))",
        ] {
            let f = conv(src);
            let back = formula_to_sexp(&f);
            let f2 = formula_from_sexp(&back, &HashMap::new()).unwrap();
            assert_eq!(f, f2, "round trip of {src}");
        }
    }

    #[test]
    fn to_sexp_round_trips_scalars() {
        let f = Formula::diagonal(vec![Complex::new(0.5, -0.5), Complex::real(3.0)]);
        let back = formula_to_sexp(&f);
        let f2 = formula_from_sexp(&back, &HashMap::new()).unwrap();
        let d1 = to_dense(&f).unwrap();
        let d2 = to_dense(&f2).unwrap();
        assert!(d1.max_diff(&d2) < 1e-15);
    }
}
