//! The typed formula tree and its shape rules.

use std::error::Error;
use std::fmt;

use spl_numeric::perm::is_permutation;
use spl_numeric::Complex;

/// A typed SPL formula: a matrix expression.
///
/// Construct leaves through the checked constructors ([`Formula::stride`],
/// [`Formula::twiddle`], [`Formula::permutation`], ...) so that parameter
/// invariants hold by construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Formula {
    /// `(I n)` — the n × n identity.
    Identity(usize),
    /// `(F n)` — the n-point DFT matrix, `F[p][q] = ω_n^{pq}`.
    F(usize),
    /// `(L n s)` — the stride permutation `L^n_s` (s divides n):
    /// output position `i·(n/s) + j` reads input `j·s + i`.
    Stride {
        /// Total size (the paper's `mn`).
        n: usize,
        /// The stride (the paper's second parameter).
        s: usize,
    },
    /// `(T n s)` — the twiddle matrix `T^n_s` (s divides n): the diagonal
    /// with entry `ω_n^{i·j}` at position `i·s + j`.
    Twiddle {
        /// Total size.
        n: usize,
        /// Block size (the paper's second parameter).
        s: usize,
    },
    /// `(J n)` — the reversal permutation (an extension used by the DCT
    /// breakdown rules).
    J(usize),
    /// `(diagonal (d1 ... dn))` — a diagonal matrix.
    Diagonal(Vec<Complex>),
    /// `(permutation (k1 ... kn))` — the permutation matrix with
    /// `y[i] = x[k_{i+1} - 1]` (the SPL source uses 1-based indices;
    /// stored 0-based).
    Permutation(Vec<usize>),
    /// `(matrix (row1) ... (rowm))` — a general (possibly rectangular)
    /// matrix, row-major.
    Matrix {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
        /// Row-major elements, `rows * cols` of them.
        data: Vec<Complex>,
    },
    /// `(compose A1 ... An)` — the matrix product `A1 · A2 · ... · An`.
    Compose(Vec<Formula>),
    /// `(tensor A1 ... An)` — the tensor (Kronecker) product.
    Tensor(Vec<Formula>),
    /// `(direct-sum A1 ... An)` — the block-diagonal direct sum.
    DirectSum(Vec<Formula>),
}

/// Errors from formula construction, conversion, or interpretation.
#[derive(Debug, Clone, PartialEq)]
pub enum FormulaError {
    /// A parameterized matrix received invalid parameters.
    BadParameter(String),
    /// Composition with mismatched inner dimensions.
    ShapeMismatch(String),
    /// An S-expression that is not a valid formula.
    BadSyntax(String),
    /// A symbol with no `define` binding.
    UndefinedSymbol(String),
    /// A formula whose dimensions (or dense element count) exceed
    /// `usize::MAX` — e.g. a tensor power of large identities. The
    /// unchecked [`Formula::rows`] / [`Formula::cols`] would wrap (or
    /// panic in debug builds) on such formulas.
    SizeOverflow(String),
}

impl fmt::Display for FormulaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormulaError::BadParameter(s) => write!(f, "bad parameter: {s}"),
            FormulaError::ShapeMismatch(s) => write!(f, "shape mismatch: {s}"),
            FormulaError::BadSyntax(s) => write!(f, "bad formula syntax: {s}"),
            FormulaError::UndefinedSymbol(s) => write!(f, "undefined symbol: {s}"),
            FormulaError::SizeOverflow(s) => write!(f, "size overflow: {s}"),
        }
    }
}

impl Error for FormulaError {}

impl Formula {
    /// `(I n)`.
    pub fn identity(n: usize) -> Formula {
        Formula::Identity(n)
    }

    /// `(F n)`.
    pub fn f(n: usize) -> Formula {
        Formula::F(n)
    }

    /// `(L n s)` — checked stride permutation.
    ///
    /// # Errors
    ///
    /// Fails unless `s > 0` and `s` divides `n`.
    pub fn stride(n: usize, s: usize) -> Result<Formula, FormulaError> {
        if n == 0 || s == 0 || !n.is_multiple_of(s) {
            return Err(FormulaError::BadParameter(format!(
                "(L {n} {s}): stride must divide the size"
            )));
        }
        Ok(Formula::Stride { n, s })
    }

    /// `(T n s)` — checked twiddle matrix.
    ///
    /// # Errors
    ///
    /// Fails unless `s > 0` and `s` divides `n`.
    pub fn twiddle(n: usize, s: usize) -> Result<Formula, FormulaError> {
        if n == 0 || s == 0 || !n.is_multiple_of(s) {
            return Err(FormulaError::BadParameter(format!(
                "(T {n} {s}): block size must divide the size"
            )));
        }
        Ok(Formula::Twiddle { n, s })
    }

    /// `(J n)` — the reversal permutation.
    pub fn reversal(n: usize) -> Formula {
        Formula::J(n)
    }

    /// A diagonal matrix from its entries.
    pub fn diagonal(entries: Vec<Complex>) -> Formula {
        Formula::Diagonal(entries)
    }

    /// A permutation matrix from a 0-based index map (`y[i] = x[p[i]]`).
    ///
    /// # Errors
    ///
    /// Fails if `p` is not a permutation of `0..p.len()`.
    pub fn permutation(p: Vec<usize>) -> Result<Formula, FormulaError> {
        if !is_permutation(&p) {
            return Err(FormulaError::BadParameter(format!(
                "(permutation ...): {p:?} is not a permutation"
            )));
        }
        Ok(Formula::Permutation(p))
    }

    /// A general matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Fails if `data.len() != rows * cols` or either dimension is zero.
    pub fn matrix(rows: usize, cols: usize, data: Vec<Complex>) -> Result<Formula, FormulaError> {
        if rows == 0 || cols == 0 || data.len() != rows * cols {
            return Err(FormulaError::BadParameter(format!(
                "(matrix ...): {} elements for a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Formula::Matrix { rows, cols, data })
    }

    /// `(compose ...)`. A single-element compose collapses to its element.
    pub fn compose(mut parts: Vec<Formula>) -> Formula {
        if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Formula::Compose(parts)
        }
    }

    /// `(tensor ...)`. A single-element tensor collapses to its element.
    pub fn tensor(mut parts: Vec<Formula>) -> Formula {
        if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Formula::Tensor(parts)
        }
    }

    /// `(direct-sum ...)`. A single-element sum collapses to its element.
    pub fn direct_sum(mut parts: Vec<Formula>) -> Formula {
        if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Formula::DirectSum(parts)
        }
    }

    /// The number of rows (output vector length).
    pub fn rows(&self) -> usize {
        match self {
            Formula::Identity(n) | Formula::F(n) | Formula::J(n) => *n,
            Formula::Stride { n, .. } | Formula::Twiddle { n, .. } => *n,
            Formula::Diagonal(d) => d.len(),
            Formula::Permutation(p) => p.len(),
            Formula::Matrix { rows, .. } => *rows,
            Formula::Compose(parts) => parts.first().map_or(0, Formula::rows),
            Formula::Tensor(parts) => parts.iter().map(Formula::rows).product(),
            Formula::DirectSum(parts) => parts.iter().map(Formula::rows).sum(),
        }
    }

    /// The number of columns (input vector length).
    pub fn cols(&self) -> usize {
        match self {
            Formula::Identity(n) | Formula::F(n) | Formula::J(n) => *n,
            Formula::Stride { n, .. } | Formula::Twiddle { n, .. } => *n,
            Formula::Diagonal(d) => d.len(),
            Formula::Permutation(p) => p.len(),
            Formula::Matrix { cols, .. } => *cols,
            Formula::Compose(parts) => parts.last().map_or(0, Formula::cols),
            Formula::Tensor(parts) => parts.iter().map(Formula::cols).product(),
            Formula::DirectSum(parts) => parts.iter().map(Formula::cols).sum(),
        }
    }

    /// Checks shape consistency of every composition in the tree.
    ///
    /// # Errors
    ///
    /// Returns [`FormulaError::ShapeMismatch`] naming the offending
    /// composition, or [`FormulaError::BadParameter`] for empty n-ary
    /// operations.
    pub fn check_shapes(&self) -> Result<(), FormulaError> {
        match self {
            Formula::Compose(parts) => {
                if parts.is_empty() {
                    return Err(FormulaError::BadParameter("empty compose".into()));
                }
                for w in parts.windows(2) {
                    if w[0].cols() != w[1].rows() {
                        return Err(FormulaError::ShapeMismatch(format!(
                            "compose: {}x{} then {}x{}",
                            w[0].rows(),
                            w[0].cols(),
                            w[1].rows(),
                            w[1].cols()
                        )));
                    }
                }
                parts.iter().try_for_each(Formula::check_shapes)
            }
            Formula::Tensor(parts) | Formula::DirectSum(parts) => {
                if parts.is_empty() {
                    return Err(FormulaError::BadParameter("empty n-ary operation".into()));
                }
                parts.iter().try_for_each(Formula::check_shapes)
            }
            _ => Ok(()),
        }
    }

    /// The shape `(rows, cols)` computed with overflow-checked
    /// arithmetic, also verifying that every subtree's dense element
    /// count (`rows * cols`) and every intermediate product shape in a
    /// composition fit in `usize`.
    ///
    /// # Errors
    ///
    /// Returns [`FormulaError::SizeOverflow`] when any of those
    /// quantities would exceed `usize::MAX`.
    pub fn checked_dims(&self) -> Result<(usize, usize), FormulaError> {
        let elems = |r: usize, c: usize, what: &str| {
            r.checked_mul(c)
                .map(|_| (r, c))
                .ok_or_else(|| FormulaError::SizeOverflow(format!("{what} element count")))
        };
        match self {
            Formula::Identity(n) | Formula::F(n) | Formula::J(n) => elems(*n, *n, "leaf"),
            Formula::Stride { n, .. } | Formula::Twiddle { n, .. } => elems(*n, *n, "leaf"),
            Formula::Diagonal(d) => elems(d.len(), d.len(), "diagonal"),
            Formula::Permutation(p) => elems(p.len(), p.len(), "permutation"),
            Formula::Matrix { rows, cols, .. } => elems(*rows, *cols, "matrix"),
            Formula::Compose(parts) => {
                let dims = parts
                    .iter()
                    .map(Formula::checked_dims)
                    .collect::<Result<Vec<_>, _>>()?;
                let rows = dims.first().map_or(0, |d| d.0);
                let cols = dims.last().map_or(0, |d| d.1);
                // Every intermediate product in the chain is rows x c_k.
                for (_, c) in &dims {
                    elems(rows, *c, "composition intermediate")?;
                }
                Ok((rows, cols))
            }
            Formula::Tensor(parts) => {
                let (mut rows, mut cols) = (1usize, 1usize);
                for p in parts {
                    let (r, c) = p.checked_dims()?;
                    rows = rows
                        .checked_mul(r)
                        .ok_or_else(|| FormulaError::SizeOverflow("tensor rows".into()))?;
                    cols = cols
                        .checked_mul(c)
                        .ok_or_else(|| FormulaError::SizeOverflow("tensor cols".into()))?;
                }
                elems(rows, cols, "tensor")
            }
            Formula::DirectSum(parts) => {
                let (mut rows, mut cols) = (0usize, 0usize);
                for p in parts {
                    let (r, c) = p.checked_dims()?;
                    rows = rows
                        .checked_add(r)
                        .ok_or_else(|| FormulaError::SizeOverflow("direct-sum rows".into()))?;
                    cols = cols
                        .checked_add(c)
                        .ok_or_else(|| FormulaError::SizeOverflow("direct-sum cols".into()))?;
                }
                elems(rows, cols, "direct-sum")
            }
        }
    }

    /// Counts leaf matrices in the tree.
    pub fn leaf_count(&self) -> usize {
        match self {
            Formula::Compose(p) | Formula::Tensor(p) | Formula::DirectSum(p) => {
                p.iter().map(Formula::leaf_count).sum()
            }
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_of_leaves() {
        assert_eq!(Formula::f(8).rows(), 8);
        assert_eq!(Formula::stride(6, 2).unwrap().cols(), 6);
        assert_eq!(Formula::twiddle(8, 4).unwrap().rows(), 8);
        assert_eq!(Formula::diagonal(vec![Complex::ONE; 3]).rows(), 3);
        let m = Formula::matrix(2, 3, vec![Complex::ZERO; 6]).unwrap();
        assert_eq!((m.rows(), m.cols()), (2, 3));
    }

    #[test]
    fn shapes_of_operations() {
        let t = Formula::tensor(vec![Formula::f(2), Formula::identity(3)]);
        assert_eq!((t.rows(), t.cols()), (6, 6));
        let d = Formula::direct_sum(vec![Formula::f(2), Formula::identity(3)]);
        assert_eq!((d.rows(), d.cols()), (5, 5));
        let m = Formula::matrix(2, 3, vec![Complex::ZERO; 6]).unwrap();
        let c = Formula::compose(vec![m.clone(), Formula::identity(3)]);
        assert_eq!((c.rows(), c.cols()), (2, 3));
    }

    #[test]
    fn bad_parameters_rejected() {
        assert!(Formula::stride(6, 4).is_err());
        assert!(Formula::stride(6, 0).is_err());
        assert!(Formula::twiddle(9, 2).is_err());
        assert!(Formula::permutation(vec![0, 0]).is_err());
        assert!(Formula::matrix(2, 2, vec![Complex::ZERO; 3]).is_err());
    }

    #[test]
    fn check_shapes_catches_mismatch() {
        let bad = Formula::Compose(vec![Formula::f(2), Formula::f(3)]);
        assert!(matches!(
            bad.check_shapes(),
            Err(FormulaError::ShapeMismatch(_))
        ));
        let good = Formula::Compose(vec![Formula::f(3), Formula::identity(3)]);
        assert!(good.check_shapes().is_ok());
    }

    #[test]
    fn nested_mismatch_found() {
        let inner = Formula::Compose(vec![Formula::f(2), Formula::f(3)]);
        let outer = Formula::Tensor(vec![Formula::identity(2), inner]);
        assert!(outer.check_shapes().is_err());
    }

    #[test]
    fn single_element_ops_collapse() {
        assert_eq!(Formula::compose(vec![Formula::f(2)]), Formula::f(2));
        assert_eq!(Formula::tensor(vec![Formula::f(2)]), Formula::f(2));
    }

    #[test]
    fn leaf_count() {
        let t = Formula::compose(vec![
            Formula::tensor(vec![Formula::f(2), Formula::identity(2)]),
            Formula::stride(4, 2).unwrap(),
        ]);
        assert_eq!(t.leaf_count(), 3);
    }
}
