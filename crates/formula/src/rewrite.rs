//! Formula transformations.
//!
//! The SPIRAL system the compiler serves "makes use of formula
//! transformations … to automatically generate optimized DSP libraries"
//! (paper abstract). This module implements the semantics-preserving
//! rewrites the formula generator relies on:
//!
//! * structural normalization ([`simplify`]) — flattening nested
//!   `compose`/`tensor`/`direct-sum`, dropping identity factors, fusing
//!   adjacent diagonals and permutations;
//! * the tensor-commutation identity (paper Eq. 6)
//!   ([`commute_tensor`]) — `A ⊗ B = L^{mn}_m (B ⊗ A) L^{mn}_n`;
//! * conversions between algorithm forms built from it, e.g. turning an
//!   `A ⊗ I` stage into an `I ⊗ A` stage for the "parallel" form of
//!   Eq. 8.
//!
//! Every rewrite is verified by dense-matrix equality in the tests.

use spl_numeric::perm::{invert_perm, stride_perm};
use spl_numeric::twiddle::omega;
use spl_numeric::Complex;

use crate::formula::Formula;

/// Exhaustively applies the structural simplifications until a fixpoint:
///
/// * single-element and nested n-ary operations are flattened;
/// * identity factors vanish from `compose`;
/// * `I_m ⊗ I_n` fuses to `I_{mn}`;
/// * adjacent diagonal factors multiply pointwise;
/// * adjacent permutation-like factors (`L`, `J`, `permutation`) fuse
///   into one `permutation`;
/// * a `compose` reduced to nothing becomes the identity.
pub fn simplify(f: &Formula) -> Formula {
    let mut cur = f.clone();
    loop {
        let next = simplify_once(&cur);
        if next == cur {
            return cur;
        }
        cur = next;
    }
}

fn simplify_once(f: &Formula) -> Formula {
    match f {
        Formula::Compose(parts) => {
            let n_cols = f.cols();
            // Flatten nested composes and drop identities.
            let mut flat: Vec<Formula> = Vec::new();
            for p in parts {
                match simplify_once(p) {
                    Formula::Compose(inner) => flat.extend(inner),
                    Formula::Identity(_) => {}
                    other => flat.push(other),
                }
            }
            // Fuse adjacent diagonal and permutation factors.
            let mut fused: Vec<Formula> = Vec::new();
            for p in flat {
                match (fused.last(), &p) {
                    (Some(a), b) => {
                        if let Some(m) = fuse_pair(a, b) {
                            let last = fused.len() - 1;
                            fused[last] = m;
                        } else {
                            fused.push(p);
                        }
                    }
                    (None, _) => fused.push(p),
                }
            }
            match fused.len() {
                0 => Formula::identity(n_cols),
                1 => fused.pop_unwrap(),
                _ => Formula::Compose(fused),
            }
        }
        Formula::Tensor(parts) => {
            let mut flat: Vec<Formula> = Vec::new();
            for p in parts {
                match simplify_once(p) {
                    Formula::Tensor(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            // Fuse adjacent identities.
            let mut fused: Vec<Formula> = Vec::new();
            for p in flat {
                match (fused.last(), &p) {
                    (Some(Formula::Identity(m)), Formula::Identity(n)) => {
                        let mn = m * n;
                        let last = fused.len() - 1;
                        fused[last] = Formula::identity(mn);
                    }
                    _ => fused.push(p),
                }
            }
            if fused.len() == 1 {
                fused.pop_unwrap()
            } else {
                Formula::Tensor(fused)
            }
        }
        Formula::DirectSum(parts) => {
            let mut flat: Vec<Formula> = Vec::new();
            for p in parts {
                match simplify_once(p) {
                    Formula::DirectSum(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            // Fuse adjacent identities (I_m ⊕ I_n = I_{m+n}).
            let mut fused: Vec<Formula> = Vec::new();
            for p in flat {
                match (fused.last(), &p) {
                    (Some(Formula::Identity(m)), Formula::Identity(n)) => {
                        let s = m + n;
                        let last = fused.len() - 1;
                        fused[last] = Formula::identity(s);
                    }
                    _ => fused.push(p),
                }
            }
            if fused.len() == 1 {
                fused.pop_unwrap()
            } else {
                Formula::DirectSum(fused)
            }
        }
        // Degenerate parameterized matrices.
        Formula::Permutation(p) if p.iter().enumerate().all(|(i, &k)| i == k) => {
            Formula::identity(p.len())
        }
        Formula::Stride { n, s } if *s == 1 || s == n => Formula::identity(*n),
        Formula::Twiddle { n, s } if *s == *n || *n == 1 => Formula::identity(*n),
        Formula::J(1) => Formula::identity(1),
        other => other.clone(),
    }
}

/// Fuses two adjacent compose factors when both are "cheap" classes:
/// diagonal·diagonal and permutation·permutation.
fn fuse_pair(a: &Formula, b: &Formula) -> Option<Formula> {
    if let (Some(da), Some(db)) = (as_diagonal(a), as_diagonal(b)) {
        if da.len() == db.len() {
            return Some(Formula::diagonal(
                da.iter().zip(&db).map(|(&x, &y)| x * y).collect(),
            ));
        }
    }
    if let (Some(pa), Some(pb)) = (as_permutation(a), as_permutation(b)) {
        if pa.len() == pb.len() {
            // (A·B)x: B gathers first. y[i] = x[pb[pa[i]]].
            let fused: Vec<usize> = pa.iter().map(|&i| pb[i]).collect();
            return Formula::permutation(fused).ok();
        }
    }
    None
}

/// The diagonal entries, if the formula is diagonal-like (`diagonal` or
/// `T`).
pub fn as_diagonal(f: &Formula) -> Option<Vec<Complex>> {
    match f {
        Formula::Diagonal(d) => Some(d.clone()),
        Formula::Twiddle { n, s } => {
            let m = n / s;
            let mut d = Vec::with_capacity(*n);
            for i in 0..m {
                for j in 0..*s {
                    d.push(omega(*n, (i * j) as i64));
                }
            }
            Some(d)
        }
        _ => None,
    }
}

/// The index map, if the formula is permutation-like (`permutation`,
/// `L`, `J`, `I`).
pub fn as_permutation(f: &Formula) -> Option<Vec<usize>> {
    match f {
        Formula::Permutation(p) => Some(p.clone()),
        Formula::Stride { n, s } => Some(stride_perm(*n, *s)),
        Formula::J(n) => Some((0..*n).rev().collect()),
        Formula::Identity(n) => Some((0..*n).collect()),
        _ => None,
    }
}

/// The tensor-commutation identity (paper Eq. 6):
/// `A ⊗ B  =  L^{mn}_m · (B ⊗ A) · L^{mn}_n` for `A: m×m`, `B: n×n`.
///
/// Returns `None` for non-square operands or non-binary tensors.
pub fn commute_tensor(f: &Formula) -> Option<Formula> {
    let Formula::Tensor(parts) = f else {
        return None;
    };
    let [a, b] = parts.as_slice() else {
        return None;
    };
    let (m, n) = (a.rows(), b.rows());
    if a.cols() != m || b.cols() != n {
        return None;
    }
    Some(Formula::compose(vec![
        Formula::stride(m * n, m).ok()?,
        Formula::tensor(vec![b.clone(), a.clone()]),
        Formula::stride(m * n, n).ok()?,
    ]))
}

/// The inverse of a permutation-like formula (`L`, `J`, `permutation`,
/// `I`), or of a diagonal-like formula with non-zero entries.
///
/// Returns `None` when the formula is not of an invertible-by-inspection
/// class (general inversion is out of scope, as in the paper).
pub fn inverse(f: &Formula) -> Option<Formula> {
    if let Some(p) = as_permutation(f) {
        return Formula::permutation(invert_perm(&p)).ok();
    }
    if let Some(d) = as_diagonal(f) {
        if d.contains(&Complex::ZERO) {
            return None;
        }
        return Some(Formula::diagonal(
            d.into_iter().map(Complex::recip).collect(),
        ));
    }
    None
}

/// The conjugation `A^Q = Q⁻¹ · A · Q` of the paper's DCT equations,
/// for `Q` of an invertible-by-inspection class (see [`inverse`]).
///
/// Returns `None` when `Q` cannot be inverted structurally or shapes
/// mismatch.
pub fn conjugate(a: &Formula, q: &Formula) -> Option<Formula> {
    if a.rows() != a.cols() || q.rows() != a.rows() || q.cols() != a.rows() {
        return None;
    }
    let q_inv = inverse(q)?;
    Some(Formula::compose(vec![q_inv, a.clone(), q.clone()]))
}

/// The transpose of a formula, using `Fᵀ = F`, `Lᵀ = L⁻¹`, diagonal
/// symmetry, `(AB)ᵀ = BᵀAᵀ`, `(A⊗B)ᵀ = Aᵀ⊗Bᵀ`, `(A⊕B)ᵀ = Aᵀ⊕Bᵀ`.
///
/// Since the DFT matrix is symmetric, transposing a DIT factorization
/// yields the corresponding DIF factorization (Eq. 5 ↔ Eq. 7).
pub fn transpose(f: &Formula) -> Formula {
    match f {
        Formula::Identity(_) | Formula::F(_) | Formula::Diagonal(_) | Formula::Twiddle { .. } => {
            f.clone()
        }
        Formula::J(n) => Formula::J(*n),
        Formula::Stride { n, s } => Formula::Stride { n: *n, s: n / s },
        Formula::Permutation(p) => Formula::Permutation(invert_perm(p)),
        Formula::Matrix { rows, cols, data } => {
            let mut t = vec![Complex::ZERO; data.len()];
            for r in 0..*rows {
                for c in 0..*cols {
                    t[c * rows + r] = data[r * cols + c];
                }
            }
            Formula::Matrix {
                rows: *cols,
                cols: *rows,
                data: t,
            }
        }
        Formula::Compose(parts) => Formula::Compose(parts.iter().rev().map(transpose).collect()),
        Formula::Tensor(parts) => Formula::Tensor(parts.iter().map(transpose).collect()),
        Formula::DirectSum(parts) => Formula::DirectSum(parts.iter().map(transpose).collect()),
    }
}

trait PopUnwrap {
    type Out;
    fn pop_unwrap(self) -> Self::Out;
}

impl PopUnwrap for Vec<Formula> {
    type Out = Formula;
    fn pop_unwrap(mut self) -> Formula {
        self.pop().expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::to_dense;

    fn same(a: &Formula, b: &Formula) {
        let da = to_dense(a).unwrap();
        let db = to_dense(b).unwrap();
        assert!(da.max_diff(&db) < 1e-11, "formulas differ: {a:?} vs {b:?}");
    }

    #[test]
    fn identities_vanish_from_compose() {
        let f = Formula::compose(vec![
            Formula::identity(4),
            Formula::f(4),
            Formula::identity(4),
        ]);
        let s = simplify(&f);
        assert_eq!(s, Formula::f(4));
    }

    #[test]
    fn nested_ops_flatten() {
        let f = Formula::Compose(vec![
            Formula::Compose(vec![Formula::f(2), Formula::J(2)]),
            Formula::Compose(vec![Formula::J(2), Formula::f(2)]),
        ]);
        let s = simplify(&f);
        same(&f, &s);
        match &s {
            Formula::Compose(parts) => assert_eq!(parts.len(), 2), // J·J fused to I, dropped; F·F remain
            other => panic!("expected compose, got {other:?}"),
        }
    }

    #[test]
    fn identity_tensor_fuses() {
        let f = Formula::tensor(vec![
            Formula::identity(2),
            Formula::identity(3),
            Formula::f(2),
        ]);
        let s = simplify(&f);
        same(&f, &s);
        assert_eq!(
            s,
            Formula::Tensor(vec![Formula::identity(6), Formula::f(2)])
        );
    }

    #[test]
    fn diagonals_fuse() {
        let d1 = Formula::diagonal(vec![Complex::real(2.0), Complex::real(3.0)]);
        let d2 = Formula::diagonal(vec![Complex::real(0.5), Complex::i()]);
        let f = Formula::compose(vec![d1, d2]);
        let s = simplify(&f);
        same(&f, &s);
        assert!(matches!(s, Formula::Diagonal(_)));
    }

    #[test]
    fn permutations_fuse() {
        let f = Formula::compose(vec![
            Formula::stride(6, 2).unwrap(),
            Formula::stride(6, 3).unwrap(),
        ]);
        let s = simplify(&f);
        same(&f, &s);
        // L^6_2 · L^6_3 = I, which fuses to a permutation = identity map.
        match s {
            Formula::Permutation(p) => assert_eq!(p, vec![0, 1, 2, 3, 4, 5]),
            Formula::Identity(6) => {}
            other => panic!("expected identity permutation, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_parameterized_matrices() {
        assert_eq!(
            simplify(&Formula::stride(5, 1).unwrap()),
            Formula::identity(5)
        );
        assert_eq!(
            simplify(&Formula::stride(5, 5).unwrap()),
            Formula::identity(5)
        );
        assert_eq!(
            simplify(&Formula::twiddle(4, 4).unwrap()),
            Formula::identity(4)
        );
    }

    #[test]
    fn commute_tensor_is_eq6() {
        let f = Formula::tensor(vec![Formula::f(2), Formula::f(4)]);
        let c = commute_tensor(&f).unwrap();
        same(&f, &c);
        let f = Formula::tensor(vec![Formula::f(3), Formula::J(2)]);
        let c = commute_tensor(&f).unwrap();
        same(&f, &c);
    }

    #[test]
    fn transpose_involutive_and_correct() {
        let ct = Formula::compose(vec![
            Formula::tensor(vec![Formula::f(2), Formula::identity(4)]),
            Formula::twiddle(8, 4).unwrap(),
            Formula::tensor(vec![Formula::identity(2), Formula::f(4)]),
            Formula::stride(8, 2).unwrap(),
        ]);
        // DFT is symmetric: transpose of a correct factorization is a
        // correct factorization.
        let t = transpose(&ct);
        same(&ct, &t);
        // And transposing twice is the identity transformation.
        let tt = transpose(&t);
        same(&ct, &tt);
    }

    #[test]
    fn transpose_of_dit_is_dif_shape() {
        // The transpose of (F ⊗ I) T (I ⊗ F) L^n_r is
        // L^n_s (I ⊗ F) T (F ⊗ I) — the DIF form of Eq. 7.
        let dit = Formula::compose(vec![
            Formula::tensor(vec![Formula::f(2), Formula::identity(3)]),
            Formula::twiddle(6, 3).unwrap(),
            Formula::tensor(vec![Formula::identity(2), Formula::f(3)]),
            Formula::stride(6, 2).unwrap(),
        ]);
        let dif = transpose(&dit);
        match &dif {
            Formula::Compose(parts) => {
                assert!(matches!(parts[0], Formula::Stride { n: 6, s: 3 }));
                assert!(matches!(parts.last(), Some(Formula::Tensor(_))));
            }
            other => panic!("expected compose, got {other:?}"),
        }
    }

    #[test]
    fn inverse_of_permutations_and_diagonals() {
        let l = Formula::stride(8, 2).unwrap();
        let li = inverse(&l).unwrap();
        same(
            &Formula::compose(vec![li, l.clone()]),
            &Formula::identity(8),
        );
        let d = Formula::diagonal(vec![Complex::real(2.0), Complex::i()]);
        let di = inverse(&d).unwrap();
        same(
            &Formula::compose(vec![di, d.clone()]),
            &Formula::identity(2),
        );
        // Singular diagonal has no inverse.
        assert!(inverse(&Formula::diagonal(vec![Complex::ZERO])).is_none());
        // General matrices are out of scope.
        assert!(inverse(&Formula::f(4)).is_none());
    }

    #[test]
    fn conjugation_by_stride_permutation() {
        // (I ⊗ F)^{L} = F ⊗ I: conjugating by the stride permutation
        // converts between the two tensor orders (Eq. 6 in disguise).
        let a = Formula::tensor(vec![Formula::identity(3), Formula::f(2)]);
        let q = Formula::stride(6, 3).unwrap();
        let conj = conjugate(&a, &q).unwrap();
        same(
            &conj,
            &Formula::tensor(vec![Formula::f(2), Formula::identity(3)]),
        );
    }

    #[test]
    fn simplify_preserves_semantics_on_fft() {
        let messy = Formula::Compose(vec![
            Formula::identity(8),
            Formula::Compose(vec![
                Formula::tensor(vec![Formula::f(2), Formula::identity(4)]),
                Formula::identity(8),
                Formula::twiddle(8, 4).unwrap(),
            ]),
            Formula::tensor(vec![
                Formula::identity(1),
                Formula::tensor(vec![Formula::identity(2), Formula::f(4)]),
            ]),
            Formula::stride(8, 2).unwrap(),
        ]);
        let s = simplify(&messy);
        same(&messy, &s);
        assert!(s.leaf_count() < messy.leaf_count());
    }
}
