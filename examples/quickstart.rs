//! Quickstart: compile an SPL program, print the generated Fortran and C,
//! and execute the result three ways (i-code interpreter, register VM,
//! native code through the host C compiler), checking all of them against
//! the dense-matrix semantics of the formula.
//!
//! Run with `cargo run --example quickstart`.

use std::collections::HashMap;

use spl::compiler::{Compiler, CompilerOptions};
use spl::formula::{dense, formula_from_sexp};
use spl::native::NativeKernel;
use spl::numeric::Complex;
use spl::vm::{lower, VmState};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example: the 4-point Cooley–Tukey FFT.
    let source = "\
#datatype complex
#codetype real
#subname fft4
(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))
";
    println!("=== SPL source ===\n{source}");

    let mut compiler = Compiler::with_options(CompilerOptions {
        unroll_threshold: Some(32), // -B 32: straight-line code
        ..Default::default()
    });
    let units = compiler.compile_source(source)?;
    let unit = &units[0];

    println!("=== generated Fortran ===\n{}", unit.emit());
    let c_unit = {
        let mut c_compiler = Compiler::with_options(CompilerOptions {
            unroll_threshold: Some(32),
            language_override: Some(spl::frontend::ast::Language::C),
            ..Default::default()
        });
        c_compiler.compile_source(source)?.remove(0)
    };
    println!("=== generated C ===\n{}", c_unit.emit());

    // A test input: four complex points, interleaved as re,im pairs.
    let x = [
        Complex::new(1.0, 0.5),
        Complex::new(-2.0, 1.0),
        Complex::new(0.25, -1.0),
        Complex::new(3.0, 0.0),
    ];
    let flat: Vec<f64> = x.iter().flat_map(|z| [z.re, z.im]).collect();

    // 1. The i-code interpreter (the compiler's semantics oracle).
    let interp: Vec<Complex> = spl::icode::interp::run(
        &unit.program,
        &flat.iter().map(|&v| Complex::real(v)).collect::<Vec<_>>(),
    )?
    .chunks(2)
    .map(|p| Complex::new(p[0].re, p[1].re))
    .collect();

    // 2. The register VM.
    let vm = lower(&unit.program)?;
    let mut y = vec![0.0; vm.n_out];
    vm.run(&flat, &mut y, &mut VmState::new(&vm));
    let vm_out: Vec<Complex> = y.chunks(2).map(|p| Complex::new(p[0], p[1])).collect();

    // 3. Native code: the generated C compiled by the host `cc`.
    let kernel = NativeKernel::compile(unit)?;
    let mut y = vec![0.0; kernel.n_out];
    kernel.run(&flat, &mut y);
    let native_out: Vec<Complex> = y.chunks(2).map(|p| Complex::new(p[0], p[1])).collect();

    // The oracle: interpret the formula as a dense matrix.
    let f = formula_from_sexp(&unit.formula, &HashMap::new())?;
    let want = dense::apply(&f, &x)?;

    println!("=== results ===");
    println!("{:<12} {:<28} {:<28}", "engine", "y[0]", "y[1]");
    for (name, out) in [
        ("dense", &want),
        ("interpreter", &interp),
        ("vm", &vm_out),
        ("native", &native_out),
    ] {
        println!(
            "{:<12} {:<28} {:<28}",
            name,
            out[0].to_string(),
            out[1].to_string()
        );
        for (a, b) in out.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-12), "{name} disagrees with the oracle");
        }
    }
    println!("\nall four engines agree ✓");
    Ok(())
}
