//! The full SPIRAL-style pipeline: formula generation → compilation →
//! measured dynamic-programming search → best implementation, for FFT
//! sizes 2..64 (paper Section 4.1), with the winning formulas printed as
//! SPL source.
//!
//! Run with `cargo run --release --example search_pipeline`.

use std::time::Duration;

use spl::generator::fft::enumerate_trees;
use spl::generator::fft::Rule;
use spl::numeric::pseudo_mflops;
use spl::search::{compile_tree_native, small_search, NativeEvaluator, SearchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // How big is the space the search walks? (Equation 10 trees.)
    println!("factorization-space sizes (Equation 10, with naive leaves):");
    for k in 1..=6 {
        println!(
            "  F_{:<3} {:>4} formulas",
            1 << k,
            enumerate_trees(k, Rule::CooleyTukey).len()
        );
    }

    println!("\nrunning measured dynamic programming (native execution) ...");
    let config = SearchConfig::default();
    let mut eval = NativeEvaluator::new(64, Duration::from_millis(10));
    let best = small_search(6, &config, &mut eval)?;

    println!("\n{:<4} {:>12} {:<24} formula", "N", "pMFLOPS", "shape");
    for r in &best {
        let n = r.tree.size();
        let kernel = compile_tree_native(&r.tree, 64)?;
        let t = kernel.measure(Duration::from_millis(10));
        println!(
            "{:<4} {:>12.1} {:<24} {}",
            n,
            pseudo_mflops(n, t * 1e6),
            r.tree.describe(),
            r.tree.to_sexp()
        );
    }
    println!(
        "\n(the winning SPL formulas above can be fed back to the compiler\n\
         verbatim, e.g. with #subname/#datatype directives prepended)"
    );
    Ok(())
}
