//! Beyond the FFT: the paper's point is that SPL is *general* — any
//! transform expressible as a matrix factorization compiles through the
//! same pipeline. This example generates Walsh–Hadamard and DCT-II/DCT-IV
//! formulas from their breakdown rules (paper Section 2.1), compiles
//! them, and verifies against the reference transforms.
//!
//! Run with `cargo run --example wht_dct`.

use spl::compiler::Compiler;
use spl::frontend::ast::{DataType, DirectiveState};
use spl::generator::{dct, wht};
use spl::numeric::{reference, relative_rms_error_real, Complex};

fn run_real(
    compiler: &mut Compiler,
    sexp: &spl::frontend::Sexp,
    x: &[f64],
) -> Result<Vec<f64>, Box<dyn std::error::Error>> {
    let directives = DirectiveState {
        datatype: DataType::Real,
        ..Default::default()
    };
    let unit = compiler.compile_sexp(sexp, &directives)?;
    let xin: Vec<Complex> = x.iter().map(|&v| Complex::real(v)).collect();
    Ok(spl::icode::interp::run(&unit.program, &xin)?
        .into_iter()
        .map(|c| c.re)
        .collect())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut compiler = Compiler::new();
    // The DCT-IV rule uses the user-defined (SIV n) operator — register
    // its template first (this is the paper's extension mechanism).
    compiler.compile_source(dct::TEMPLATE_SOURCE)?;

    let x: Vec<f64> = (0..16).map(|i| ((i * 7 % 13) as f64) * 0.5 - 3.0).collect();

    // Walsh–Hadamard, three algorithm shapes.
    println!("WHT_16 breakdowns:");
    for (name, tree) in [
        ("iterative (all F2 stages)", wht::iterative(4)),
        ("balanced", wht::balanced(4)),
        ("direct tensor power", wht::WhtTree::leaf(4)),
    ] {
        let got = run_real(&mut compiler, &tree.to_sexp(), &x)?;
        let want = reference::wht(&x);
        let err = relative_rms_error_real(&got, &want);
        println!("  {name:<28} error {err:.2e}  formula {}", tree.to_sexp());
        assert!(err < 1e-12);
    }

    // DCT-II and DCT-IV via the recursive rules.
    println!("\nDCT rules (recursive, with the O(n) SIV template):");
    for n in [4usize, 8, 16] {
        let got = run_real(&mut compiler, &dct::dct2(n), &x[..n])?;
        let want = reference::dct2(&x[..n]);
        let err = relative_rms_error_real(&got, &want);
        println!("  DCT-II  n={n:<3} error {err:.2e}");
        assert!(err < 1e-10);

        let got = run_real(&mut compiler, &dct::dct4(n), &x[..n])?;
        let want = reference::dct4(&x[..n]);
        let err = relative_rms_error_real(&got, &want);
        println!("  DCT-IV  n={n:<3} error {err:.2e}");
        assert!(err < 1e-10);
    }
    println!("\nall transforms verified ✓");
    Ok(())
}
