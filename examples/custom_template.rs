//! The template mechanism as an extension point (paper Section 3.2):
//!
//! 1. define a brand-new parameterized matrix `(avg n)` — a sliding
//!    two-point averager — purely with a template, and compile formulas
//!    using it (the compiler infers its shape from the template body);
//! 2. *override* the built-in `(F 2)` butterfly with a user template and
//!    watch the override take effect ("new templates override earlier
//!    ones");
//! 3. show the loop-fusion trick from the paper: a template that matches
//!    the *composite* pattern `(compose (tensor (I k) A) (tensor (I k) B))`
//!    and emits a single fused loop.
//!
//! Run with `cargo run --example custom_template`.

use spl::compiler::Compiler;
use spl::frontend::ast::{DataType, DirectiveState};
use spl::numeric::Complex;

fn run_real(
    compiler: &mut Compiler,
    src: &str,
    x: &[f64],
) -> Result<Vec<f64>, Box<dyn std::error::Error>> {
    let sexp = spl::frontend::parser::parse_formula(src)?;
    let directives = DirectiveState {
        datatype: DataType::Real,
        ..Default::default()
    };
    let unit = compiler.compile_sexp(&sexp, &directives)?;
    let xin: Vec<Complex> = x.iter().map(|&v| Complex::real(v)).collect();
    Ok(spl::icode::interp::run(&unit.program, &xin)?
        .into_iter()
        .map(|c| c.re)
        .collect())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut compiler = Compiler::new();

    // 1. A new parameterized matrix, defined only by its template:
    //    out[i] = (in[i] + in[i+1]) / 2, an n x (n+1) matrix.
    compiler.compile_source(
        "(template (avg n_) [n_>=1]
           (do $i0 = 0,n_-1
                 $f0 = $in($i0) + $in($i0+1)
                 $out($i0) = 0.5 * $f0
            end))",
    )?;
    let y = run_real(&mut compiler, "(avg 4)", &[1.0, 3.0, 5.0, 7.0, 9.0])?;
    println!("(avg 4) of [1 3 5 7 9]          = {y:?}");
    assert_eq!(y, vec![2.0, 4.0, 6.0, 8.0]);

    // The new operator composes with everything else: average, then a
    // reversal.
    let y = run_real(
        &mut compiler,
        "(compose (J 4) (avg 4))",
        &[1.0, 3.0, 5.0, 7.0, 9.0],
    )?;
    println!("(compose (J 4) (avg 4))          = {y:?}");
    assert_eq!(y, vec![8.0, 6.0, 4.0, 2.0]);

    // 2. Override the built-in butterfly: scale outputs by 10 to make
    //    the override visible.
    let mut patched = Compiler::new();
    patched.compile_source(
        "(template (F 2)
           ( $f0 = $in(0) + $in(1)
             $f1 = $in(0) - $in(1)
             $out(0) = 10 * $f0
             $out(1) = 10 * $f1 ))",
    )?;
    let y = run_real(&mut patched, "(F 2)", &[3.0, 5.0])?;
    println!("overridden (F 2) of [3 5]        = {y:?}");
    assert_eq!(y, vec![80.0, -20.0]);

    // 3. Loop fusion by pattern: the paper notes that
    //    (compose (tensor (I 8) A) (tensor (I 8) B)) normally becomes two
    //    loops, but a template matching the whole pattern can emit one.
    let mut fused = Compiler::new();
    fused.compile_source(
        "(template (compose (tensor (I k_) A_) (tensor (I k_) B_))
             [A_.in_size == B_.out_size]
           (do $i0 = 0,k_-1
                 B_( $in, $t0, $i0*B_.in_size, 0, 1, 1 )
                 A_( $t0, $out, 0, $i0*A_.out_size, 1, 1 )
            end))",
    )?;
    let y = run_real(
        &mut fused,
        "(compose (tensor (I 8) (F 2)) (tensor (I 8) (F 2)))",
        &(1..=16).map(f64::from).collect::<Vec<_>>(),
    )?;
    // F2 applied twice is 2·I, so the fused pipeline doubles the input.
    println!(
        "fused (I8⊗F2)(I8⊗F2) = 2x         = first four: {:?}",
        &y[..4]
    );
    assert_eq!(y, (1..=16).map(|v| 2.0 * f64::from(v)).collect::<Vec<_>>());
    // Count loops in the generated code: exactly one (fused), not two.
    let sexp = spl::frontend::parser::parse_formula(
        "(compose (tensor (I 8) (F 2)) (tensor (I 8) (F 2)))",
    )?;
    let unit = fused.compile_sexp(
        &sexp,
        &DirectiveState {
            datatype: DataType::Real,
            ..Default::default()
        },
    )?;
    let loops = unit
        .program
        .instrs
        .iter()
        .filter(|i| matches!(i, spl::icode::Instr::DoStart { .. }))
        .count();
    println!("loops in fused code: {loops} (two without the fusion template)");
    assert_eq!(loops, 1);
    println!("\ntemplate extension mechanism verified ✓");
    Ok(())
}
