//! The paper's Section 2.2 example: `F16 = (F4 ⊗ I4) T16_4 (I4 ⊗ F4) L16_4`
//! with `F4` itself Cooley–Tukey-factored through a `define`. Prints the
//! generated Fortran (loop code and fully unrolled), then verifies the
//! program against the reference DFT.
//!
//! Run with `cargo run --example fft16_codegen`.

use spl::compiler::{Compiler, CompilerOptions};
use spl::numeric::{reference, relative_rms_error, Complex};
use spl::vm::{lower, VmState};

const SOURCE: &str = "\
#codetype real
(define F4 (compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2)))
#subname fft16
(compose (tensor F4 (I 4)) (T 16 4) (tensor (I 4) F4) (L 16 4))
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== SPL source (paper Section 2.2) ===\n{SOURCE}");

    // Loop code (no unrolling).
    let mut compiler = Compiler::new();
    let unit = compiler.compile_source(SOURCE)?.remove(0);
    println!("=== Fortran, loop code ===\n{}", unit.emit());

    // Straight-line code (-B 32), as used for small sizes in Section 4.1.
    let mut compiler = Compiler::with_options(CompilerOptions {
        unroll_threshold: Some(32),
        ..Default::default()
    });
    let unrolled = compiler.compile_source(SOURCE)?.remove(0);
    println!(
        "=== straight-line version: {} instructions (loop version: {}) ===",
        unrolled.program.static_instr_count(),
        unit.program.static_instr_count(),
    );

    // Verify both against the reference DFT.
    let x: Vec<Complex> = (0..16)
        .map(|i| Complex::new((i as f64 * 0.4).sin(), (i as f64 * 0.9).cos()))
        .collect();
    let want = reference::dft(&x);
    for (name, u) in [("loop", &unit), ("unrolled", &unrolled)] {
        let vm = lower(&u.program)?;
        let flat: Vec<f64> = x.iter().flat_map(|z| [z.re, z.im]).collect();
        let mut y = vec![0.0; vm.n_out];
        vm.run(&flat, &mut y, &mut VmState::new(&vm));
        let got: Vec<Complex> = y.chunks(2).map(|p| Complex::new(p[0], p[1])).collect();
        let err = relative_rms_error(&got, &want);
        println!("{name:>9}: relative error vs reference DFT = {err:.2e}");
        assert!(err < 1e-13);
    }
    Ok(())
}
