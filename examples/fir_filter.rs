//! A realistic DSP application: FIR low-pass filtering by fast circular
//! convolution, with the whole filter — forward FFT, spectral multiply,
//! inverse FFT — expressed as *one SPL formula* and compiled to native
//! code.
//!
//! The signal is a low-frequency tone buried in high-frequency
//! interference; the compiled convolution kernel removes the
//! interference. Energies above/below the cutoff are printed before and
//! after.
//!
//! Run with `cargo run --release --example fir_filter`.

use spl::compiler::{Compiler, CompilerOptions};
use spl::formula::formula_to_sexp;
use spl::frontend::ast::{DataType, DirectiveState};
use spl::generator::conv::{circular_convolution, lowpass_kernel};
use spl::generator::fft::{ct_sequence, Rule};
use spl::native::NativeKernel;
use spl::numeric::{reference, Complex};

const N: usize = 256;
const CUTOFF: f64 = 0.1; // normalized frequency

fn band_energy(x: &[Complex], low_band: bool) -> f64 {
    let spectrum = reference::dft(x);
    let cut = (CUTOFF * N as f64) as usize;
    spectrum
        .iter()
        .enumerate()
        .filter(|(k, _)| {
            let f = (*k).min(N - k); // folded frequency
            if low_band {
                f <= cut
            } else {
                f > cut
            }
        })
        .map(|(_, v)| v.norm_sqr())
        .sum()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A clean 3-cycle tone plus strong interference at 60 cycles.
    let signal: Vec<Complex> = (0..N)
        .map(|i| {
            let t = i as f64 / N as f64;
            let tone = (2.0 * std::f64::consts::PI * 3.0 * t).sin();
            let noise = 0.8 * (2.0 * std::f64::consts::PI * 60.0 * t).sin();
            Complex::real(tone + noise)
        })
        .collect();

    // Design the filter and build the convolution formula around a
    // 256-point Cooley–Tukey factorization.
    let h = lowpass_kernel(N, 33, CUTOFF * 0.8);
    let tree = ct_sequence(&[4, 4, 16], Rule::CooleyTukey);
    let formula = circular_convolution(&h, &tree);
    println!(
        "convolution formula: {} leaf matrices, {} x {}",
        formula.leaf_count(),
        formula.rows(),
        formula.cols()
    );

    // Compile it (complex data, real code, leaves unrolled) and load the
    // generated C natively.
    let mut compiler = Compiler::with_options(CompilerOptions {
        unroll_threshold: Some(16),
        ..Default::default()
    });
    let directives = DirectiveState {
        datatype: DataType::Complex,
        codetype: DataType::Real,
        subname: Some("fir256".into()),
        ..Default::default()
    };
    let unit = compiler.compile_sexp(&formula_to_sexp(&formula), &directives)?;
    println!(
        "compiled: {} i-code instructions, {} twiddle/spectrum tables",
        unit.program.static_instr_count(),
        unit.program.tables.len()
    );
    let kernel = NativeKernel::compile(&unit)?;

    // Run the filter.
    let flat: Vec<f64> = signal.iter().flat_map(|z| [z.re, z.im]).collect();
    let mut out = vec![0.0; kernel.n_out];
    kernel.run(&flat, &mut out);
    let filtered: Vec<Complex> = out.chunks(2).map(|p| Complex::new(p[0], p[1])).collect();

    // Check against the O(n²) reference convolution.
    let want = reference::circular_convolution(&h, &signal);
    let err = spl::numeric::relative_rms_error(&filtered, &want);
    println!("vs reference convolution: relative error {err:.2e}");
    assert!(err < 1e-10);

    // Report band energies.
    let before_hi = band_energy(&signal, false);
    let after_hi = band_energy(&filtered, false);
    let before_lo = band_energy(&signal, true);
    let after_lo = band_energy(&filtered, true);
    println!("low-band energy  (tone):        {before_lo:10.1} -> {after_lo:10.1}");
    println!("high-band energy (interference): {before_hi:10.1} -> {after_hi:10.1}");
    println!(
        "interference suppressed by {:.0} dB, tone kept within {:.1} dB",
        10.0 * (before_hi / after_hi).log10(),
        10.0 * (before_lo / after_lo).log10().abs()
    );
    assert!(
        after_hi < before_hi / 100.0,
        "interference must drop >20 dB"
    );
    assert!(after_lo > before_lo * 0.5, "tone must survive");
    Ok(())
}
