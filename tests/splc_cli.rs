//! End-to-end tests of the `splc` command-line compiler.

use std::io::Write;
use std::process::{Command, Stdio};

fn splc(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_splc"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn splc");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(stdin.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

const FFT4: &str = "\
#codetype real
#subname fft4
(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))
";

#[test]
fn emits_fortran_by_default() {
    let (out, _, ok) = splc(&[], FFT4);
    assert!(ok);
    assert!(out.contains("subroutine fft4(y,x)"));
    assert!(out.contains("implicit real*8 (f)"));
}

#[test]
fn emits_c_on_request() {
    let (out, _, ok) = splc(&["--language", "c", "-B", "32"], FFT4);
    assert!(ok);
    assert!(out.contains("void fft4(double *y, const double *x)"));
}

#[test]
fn icode_mode_prints_tuples() {
    let (out, _, ok) = splc(&["--icode", "-B", "32"], FFT4);
    assert!(ok);
    assert!(out.contains("$out("));
    assert!(out.contains("$in("));
}

#[test]
fn run_mode_executes() {
    let (out, _, ok) = splc(&["--run"], "#datatype real\n(F 2)");
    assert!(ok);
    assert!(out.contains("output on sin-ramp input"));
    assert!(out.contains("y(1)"));
}

#[test]
fn parse_errors_fail_cleanly() {
    let (_, err, ok) = splc(&[], "(compose (F 2)");
    assert!(!ok);
    assert!(err.contains("splc:"));
}

#[test]
fn shape_errors_fail_cleanly() {
    let (_, err, ok) = splc(&[], "(compose (F 2) (F 3))");
    assert!(!ok);
    assert!(err.contains("splc:"));
}

#[test]
fn reads_files_and_reports_missing() {
    let (_, err, ok) = splc(&["/nonexistent/x.spl"], "");
    assert!(!ok);
    assert!(err.contains("reading"));
}

#[test]
fn templates_only_input_is_not_an_error() {
    let (_, err, ok) = splc(&[], "(template (nothing n_) ($out(0) = $in(0)))");
    assert!(ok);
    assert!(err.contains("no formulas"));
}

#[test]
fn deeply_nested_formula_is_a_typed_error_not_a_stack_overflow() {
    // 50k levels of nesting would overflow the stack of a naive
    // recursive-descent parser; the depth limit must reject it first.
    let deep = format!(
        "{}(F 2){}",
        "(tensor (I 1) ".repeat(50_000),
        ")".repeat(50_000)
    );
    let (_, err, ok) = splc(&[], &deep);
    assert!(!ok);
    assert!(err.contains("depth"), "unexpected diagnostic: {err}");
}

#[test]
fn max_depth_flag_tightens_the_parser_limit() {
    let shallow = "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))";
    let (_, err, ok) = splc(&["--max-depth", "2"], shallow);
    assert!(!ok);
    assert!(err.contains("depth"), "unexpected diagnostic: {err}");
    let (_, _, ok) = splc(&["--max-depth", "16"], shallow);
    assert!(ok);
}

#[test]
fn unrolled_size_cap_is_a_typed_error() {
    // Fully unrolling a 64-point FFT formula needs far more than 10
    // instructions; the cap must convert that into a resource error.
    let src = "#unroll on\n(tensor (F 8) (F 8))";
    let (_, err, ok) = splc(&["--max-unrolled-ops", "10", "-B", "64"], src);
    assert!(!ok);
    assert!(
        err.contains("--max-unrolled-ops"),
        "unexpected diagnostic: {err}"
    );
    let (_, _, ok) = splc(&["-B", "64"], src);
    assert!(ok, "default cap must not trip on a 64-point formula");
}

#[test]
fn broken_pipe_exits_cleanly() {
    // A reader that closes early (`splc ... | head`) must produce a
    // clean exit 0, not a panic or a SIGPIPE kill. The formula unrolls
    // to well past the 64 KiB pipe buffer, so the writer is guaranteed
    // to hit EPIPE once the read end is gone.
    let mut child = Command::new(env!("CARGO_BIN_EXE_splc"))
        .args(["--language", "c", "-B", "4096"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn splc");
    drop(child.stdout.take()); // close the read end before any output
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"#unroll on\n(tensor (I 512) (F 2))")
        .unwrap();
    drop(child.stdin.take());
    let out = child.wait_with_output().unwrap();
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "broken pipe must exit 0, got {:?}; stderr: {err}",
        out.status
    );
    assert!(!err.contains("panic"), "broken pipe must not panic: {err}");
}
