//! End-to-end pipeline tests: SPL source → compiler → VM, checked against
//! the dense-matrix semantics and the reference DFT, across factorization
//! rules, sizes, and optimization levels.

use spl::compiler::{Compiler, CompilerOptions, OptLevel};
use spl::frontend::ast::{DataType, DirectiveState};
use spl::generator::fft::{ct_sequence, enumerate_trees, FftTree, Rule, ALL_RULES};
use spl::numeric::{reference, relative_rms_error, Complex};
use spl::vm::{lower, VmState};

fn directives() -> DirectiveState {
    DirectiveState {
        datatype: DataType::Complex,
        codetype: DataType::Real,
        ..Default::default()
    }
}

fn run_tree(tree: &FftTree, opts: CompilerOptions) -> Vec<Complex> {
    let mut compiler = Compiler::with_options(opts);
    let unit = compiler
        .compile_sexp(&tree.to_sexp(), &directives())
        .unwrap();
    let vm = lower(&unit.program).unwrap();
    let x = workload(tree.size());
    let flat = spl::vm::convert::interleave(&x);
    let mut y = vec![0.0; vm.n_out];
    vm.run(&flat, &mut y, &mut VmState::new(&vm));
    spl::vm::convert::deinterleave(&y)
}

fn workload(n: usize) -> Vec<Complex> {
    (0..n)
        .map(|i| Complex::new((i as f64 * 0.31).sin(), (i as f64 * 0.17).cos()))
        .collect()
}

fn assert_is_dft(tree: &FftTree, got: &[Complex]) {
    let want = reference::dft(&workload(tree.size()));
    let err = relative_rms_error(got, &want);
    assert!(
        err < 1e-11,
        "{} (size {}): error {err}",
        tree.describe(),
        tree.size()
    );
}

#[test]
fn every_rule_compiles_and_runs() {
    for rule in ALL_RULES {
        for (r, s) in [(2usize, 4usize), (4, 4), (8, 2)] {
            let tree = FftTree::node(rule, FftTree::leaf(r), FftTree::leaf(s));
            let got = run_tree(&tree, CompilerOptions::default());
            assert_is_dft(&tree, &got);
        }
    }
}

#[test]
fn mixed_rule_trees() {
    let f8 = FftTree::node(Rule::Vector, FftTree::leaf(2), FftTree::leaf(4));
    let f32 = FftTree::node(Rule::DecimationInFrequency, FftTree::leaf(4), f8.clone());
    let f64t = FftTree::node(Rule::Parallel, FftTree::leaf(2), f32);
    for tree in [f8, f64t] {
        let got = run_tree(&tree, CompilerOptions::default());
        assert_is_dft(&tree, &got);
    }
}

#[test]
fn all_f16_factorizations_at_all_levels() {
    for tree in enumerate_trees(4, Rule::CooleyTukey) {
        for level in [OptLevel::None, OptLevel::ScalarTemps, OptLevel::Default] {
            for threshold in [None, Some(64)] {
                let got = run_tree(
                    &tree,
                    CompilerOptions {
                        opt_level: level,
                        unroll_threshold: threshold,
                        ..Default::default()
                    },
                );
                assert_is_dft(&tree, &got);
            }
        }
    }
}

#[test]
fn iterative_radix_two_large() {
    // The iterative radix-2 FFT (Eq. 10 with all factors 2) at 256 points.
    let tree = ct_sequence(&[2; 8], Rule::CooleyTukey);
    let got = run_tree(
        &tree,
        CompilerOptions {
            unroll_threshold: Some(4),
            ..Default::default()
        },
    );
    assert_is_dft(&tree, &got);
}

#[test]
fn large_loop_code_1024() {
    // Rightmost split with unrolled 64-point leaves: the Section 4.2
    // configuration.
    let leaf64 = ct_sequence(&[4, 4, 4], Rule::CooleyTukey);
    let tree = FftTree::node(
        Rule::CooleyTukey,
        ct_sequence(&[4, 4], Rule::CooleyTukey),
        leaf64,
    );
    assert_eq!(tree.size(), 1024);
    let got = run_tree(
        &tree,
        CompilerOptions {
            unroll_threshold: Some(64),
            ..Default::default()
        },
    );
    assert_is_dft(&tree, &got);
}

#[test]
fn mixed_radix_sizes() {
    // The Cooley–Tukey rule is not limited to powers of two (Eq. 5 only
    // needs n = r·s): exercise 6-, 12-, 24-, and 60-point transforms.
    for factors in [vec![2usize, 3], vec![3, 4], vec![2, 3, 4], vec![3, 4, 5]] {
        let tree = ct_sequence(&factors, Rule::CooleyTukey);
        let got = run_tree(&tree, CompilerOptions::default());
        assert_is_dft(&tree, &got);
        let got = run_tree(
            &tree,
            CompilerOptions {
                unroll_threshold: Some(8),
                ..Default::default()
            },
        );
        assert_is_dft(&tree, &got);
    }
}

#[test]
fn paper_f8_formulas_from_section_4_1() {
    let mut compiler = Compiler::with_options(CompilerOptions {
        unroll_threshold: Some(32),
        ..Default::default()
    });
    let src = "\
#codetype real
(define F4 (compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2)))
#subname formula1
(compose (tensor (F 2) (I 4)) (T 8 4) (tensor (I 2) F4) (L 8 2))
#subname formula2
(compose (tensor F4 (I 2)) (T 8 2) (tensor (I 4) (F 2)) (L 8 4))
";
    let units = compiler.compile_source(src).unwrap();
    assert_eq!(units.len(), 2);
    let x = workload(8);
    let want = reference::dft(&x);
    for unit in &units {
        let vm = lower(&unit.program).unwrap();
        let flat = spl::vm::convert::interleave(&x);
        let mut y = vec![0.0; vm.n_out];
        vm.run(&flat, &mut y, &mut VmState::new(&vm));
        let got = spl::vm::convert::deinterleave(&y);
        assert!(relative_rms_error(&got, &want) < 1e-12, "{}", unit.name);
    }
    // Different factorizations, different computation order (the paper's
    // point in Section 4.1) — but identical results.
    assert_ne!(units[0].program.instrs, units[1].program.instrs);
}

#[test]
fn vectorized_compilation() {
    // A → A ⊗ I_4 (Section 3.5): four interleaved transforms.
    let mut compiler = Compiler::with_options(CompilerOptions {
        vectorize: Some(4),
        ..Default::default()
    });
    let tree = FftTree::node(Rule::CooleyTukey, FftTree::leaf(2), FftTree::leaf(2));
    let unit = compiler
        .compile_sexp(&tree.to_sexp(), &directives())
        .unwrap();
    let vm = lower(&unit.program).unwrap();
    assert_eq!(vm.n_in, 4 * 4 * 2);
    // Input: four interleaved copies of the same 4-point signal; output
    // must be four interleaved copies of its DFT.
    let base = workload(4);
    let mut x = vec![Complex::ZERO; 16];
    for (k, z) in base.iter().enumerate() {
        for lane in 0..4 {
            x[k * 4 + lane] = *z;
        }
    }
    let flat = spl::vm::convert::interleave(&x);
    let mut y = vec![0.0; vm.n_out];
    vm.run(&flat, &mut y, &mut VmState::new(&vm));
    let got = spl::vm::convert::deinterleave(&y);
    let want = reference::dft(&base);
    for (k, w) in want.iter().enumerate() {
        for lane in 0..4 {
            assert!(got[k * 4 + lane].approx_eq(*w, 1e-12), "k={k} lane={lane}");
        }
    }
}
