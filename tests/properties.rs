//! Property-based tests over the whole pipeline: random formula trees are
//! generated, compiled, and executed; the result must match the formula's
//! dense-matrix interpretation for random inputs. Optimization levels
//! must agree with each other, and algebraic identities from Section 2
//! must hold on dense matrices.

use std::collections::HashMap;

use proptest::prelude::*;

use spl::compiler::{Compiler, CompilerOptions, OptLevel};
use spl::formula::{dense, formula_from_sexp, formula_to_sexp, Formula};
use spl::frontend::ast::{DataType, DirectiveState};
use spl::numeric::{perm, Complex};
use spl::vm::{lower, VmState};

/// A strategy producing random *square* formulas of the given size.
fn square_formula(n: usize, depth: u32) -> BoxedStrategy<Formula> {
    if depth == 0 || n == 1 {
        let diag = proptest::collection::vec(-2.0..2.0f64, n)
            .prop_map(|d| Formula::diagonal(d.into_iter().map(Complex::real).collect()));
        let idn = Just(Formula::identity(n));
        let perm_s = Just(()).prop_perturb(move |_, mut rng| {
            let mut p: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                p.swap(i, j);
            }
            Formula::permutation(p).unwrap()
        });
        let fns = Just(Formula::f(n));
        return prop_oneof![diag, idn, perm_s, fns].boxed();
    }
    let mut options: Vec<BoxedStrategy<Formula>> = vec![square_formula(n, 0)];
    // compose of two same-size formulas
    options.push(
        (square_formula(n, depth - 1), square_formula(n, depth - 1))
            .prop_map(|(a, b)| Formula::compose(vec![a, b]))
            .boxed(),
    );
    // tensor split n = r * s
    let divisors: Vec<usize> = (2..=n / 2).filter(|d| n.is_multiple_of(*d)).collect();
    if !divisors.is_empty() {
        let opts: Vec<BoxedStrategy<Formula>> = divisors
            .into_iter()
            .map(|r| {
                let s = n / r;
                (square_formula(r, depth - 1), square_formula(s, depth - 1))
                    .prop_map(|(a, b)| Formula::tensor(vec![a, b]))
                    .boxed()
            })
            .collect();
        options.push(proptest::strategy::Union::new(opts).boxed());
        // stride / twiddle leaves
        options.push(
            Just(())
                .prop_perturb(move |_, mut rng| {
                    let divisors: Vec<usize> = (1..=n).filter(|d| n.is_multiple_of(*d)).collect();
                    let s = divisors[(rng.next_u64() as usize) % divisors.len()];
                    if rng.next_u64() % 2 == 0 {
                        Formula::stride(n, s).unwrap()
                    } else {
                        Formula::twiddle(n, s).unwrap()
                    }
                })
                .boxed(),
        );
    }
    // direct sum n = a + b
    if n >= 2 {
        let opts: Vec<BoxedStrategy<Formula>> = (1..n)
            .map(|a| {
                let b = n - a;
                (square_formula(a, depth - 1), square_formula(b, depth - 1))
                    .prop_map(|(x, y)| Formula::direct_sum(vec![x, y]))
                    .boxed()
            })
            .collect();
        options.push(proptest::strategy::Union::new(opts).boxed());
    }
    proptest::strategy::Union::new(options).boxed()
}

fn run_formula(f: &Formula, opts: CompilerOptions, x: &[Complex]) -> Vec<Complex> {
    let mut compiler = Compiler::with_options(opts);
    let directives = DirectiveState {
        datatype: DataType::Complex,
        codetype: DataType::Real,
        ..Default::default()
    };
    let unit = compiler
        .compile_sexp(&formula_to_sexp(f), &directives)
        .unwrap();
    let vm = lower(&unit.program).unwrap();
    let flat = spl::vm::convert::interleave(x);
    let mut y = vec![0.0; vm.n_out];
    vm.run(&flat, &mut y, &mut VmState::new(&vm));
    spl::vm::convert::deinterleave(&y)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_code_matches_dense_semantics(
        f in prop_oneof![square_formula(4, 2), square_formula(6, 2), square_formula(8, 2)],
        seed in 0u64..1000,
    ) {
        let n = f.cols();
        let x: Vec<Complex> = (0..n)
            .map(|i| {
                let t = (seed as f64 + i as f64) * 0.7;
                Complex::new(t.sin(), t.cos())
            })
            .collect();
        let want = dense::apply(&f, &x).unwrap();
        let got = run_formula(&f, CompilerOptions::default(), &x);
        for (a, b) in got.iter().zip(&want) {
            prop_assert!(a.approx_eq(*b, 1e-9), "{a} vs {b}");
        }
    }

    #[test]
    fn optimization_levels_agree(
        f in square_formula(8, 2),
        seed in 0u64..1000,
    ) {
        let n = f.cols();
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new(((seed + i as u64) as f64).sin(), 0.25))
            .collect();
        let base = run_formula(&f, CompilerOptions {
            opt_level: OptLevel::None, ..Default::default()
        }, &x);
        for level in [OptLevel::ScalarTemps, OptLevel::Default] {
            for threshold in [None, Some(64)] {
                let got = run_formula(&f, CompilerOptions {
                    opt_level: level,
                    unroll_threshold: threshold,
                    ..Default::default()
                }, &x);
                for (a, b) in got.iter().zip(&base) {
                    prop_assert!(a.approx_eq(*b, 1e-9));
                }
            }
        }
    }

    #[test]
    fn formula_sexp_round_trip(f in square_formula(6, 2)) {
        let sexp = formula_to_sexp(&f);
        let back = formula_from_sexp(&sexp, &HashMap::new()).unwrap();
        let d1 = dense::to_dense(&f).unwrap();
        let d2 = dense::to_dense(&back).unwrap();
        prop_assert!(d1.max_diff(&d2) < 1e-12);
    }

    #[test]
    fn stride_permutation_inverse_identity(k in 1usize..6, l in 1usize..6) {
        // L^n_s composed with L^n_{n/s} is the identity.
        let n = 1usize << (k.min(l) + k.max(l) - k.min(l)).max(1);
        let divisors: Vec<usize> = (1..=n).filter(|d| n.is_multiple_of(*d)).collect();
        for &s in &divisors {
            let p = perm::stride_perm(n, s);
            let q = perm::stride_perm(n, n / s);
            let composed: Vec<usize> = (0..n).map(|i| q[p[i]]).collect();
            prop_assert_eq!(composed, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn tensor_commutation_eq6(ka in 1usize..4, kb in 1usize..4, seed in 0u64..100) {
        // A ⊗ B = L^{mn}_m (B ⊗ A) L^{mn}_n on random diagonals-and-F
        // matrices.
        let m = 1usize << ka;
        let n = 1usize << kb;
        let a = if seed % 2 == 0 { Formula::f(m) } else {
            Formula::diagonal((0..m).map(|i| Complex::real(i as f64 - 1.0)).collect())
        };
        let b = if seed % 3 == 0 { Formula::f(n) } else {
            Formula::diagonal((0..n).map(|i| Complex::real(0.5 * i as f64 + 1.0)).collect())
        };
        let lhs = dense::to_dense(&Formula::tensor(vec![a.clone(), b.clone()])).unwrap();
        let rhs = dense::to_dense(&Formula::compose(vec![
            Formula::stride(m * n, m).unwrap(),
            Formula::tensor(vec![b, a]),
            Formula::stride(m * n, n).unwrap(),
        ]))
        .unwrap();
        prop_assert!(lhs.max_diff(&rhs) < 1e-10);
    }
}
