//! Property-style tests over the whole pipeline: random formula trees are
//! generated, compiled, and executed; the result must match the formula's
//! dense-matrix interpretation for random inputs. Optimization levels
//! must agree with each other, and algebraic identities from Section 2
//! must hold on dense matrices.
//!
//! The random trees are drawn from the workspace's own deterministic
//! generator (`spl::numeric::rng`) with fixed seeds, so every run checks
//! the same case set — failures are reproducible by seed.

use std::collections::HashMap;

use spl::compiler::{Compiler, CompilerOptions, OptLevel};
use spl::formula::{dense, formula_from_sexp, formula_to_sexp, Formula};
use spl::frontend::ast::{DataType, DirectiveState};
use spl::numeric::rng::Rng;
use spl::numeric::{perm, Complex};
use spl::vm::{lower, VmState};

/// A random *square* formula of size `n` with the given remaining depth.
fn square_formula(rng: &mut Rng, n: usize, depth: u32) -> Formula {
    if depth == 0 || n == 1 {
        return match rng.below(4) {
            0 => Formula::diagonal(
                (0..n)
                    .map(|_| Complex::real(rng.uniform(-2.0, 2.0)))
                    .collect(),
            ),
            1 => Formula::identity(n),
            2 => {
                let mut p: Vec<usize> = (0..n).collect();
                for i in (1..n).rev() {
                    let j = rng.below(i as u64 + 1) as usize;
                    p.swap(i, j);
                }
                Formula::permutation(p).unwrap()
            }
            _ => Formula::f(n),
        };
    }
    let divisors: Vec<usize> = (2..=n / 2).filter(|d| n.is_multiple_of(*d)).collect();
    loop {
        match rng.below(5) {
            0 => return square_formula(rng, n, 0),
            1 => {
                let a = square_formula(rng, n, depth - 1);
                let b = square_formula(rng, n, depth - 1);
                return Formula::compose(vec![a, b]);
            }
            2 if !divisors.is_empty() => {
                let r = *rng.pick(&divisors);
                let a = square_formula(rng, r, depth - 1);
                let b = square_formula(rng, n / r, depth - 1);
                return Formula::tensor(vec![a, b]);
            }
            3 if !divisors.is_empty() => {
                let all: Vec<usize> = (1..=n).filter(|d| n.is_multiple_of(*d)).collect();
                let s = *rng.pick(&all);
                return if rng.chance(0.5) {
                    Formula::stride(n, s).unwrap()
                } else {
                    Formula::twiddle(n, s).unwrap()
                };
            }
            4 if n >= 2 => {
                let a = rng.range(1, n as u64 - 1) as usize;
                let x = square_formula(rng, a, depth - 1);
                let y = square_formula(rng, n - a, depth - 1);
                return Formula::direct_sum(vec![x, y]);
            }
            _ => continue,
        }
    }
}

fn run_formula(f: &Formula, opts: CompilerOptions, x: &[Complex]) -> Vec<Complex> {
    let mut compiler = Compiler::with_options(opts);
    let directives = DirectiveState {
        datatype: DataType::Complex,
        codetype: DataType::Real,
        ..Default::default()
    };
    let unit = compiler
        .compile_sexp(&formula_to_sexp(f), &directives)
        .unwrap();
    let vm = lower(&unit.program).unwrap();
    let flat = spl::vm::convert::interleave(x);
    let mut y = vec![0.0; vm.n_out];
    vm.run(&flat, &mut y, &mut VmState::new(&vm));
    spl::vm::convert::deinterleave(&y)
}

#[test]
fn compiled_code_matches_dense_semantics() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(0xC0DE_0000 + seed);
        let n = *rng.pick(&[4usize, 6, 8]);
        let f = square_formula(&mut rng, n, 2);
        let x: Vec<Complex> = (0..n)
            .map(|i| {
                let t = (seed as f64 + i as f64) * 0.7;
                Complex::new(t.sin(), t.cos())
            })
            .collect();
        let want = dense::apply(&f, &x).unwrap();
        let got = run_formula(&f, CompilerOptions::default(), &x);
        for (a, b) in got.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-9), "seed {seed}: {a} vs {b}");
        }
    }
}

#[test]
fn optimization_levels_agree() {
    for seed in 0..24u64 {
        let mut rng = Rng::new(0x0917_0000 + seed);
        let f = square_formula(&mut rng, 8, 2);
        let x: Vec<Complex> = (0..8)
            .map(|i| Complex::new(((seed + i) as f64).sin(), 0.25))
            .collect();
        let base = run_formula(
            &f,
            CompilerOptions {
                opt_level: OptLevel::None,
                ..Default::default()
            },
            &x,
        );
        for level in [OptLevel::ScalarTemps, OptLevel::Default] {
            for threshold in [None, Some(64)] {
                let got = run_formula(
                    &f,
                    CompilerOptions {
                        opt_level: level,
                        unroll_threshold: threshold,
                        ..Default::default()
                    },
                    &x,
                );
                for (a, b) in got.iter().zip(&base) {
                    assert!(a.approx_eq(*b, 1e-9), "seed {seed} level {level:?}");
                }
            }
        }
    }
}

#[test]
fn formula_sexp_round_trip() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(0x5E_0000 + seed);
        let f = square_formula(&mut rng, 6, 2);
        let sexp = formula_to_sexp(&f);
        let back = formula_from_sexp(&sexp, &HashMap::new()).unwrap();
        let d1 = dense::to_dense(&f).unwrap();
        let d2 = dense::to_dense(&back).unwrap();
        assert!(d1.max_diff(&d2) < 1e-12, "seed {seed}: {sexp}");
    }
}

#[test]
fn stride_permutation_inverse_identity() {
    // L^n_s composed with L^n_{n/s} is the identity.
    for k in 1usize..6 {
        let n = 1usize << k;
        let divisors: Vec<usize> = (1..=n).filter(|d| n.is_multiple_of(*d)).collect();
        for &s in &divisors {
            let p = perm::stride_perm(n, s);
            let q = perm::stride_perm(n, n / s);
            let composed: Vec<usize> = (0..n).map(|i| q[p[i]]).collect();
            assert_eq!(composed, (0..n).collect::<Vec<_>>());
        }
    }
}

#[test]
fn tensor_commutation_eq6() {
    // A ⊗ B = L^{mn}_m (B ⊗ A) L^{mn}_n on random diagonals-and-F
    // matrices.
    for seed in 0..24u64 {
        let mut rng = Rng::new(0xE9_0000 + seed);
        let m = 1usize << rng.range(1, 3);
        let n = 1usize << rng.range(1, 3);
        let a = if seed % 2 == 0 {
            Formula::f(m)
        } else {
            Formula::diagonal((0..m).map(|i| Complex::real(i as f64 - 1.0)).collect())
        };
        let b = if seed % 3 == 0 {
            Formula::f(n)
        } else {
            Formula::diagonal(
                (0..n)
                    .map(|i| Complex::real(0.5 * i as f64 + 1.0))
                    .collect(),
            )
        };
        let lhs = dense::to_dense(&Formula::tensor(vec![a.clone(), b.clone()])).unwrap();
        let rhs = dense::to_dense(&Formula::compose(vec![
            Formula::stride(m * n, m).unwrap(),
            Formula::tensor(vec![b, a]),
            Formula::stride(m * n, n).unwrap(),
        ]))
        .unwrap();
        assert!(lhs.max_diff(&rhs) < 1e-10, "seed {seed}");
    }
}
