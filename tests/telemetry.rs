//! End-to-end tests of the telemetry surface: `splc --trace-json`
//! produces a parseable run report naming every paper phase, and the
//! optimizer counters distinguish the `-O` levels.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};

use spl::telemetry::json::{self, Json};

const FFT4: &str = "\
#codetype real
#subname fft4
(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))
";

fn splc(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_splc"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn splc");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(stdin.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// Runs splc with `--trace-json` into a scratch file and parses the
/// resulting report.
fn trace(name: &str, extra: &[&str]) -> Json {
    let path: PathBuf =
        std::env::temp_dir().join(format!("spl-telemetry-{}-{name}.json", std::process::id()));
    let path_str = path.to_str().unwrap().to_string();
    let mut args = vec!["--trace-json", &path_str];
    args.extend_from_slice(extra);
    let (_, err, ok) = splc(&args, FFT4);
    assert!(ok, "splc failed: {err}");
    let text = std::fs::read_to_string(&path).expect("report written");
    let _ = std::fs::remove_file(&path);
    json::parse(&text).expect("report parses as JSON")
}

fn counter(report: &Json, name: &str) -> Option<f64> {
    report.get("merged")?.get("counters")?.get(name)?.as_f64()
}

#[test]
fn trace_json_names_all_seven_phases() {
    let report = trace("phases", &["-B", "32"]);
    assert_eq!(report.get("tool").and_then(Json::as_str), Some("splc"));
    assert_eq!(
        report.get("schema_version").and_then(Json::as_f64),
        Some(1.0)
    );
    let phases = report
        .get("merged")
        .and_then(|m| m.get("phases"))
        .and_then(Json::as_arr)
        .expect("merged.phases array");
    let names: Vec<&str> = phases
        .iter()
        .filter_map(|p| p.get("name").and_then(Json::as_str))
        .collect();
    for phase in [
        "parse",
        "expand",
        "unroll",
        "intrinsics",
        "typetrans",
        "optimize",
        "codegen",
    ] {
        assert!(names.contains(&phase), "missing phase {phase} in {names:?}");
    }
    for p in phases {
        assert!(p.get("wall_ns").and_then(Json::as_f64).is_some());
        assert!(p.get("calls").and_then(Json::as_f64).unwrap() >= 1.0);
    }
}

#[test]
fn opt_levels_change_optimizer_counters() {
    let o0 = trace("o0", &["-B", "32", "-O0"]);
    let o1 = trace("o1", &["-B", "32", "-O1"]);
    let o2 = trace("o2", &["-B", "32", "-O2"]);
    // -O2 runs the value-numbering optimizer and records its work.
    assert!(counter(&o2, "optimize.instrs_before").unwrap() > 0.0);
    assert!(counter(&o2, "optimize.dce_removed").unwrap() > 0.0);
    assert!(
        counter(&o2, "optimize.instrs_after").unwrap()
            < counter(&o2, "optimize.instrs_before").unwrap()
    );
    // -O0 and -O1 never reach that pass, so its counters are absent.
    assert_eq!(counter(&o0, "optimize.instrs_before"), None);
    assert_eq!(counter(&o1, "optimize.instrs_before"), None);
    // -O1 scalarizes temporaries; -O0 does not.
    assert!(counter(&o1, "unroll.temps_scalarized").unwrap() > 0.0);
    assert_eq!(counter(&o0, "unroll.temps_scalarized"), None);
    // Post-optimization code is strictly smaller for FFT4.
    let final_o0 = counter(&o0, "program.instrs").unwrap();
    let final_o2 = counter(&o2, "program.instrs").unwrap();
    assert!(final_o2 < final_o0, "O2 {final_o2} vs O0 {final_o0}");
}

#[test]
fn stats_flag_prints_table_to_stderr() {
    let (out, err, ok) = splc(&["-B", "32", "--stats"], FFT4);
    assert!(ok);
    // Target code still goes to stdout, untouched by the table.
    assert!(out.contains("subroutine fft4(y,x)"));
    assert!(err.contains("phase timings:"), "{err}");
    assert!(err.contains("optimize"), "{err}");
    assert!(err.contains("pass counters:"), "{err}");
    assert!(err.contains("optimize.instrs_after"), "{err}");
}

#[test]
fn help_prints_usage_to_stdout() {
    let (out, err, ok) = splc(&["--help"], "");
    assert!(ok);
    assert!(out.contains("usage: splc"), "{out}");
    assert!(out.contains("--trace-json"), "{out}");
    assert!(out.contains("-O0 | -O1 | -O2"), "{out}");
    assert!(err.is_empty(), "{err}");
}
