//! Integration of the search engine with the compiler and the baseline:
//! winners are valid FFTs, the k-best DP respects the paper's
//! restrictions, and the minifft baseline agrees with SPL-generated code
//! on identical inputs.

use spl::generator::fft::FftTree;
use spl::minifft::{Plan, PlanMode};
use spl::numeric::{reference, relative_rms_error, Complex};
use spl::search::{compile_tree, large_search, small_search, OpCountEvaluator, SearchConfig};
use spl::vm::VmState;

fn workload(n: usize) -> Vec<Complex> {
    (0..n)
        .map(|i| Complex::new((i as f64 * 0.19).sin(), (i as f64 * 0.7).cos()))
        .collect()
}

fn run_tree(tree: &FftTree) -> Vec<Complex> {
    let vm = compile_tree(tree, 64).unwrap();
    let x = spl::vm::convert::interleave(&workload(tree.size()));
    let mut y = vec![0.0; vm.n_out];
    vm.run(&x, &mut y, &mut VmState::new(&vm));
    spl::vm::convert::deinterleave(&y)
}

#[test]
fn full_search_to_4096_produces_correct_ffts() {
    let config = SearchConfig::default();
    let mut eval = OpCountEvaluator::default();
    let small = small_search(6, &config, &mut eval).unwrap();
    let large = large_search(&small, 12, &config, &mut eval).unwrap();
    for r in &small {
        let got = run_tree(&r.tree);
        let want = reference::dft(&workload(r.tree.size()));
        assert!(relative_rms_error(&got, &want) < 1e-10);
    }
    for plans in &large {
        let tree = &plans[0].tree;
        let got = run_tree(tree);
        let want = reference::dft(&workload(tree.size()));
        assert!(
            relative_rms_error(&got, &want) < 1e-9,
            "size {}",
            tree.size()
        );
    }
}

#[test]
fn spl_and_minifft_agree_numerically() {
    let config = SearchConfig::default();
    let mut eval = OpCountEvaluator::default();
    let small = small_search(6, &config, &mut eval).unwrap();
    let large = large_search(&small, 9, &config, &mut eval).unwrap();
    let tree = &large.last().unwrap()[0].tree;
    let n = tree.size();
    assert_eq!(n, 512);
    let x = workload(n);
    let spl_out = run_tree(tree);
    let plan = Plan::new(n, PlanMode::Estimate);
    let flat = spl::vm::convert::interleave(&x);
    let mut y = vec![0.0; 2 * n];
    plan.execute(&flat, &mut y);
    let fftw_out = spl::vm::convert::deinterleave(&y);
    assert!(relative_rms_error(&spl_out, &fftw_out) < 1e-11);
}

#[test]
fn minifft_both_modes_agree() {
    for n in [64usize, 256, 2048] {
        let x = spl::vm::convert::interleave(&workload(n));
        let mut y1 = vec![0.0; 2 * n];
        let mut y2 = vec![0.0; 2 * n];
        Plan::new(n, PlanMode::Estimate).execute(&x, &mut y1);
        Plan::new(n, PlanMode::Measure).execute(&x, &mut y2);
        let a = spl::vm::convert::deinterleave(&y1);
        let b = spl::vm::convert::deinterleave(&y2);
        assert!(relative_rms_error(&a, &b) < 1e-11, "n={n}");
    }
}

#[test]
fn accuracy_holds_at_moderate_sizes() {
    // The Figure 6 methodology at test scale: compensated reference below
    // 2^10, round-trip beyond.
    let config = SearchConfig::default();
    let mut eval = OpCountEvaluator::default();
    let small = small_search(6, &config, &mut eval).unwrap();
    let large = large_search(&small, 10, &config, &mut eval).unwrap();
    for plans in &large {
        let tree = &plans[0].tree;
        let n = tree.size();
        let x = workload(n);
        let got = run_tree(tree);
        let want = reference::dft_compensated(&x);
        let err = relative_rms_error(&got, &want);
        assert!(err < 1e-13 * (n as f64).sqrt(), "n={n}: err {err}");
    }
}
