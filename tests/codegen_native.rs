//! Target-code tests: the emitted C is compiled by the host compiler and
//! executed, and must agree bit-for-bit in structure with the VM and the
//! dense oracle; the emitted Fortran is checked structurally (no Fortran
//! compiler on the host — see DESIGN.md, substitution 5).

use spl::compiler::{Compiler, CompilerOptions, OptLevel};
use spl::frontend::ast::{DataType, DirectiveState, Language};
use spl::native::NativeKernel;
use spl::numeric::{reference, relative_rms_error, Complex};
use spl::vm::{lower, VmState};

fn directives() -> DirectiveState {
    DirectiveState {
        datatype: DataType::Complex,
        codetype: DataType::Real,
        ..Default::default()
    }
}

fn workload(n: usize) -> Vec<Complex> {
    (0..n)
        .map(|i| Complex::new((i as f64 * 0.23).cos(), (i as f64 * 0.41).sin()))
        .collect()
}

#[test]
fn native_c_matches_vm_across_shapes() {
    let cases = [
        // Straight-line with folded constants.
        (
            "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))",
            Some(64),
        ),
        // Loop code with twiddle tables.
        (
            "(compose (tensor (F 2) (I 8)) (T 16 8) (tensor (I 2) (F 8)) (L 16 2))",
            None,
        ),
        // Permutations and temps.
        ("(compose (L 16 4) (F 16) (L 16 2))", None),
        // Direct sums and reversal.
        ("(direct-sum (F 4) (J 4))", None),
    ];
    for (src, threshold) in cases {
        let mut compiler = Compiler::with_options(CompilerOptions {
            unroll_threshold: threshold,
            ..Default::default()
        });
        let sexp = spl::frontend::parser::parse_formula(src).unwrap();
        let unit = compiler.compile_sexp(&sexp, &directives()).unwrap();
        let kernel = NativeKernel::compile(&unit).unwrap();
        let vm = lower(&unit.program).unwrap();
        let n = unit.logical_input_len();
        let x = spl::vm::convert::interleave(&workload(n));
        let mut y_native = vec![0.0; kernel.n_out];
        let mut y_vm = vec![0.0; vm.n_out];
        kernel.run(&x, &mut y_native);
        vm.run(&x, &mut y_vm, &mut VmState::new(&vm));
        for (a, b) in y_native.iter().zip(&y_vm) {
            assert!((a - b).abs() < 1e-12, "{src}: native {a} vs vm {b}");
        }
    }
}

#[test]
fn native_fft_is_correct_at_all_opt_levels() {
    let src = "(compose (tensor (F 2) (I 4)) (T 8 4) (tensor (I 2) (F 4)) (L 8 2))";
    let x = workload(8);
    let want = reference::dft(&x);
    for level in [OptLevel::None, OptLevel::ScalarTemps, OptLevel::Default] {
        let mut compiler = Compiler::with_options(CompilerOptions {
            opt_level: level,
            ..Default::default()
        });
        let sexp = spl::frontend::parser::parse_formula(src).unwrap();
        let unit = compiler.compile_sexp(&sexp, &directives()).unwrap();
        let kernel = NativeKernel::compile(&unit).unwrap();
        let flat = spl::vm::convert::interleave(&x);
        let mut y = vec![0.0; kernel.n_out];
        kernel.run(&flat, &mut y);
        let got = spl::vm::convert::deinterleave(&y);
        assert!(relative_rms_error(&got, &want) < 1e-12, "{level:?}");
    }
}

#[test]
fn fortran_output_structure() {
    // Golden structural checks of the Fortran emitter (complex codetype).
    let mut compiler = Compiler::new();
    let units = compiler
        .compile_source(
            "#datatype complex\n#codetype complex\n#subname cfft\n(compose (T 4 2) (F 4))",
        )
        .unwrap();
    let f = units[0].emit();
    assert!(f.contains("subroutine cfft(y,x)"), "{f}");
    assert!(f.contains("complex*16 y(4),x(4)"), "{f}");
    assert!(f.contains("end"), "{f}");
    // Complex table entries as Fortran complex literals.
    assert!(f.contains("data d0 /"), "{f}");
    assert!(
        f.contains("(1.0d0,0.0d0)") || f.contains("(1.0d0,-0.0d0)"),
        "{f}"
    );
}

#[test]
fn fortran_peephole_variants() {
    let mut compiler = Compiler::with_options(CompilerOptions {
        peephole: true,
        ..Default::default()
    });
    // diag(-1, i) forces a negation into the real-typed code.
    let units = compiler
        .compile_source("#codetype real\n#subname pp\n(diagonal (-1 (0,1)))")
        .unwrap();
    let f = units[0].emit();
    assert!(!f.contains("= -f"), "unary minus must be rewritten: {f}");
}

#[test]
fn io_params_compile_and_run() {
    // Stride/offset entry points (Section 3.5): generated C gets extra
    // parameters; check it still compiles natively by emitting and
    // compiling the source by hand.
    let mut compiler = Compiler::with_options(CompilerOptions {
        io_params: true,
        language_override: Some(Language::C),
        ..Default::default()
    });
    let sexp = spl::frontend::parser::parse_formula("(F 2)").unwrap();
    let unit = compiler.compile_sexp(&sexp, &directives()).unwrap();
    let src = unit.emit();
    assert!(
        src.contains("long yofs, long xofs, long ystr, long xstr"),
        "{src}"
    );
    // Compile it with cc to prove it is valid C.
    let dir = std::env::temp_dir();
    let cpath = dir.join("spl_ioparams_test.c");
    let opath = dir.join("spl_ioparams_test.o");
    std::fs::write(&cpath, &src).unwrap();
    let ok = std::process::Command::new("cc")
        .args(["-c", "-O2", "-o"])
        .arg(&opath)
        .arg(&cpath)
        .status()
        .unwrap()
        .success();
    std::fs::remove_file(&cpath).ok();
    std::fs::remove_file(&opath).ok();
    assert!(ok, "generated io-params C does not compile:\n{src}");
}

#[test]
fn emitted_c_for_every_f16_factorization_compiles_and_agrees() {
    use spl::generator::fft::{enumerate_trees, Rule};
    let x = workload(16);
    let want = reference::dft(&x);
    for tree in enumerate_trees(4, Rule::CooleyTukey) {
        let mut compiler = Compiler::with_options(CompilerOptions {
            unroll_threshold: Some(8),
            ..Default::default()
        });
        let unit = compiler
            .compile_sexp(&tree.to_sexp(), &directives())
            .unwrap();
        let kernel = NativeKernel::compile(&unit).unwrap();
        let flat = spl::vm::convert::interleave(&x);
        let mut y = vec![0.0; kernel.n_out];
        kernel.run(&flat, &mut y);
        let got = spl::vm::convert::deinterleave(&y);
        assert!(
            relative_rms_error(&got, &want) < 1e-11,
            "{}",
            tree.describe()
        );
    }
}
