//! The chaos soak: the real `spld` binary under concurrent clients,
//! seeded fault injection, malformed frames, mid-flight disconnects,
//! `SIGKILL`, and a warm restart — with the acceptance bar that every
//! completed reply is bit-identical to the plan's VM output and the
//! restart comes back warm (compiles several times fewer kernels than
//! the cold start, proven from the daemon's own telemetry).

#![cfg(unix)]

use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use spl::serve::plans::{PlanStore, PlanStoreOptions};
use spl::serve::protocol::{encode_request, KIND_DFT};
use spl::serve::{Client, Request, Response};

/// Transform sizes the soak exercises: six distinct kernels, so the
/// cold run provably invokes `cc` at least five times.
const SIZES: [usize; 6] = [4, 8, 16, 32, 64, 128];

fn sample_input(n: usize, salt: u64) -> Vec<f64> {
    (0..2 * n)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(37)
                .wrapping_add(salt.wrapping_mul(101));
            (h % 97) as f64 * 0.25 - 12.0
        })
        .collect()
}

/// Local VM reference for bitwise comparison (one store per thread;
/// VM-only resolution is cheap).
struct Reference {
    store: PlanStore,
}

impl Reference {
    fn new() -> Reference {
        Reference {
            store: PlanStore::new(PlanStoreOptions {
                native: false,
                ..Default::default()
            })
            .expect("reference store"),
        }
    }

    fn check(&self, n: usize, x: &[f64], got: &[f64]) {
        let plan = self.store.entry(n).expect("reference plan");
        let mut want = vec![0.0; plan.vm().n_out];
        plan.run_vm(x, &mut want);
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "size {n} sample {i}: daemon said {g:?}, VM reference {w:?}"
            );
        }
    }
}

struct Daemon {
    child: Child,
    socket: PathBuf,
}

impl Daemon {
    fn spawn(socket: &Path, extra: &[&str]) -> Daemon {
        // A SIGKILLed daemon leaves its socket file behind; remove it
        // so `socket.exists()` below means *this* daemon bound it.
        let _ = std::fs::remove_file(socket);
        let child = Command::new(env!("CARGO_BIN_EXE_spld"))
            .arg("--socket")
            .arg(socket)
            .args(extra)
            .spawn()
            .expect("spawn spld");
        // Binding happens after wisdom load and journal replay, which
        // an unoptimized build takes its time over.
        let deadline = Instant::now() + Duration::from_secs(120);
        while !socket.exists() {
            assert!(Instant::now() < deadline, "spld never bound {socket:?}");
            std::thread::sleep(Duration::from_millis(10));
        }
        Daemon {
            child,
            socket: socket.to_path_buf(),
        }
    }

    fn client(&self) -> Client<UnixStream> {
        self.try_client()
            .unwrap_or_else(|| panic!("could not connect to {:?}", self.socket))
    }

    /// `None` when the daemon is gone — the kill phase races clients
    /// against `SIGKILL`, and losing that race is not a failure.
    fn try_client(&self) -> Option<Client<UnixStream>> {
        for _ in 0..100 {
            if let Ok(c) = Client::connect_unix(&self.socket) {
                return Some(c);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        None
    }

    fn stats(&self) -> String {
        match self.client().stats().expect("stats") {
            Response::Text(t) => t,
            other => panic!("stats answered {other:?}"),
        }
    }

    /// SIGKILL — no warning, no cleanup; crash-safety is the point.
    /// By pid (not [`Child::kill`]) so concurrent clients can keep
    /// holding `&Daemon` while the axe falls.
    fn kill9(&self) {
        let status = Command::new("kill")
            .args(["-9", &self.child.id().to_string()])
            .status()
            .expect("kill -9");
        assert!(status.success());
    }

    fn drain_and_wait(mut self) {
        match self.client().drain().expect("drain") {
            Response::Text(t) => assert_eq!(t, "drained"),
            other => panic!("drain answered {other:?}"),
        }
        let status = self.child.wait().expect("wait");
        assert!(status.success(), "spld exited {status:?} after drain");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn counter(stats: &str, key: &str) -> u64 {
    stats
        .lines()
        .filter_map(|line| {
            let mut it = line.split_whitespace();
            match (it.next(), it.next()) {
                (Some(k), Some(v)) if k == key => v.parse().ok(),
                _ => None,
            }
        })
        .next()
        .unwrap_or(0)
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spld-soak-{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("test dir");
    dir
}

/// One soak client: `rounds` transforms of rotating sizes, every OK
/// reply bitwise-checked. Returns (ok, refused) counts; errors on the
/// *stream* (daemon killed under us) end the loop quietly.
fn run_traffic(
    daemon: &Daemon,
    thread_id: u64,
    rounds: u64,
    deadline_every: Option<u64>,
) -> (u64, u64) {
    let reference = Reference::new();
    let Some(mut client) = daemon.try_client() else {
        return (0, 0);
    };
    let (mut ok, mut refused) = (0, 0);
    for i in 0..rounds {
        let n = SIZES[((thread_id + i) % SIZES.len() as u64) as usize];
        let x = sample_input(n, thread_id * 1000 + i);
        let deadline = match deadline_every {
            Some(k) if i % k == 0 => Some(Duration::from_millis(500)),
            _ => None,
        };
        match client.transform(n, deadline, &x) {
            Ok(Response::Transformed { data, .. }) => {
                reference.check(n, &x, &data);
                ok += 1;
            }
            Ok(Response::Overloaded | Response::DeadlineExceeded | Response::Draining) => {
                refused += 1;
            }
            Ok(Response::Error { class, message }) => {
                panic!("thread {thread_id} round {i}: error class {class}: {message}")
            }
            Ok(Response::Text(t)) => panic!("unexpected text reply: {t}"),
            Err(_) => break, // daemon gone (kill phase): stop quietly
        }
    }
    (ok, refused)
}

/// Client-side chaos: malformed frames, torn frames, and mid-flight
/// disconnects, all seeded. The daemon must absorb every one.
fn run_protocol_chaos(daemon: &Daemon, seed: u64) {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for round in 0..30u64 {
        let mut client = match Client::connect_unix(&daemon.socket) {
            Ok(c) => c,
            Err(_) => return, // daemon gone (kill phase)
        };
        match round % 3 {
            0 => {
                // Framed garbage payload (never a valid drain verb).
                let len = (next() % 40) as usize + 1;
                let mut payload: Vec<u8> = (0..len).map(|_| (next() & 0xff) as u8).collect();
                if payload[0] == b'D' {
                    payload[0] = b'?';
                }
                if client.send_raw_frame(&payload).is_ok() {
                    let _ = client.read_response();
                }
            }
            1 => {
                // Torn frame: length prefix promising more than is sent.
                let _ = client.send_raw_bytes(&[0, 0, 4, 0, b'T', b'F']);
                // ...then vanish mid-frame.
            }
            _ => {
                // Mid-flight disconnect: a real request, no read.
                let n = SIZES[(next() % SIZES.len() as u64) as usize];
                let _ = client.send_raw_frame(&encode_request(&Request::Transform {
                    kind: KIND_DFT,
                    n,
                    deadline_ms: None,
                    data: sample_input(n, next()),
                }));
            }
        }
    }
}

/// The headline soak. One daemon with latency chaos and batching,
/// eight traffic clients plus two protocol-chaos clients; then
/// `SIGKILL` mid-traffic; then a restart on the same state directory
/// that must come back warm (≥5× fewer `cc` invocations, from the
/// daemon's own stats) and keep serving bit-identical answers.
#[test]
fn soak_chaos_kill9_warm_restart() {
    let dir = test_dir("main");
    let socket = dir.join("sock");
    let state = dir.join("state");
    let state_str = state.to_str().expect("utf-8 path").to_owned();
    let flags: Vec<&str> = vec![
        "--state-dir",
        &state_str,
        "--workers",
        "3",
        "--queue-cap",
        "64",
        "--batch-max",
        "8",
        "--batch-window-ms",
        "3",
        "--chaos-seed",
        "42",
        "--chaos-latency-p",
        "0.05",
        "--chaos-latency-ms",
        "3",
    ];

    // ---- Phase 1: cold start, concurrent chaos traffic. ----
    let daemon = Daemon::spawn(&socket, &flags);
    let traffic_threads = 8;
    let barrier = Arc::new(Barrier::new(traffic_threads + 2));
    let (ok_total, refused_total) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..traffic_threads as u64 {
            let daemon = &daemon;
            let barrier = Arc::clone(&barrier);
            handles.push(scope.spawn(move || {
                barrier.wait();
                run_traffic(daemon, t, 18, Some(6))
            }));
        }
        for c in 0..2u64 {
            let daemon = &daemon;
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                run_protocol_chaos(daemon, 0xc4a05 + c);
            });
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("traffic client"))
            .fold((0, 0), |(a, b), (c, d)| (a + c, b + d))
    });
    assert!(
        ok_total >= 100,
        "cold soak served too little: ok={ok_total} refused={refused_total}"
    );

    let cold = daemon.stats();
    let cold_cc = counter(&cold, "native.cc_invocations");
    assert!(
        cold_cc >= 5,
        "cold start must compile each size once (≥5):\n{cold}"
    );
    assert!(
        counter(&cold, "spld.replies.ok") >= ok_total,
        "replies.ok must cover this client's successes:\n{cold}"
    );
    assert!(
        counter(&cold, "spld.batch.multi") >= 1,
        "concurrent same-size traffic must produce a real batch:\n{cold}"
    );
    assert!(
        counter(&cold, "spld.protocol_errors") >= 1,
        "the chaos clients' garbage must be counted:\n{cold}"
    );

    // ---- Phase 2: SIGKILL mid-traffic. ----
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..traffic_threads as u64)
            .map(|t| {
                let daemon = &daemon;
                scope.spawn(move || run_traffic(daemon, 100 + t, 10_000, None))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(150));
        daemon.kill9();
        // Clients observe the dead socket and stop; any reply they DID
        // complete was bitwise-checked inside run_traffic.
        for h in handles {
            let _ = h.join().expect("kill-phase client");
        }
    });
    drop(daemon);

    // ---- Phase 3: restart on the same state dir — warm. ----
    let daemon = Daemon::spawn(&socket, &flags);
    let (warm_ok, _) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..traffic_threads as u64)
            .map(|t| {
                let daemon = &daemon;
                scope.spawn(move || run_traffic(daemon, 200 + t, SIZES.len() as u64, None))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("warm client"))
            .fold((0, 0), |(a, b), (c, d)| (a + c, b + d))
    });
    assert!(warm_ok >= 40, "warm restart must serve: ok={warm_ok}");
    let warm = daemon.stats();
    let warm_cc = counter(&warm, "native.cc_invocations");
    assert!(
        warm_cc * 5 <= cold_cc,
        "restart must come back warm: cold cc={cold_cc}, warm cc={warm_cc}\n{warm}"
    );
    assert!(
        counter(&warm, "spld.plan.preloaded") >= SIZES.len() as u64,
        "the plan journal must preload every seen size:\n{warm}"
    );
    daemon.drain_and_wait();
    assert!(!socket.exists(), "socket removed after drain");
}

/// Kernel-fault chaos: with native runs failing half the time, the
/// daemon degrades (quarantines the kernel, serves from the VM) and
/// still never returns a wrong answer.
#[test]
fn soak_kernel_faults_degrade_without_wrong_answers() {
    let dir = test_dir("faults");
    let socket = dir.join("sock");
    let state = dir.join("state");
    let state_str = state.to_str().expect("utf-8 path").to_owned();
    let daemon = Daemon::spawn(
        &socket,
        &[
            "--state-dir",
            &state_str,
            "--workers",
            "2",
            "--batch-max",
            "1",
            "--chaos-seed",
            "7",
            "--chaos-kernel-fault",
            "0.5",
        ],
    );
    let (ok, _) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let daemon = &daemon;
                scope.spawn(move || run_traffic(daemon, 300 + t, 24, None))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fault client"))
            .fold((0, 0), |(a, b), (c, d)| (a + c, b + d))
    });
    assert_eq!(ok, 4 * 24, "every request must be answered correctly");
    let stats = daemon.stats();
    assert!(
        counter(&stats, "spld.degradations") >= 1,
        "p=0.5 kernel faults must trip the degradation chain:\n{stats}"
    );
    assert!(
        counter(&stats, "spld.quarantined") >= 1,
        "a faulting kernel must be quarantined:\n{stats}"
    );
    daemon.drain_and_wait();
}

/// Overload through the real binary: a tiny queue and one slow worker
/// shed with an explicit `OVERLOADED`, never a hang or a silent drop.
#[test]
fn soak_overload_sheds_explicitly() {
    let dir = test_dir("overload");
    let socket = dir.join("sock");
    let daemon = Daemon::spawn(
        &socket,
        &[
            "--no-native",
            "--workers",
            "1",
            "--queue-cap",
            "2",
            "--batch-max",
            "1",
            "--chaos-seed",
            "3",
            "--chaos-latency-p",
            "1.0",
            "--chaos-latency-ms",
            "40",
        ],
    );
    let clients = 12;
    let barrier = Arc::new(Barrier::new(clients));
    let (ok, refused) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients as u64)
            .map(|t| {
                let daemon = &daemon;
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    run_traffic(daemon, 400 + t, 1, None)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("burst client"))
            .fold((0, 0), |(a, b), (c, d)| (a + c, b + d))
    });
    assert_eq!(ok + refused, clients as u64, "every request answered");
    assert!(refused >= 1, "a 2-deep queue under 12 clients must shed");
    let stats = daemon.stats();
    assert!(counter(&stats, "spld.shed") >= 1, "sheds counted:\n{stats}");
    daemon.drain_and_wait();
}
